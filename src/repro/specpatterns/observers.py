"""Observer timed automata for specification patterns (PROPAS-style).

An observer is a timed automaton that listens to the system's event
channels (the system emits ``p!`` where the pattern mentions event
``p``) and moves to a distinguished location when the pattern's status
changes.  Verification composes the observer with the system network and
runs the query from
:func:`repro.specpatterns.tctl_mappings.observer_query` — safety
patterns check ``A[] not Obs.err``, existence checks ``A<> Obs.done``,
response checks the leads-to ``Obs.waiting --> Obs.idle``.

Every observer is *input-enabled*: each location carries receiving
self-loops for all monitored channels it does not otherwise handle, so
composing the observer never blocks a system emission (UPPAAL binary
handshakes disable an emitting edge with no ready receiver).

Supported templates (mirroring the PSP-UPPAAL ``observer_templates``
set): Absence under all five scopes; Existence, Precedence, Response
and TimedResponse under the global scope.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.ta.automaton import Edge, Location, TimedAutomaton, parse_guard
from repro.specpatterns.patterns import (
    Absence,
    BoundedExistence,
    Existence,
    Pattern,
    Precedence,
    Response,
    ResponseChain,
    TimedResponse,
    Universality,
)
from repro.specpatterns.scopes import (
    AfterQ,
    AfterQUntilR,
    BeforeR,
    BetweenQAndR,
    Globally,
    Scope,
)
from repro.specpatterns.tctl_mappings import observer_query


@dataclass(frozen=True)
class ObserverSpec:
    """A generated observer plus how to use it."""

    automaton: TimedAutomaton
    query: str
    channels: Tuple[str, ...]

    @property
    def name(self) -> str:
        return self.automaton.name


class ObserverUnsupported(NotImplementedError):
    """No observer template exists for this pattern/scope pair."""

    def __init__(self, pattern: Pattern, scope: Scope):
        super().__init__(f"no observer template for ({pattern}) ({scope})")


def build_observer(pattern: Pattern, scope: Scope = None,
                   name: str = "Obs",
                   extra_channels: Sequence[str] = ()) -> ObserverSpec:
    """Generate the observer automaton for *pattern* within *scope*.

    ``extra_channels`` lists channels the system emits that the pattern
    does not mention: the observer receives them with self-loops so the
    binary handshake never blocks an unmonitored emission.  Pass every
    system channel outside the pattern's event set here.
    """
    scope = scope if scope is not None else Globally()
    spec = None
    if isinstance(pattern, Absence):
        spec = _absence_observer(pattern, scope, name)
    elif isinstance(pattern, Response) and isinstance(scope, AfterQ):
        spec = _response_after_observer(pattern, scope, name)
    elif isinstance(pattern, Response) and isinstance(scope, AfterQUntilR):
        spec = _response_after_until_observer(pattern, scope, name)
    elif isinstance(scope, Globally):
        if isinstance(pattern, Existence):
            spec = _existence_observer(pattern, name)
        elif isinstance(pattern, Precedence):
            spec = _precedence_observer(pattern, name)
        elif isinstance(pattern, ResponseChain):
            spec = _response_chain_observer(pattern, name)
        elif isinstance(pattern, Response):
            spec = _response_observer(pattern, name)
        elif isinstance(pattern, TimedResponse):
            spec = _timed_response_observer(pattern, name)
        elif isinstance(pattern, BoundedExistence):
            spec = _bounded_existence_observer(pattern, name)
        elif isinstance(pattern, Universality):
            spec = _universality_observer(pattern, name)
    if spec is None:
        raise ObserverUnsupported(pattern, scope)
    extras = [c for c in extra_channels if c not in spec.channels]
    if extras:
        spec = _with_extra_channels(spec, extras)
    return spec


def _with_extra_channels(spec: ObserverSpec,
                         extras: Sequence[str]) -> ObserverSpec:
    """Rebuild *spec* with receiving self-loops for *extras* everywhere."""
    automaton = spec.automaton
    edges = list(automaton.edges)
    for location in automaton.locations.values():
        for channel in extras:
            edges.append(Edge(location.name, location.name,
                              sync=f"{channel}?",
                              action=f"ignore_{channel}"))
    rebuilt = TimedAutomaton(
        name=automaton.name,
        clocks=automaton.clocks,
        locations=list(automaton.locations.values()),
        edges=edges,
        initial=automaton.initial,
    )
    return ObserverSpec(
        automaton=rebuilt,
        query=spec.query,
        channels=spec.channels + tuple(extras),
    )


def _make_observer(name: str, channels: Sequence[str],
                   locations: Sequence[Location],
                   edges: List[Edge],
                   pattern: Pattern,
                   clocks: Sequence[str] = ()) -> ObserverSpec:
    """Assemble an observer, adding input-enabling self-loops."""
    handled: Dict[Tuple[str, str], bool] = {}
    for edge in edges:
        if edge.sync is not None:
            handled[(edge.source, edge.channel)] = True
    completed = list(edges)
    for location in locations:
        for channel in channels:
            if (location.name, channel) not in handled:
                completed.append(Edge(
                    location.name, location.name, sync=f"{channel}?",
                    action=f"ignore_{channel}",
                ))
    automaton = TimedAutomaton(
        name=name, clocks=clocks, locations=locations, edges=completed)
    return ObserverSpec(
        automaton=automaton,
        query=observer_query(pattern, observer_name=name),
        channels=tuple(channels),
    )


# -- absence under every scope ------------------------------------------------------

def _absence_observer(pattern: Absence, scope: Scope, name: str
                      ) -> ObserverSpec:
    p = pattern.p
    if isinstance(scope, Globally):
        locations = [Location("idle"), Location("err")]
        edges = [Edge("idle", "err", sync=f"{p}?", action=f"saw_{p}")]
        return _make_observer(name, [p], locations, edges, pattern)
    if isinstance(scope, BeforeR):
        # p before the first r is only a violation if r indeed occurs.
        r = scope.r
        locations = [Location("idle"), Location("saw_p"), Location("closed"),
                     Location("err")]
        edges = [
            Edge("idle", "saw_p", sync=f"{p}?", action=f"saw_{p}"),
            Edge("idle", "closed", sync=f"{r}?", action="scope_closed"),
            Edge("saw_p", "err", sync=f"{r}?", action="violation"),
        ]
        return _make_observer(name, [p, r], locations, edges, pattern)
    if isinstance(scope, AfterQ):
        q = scope.q
        locations = [Location("idle"), Location("armed"), Location("err")]
        edges = [
            Edge("idle", "armed", sync=f"{q}?", action="scope_opened"),
            Edge("armed", "err", sync=f"{p}?", action="violation"),
        ]
        return _make_observer(name, [p, q], locations, edges, pattern)
    if isinstance(scope, BetweenQAndR):
        # Violation needs the closing r after a p inside the segment.
        q, r = scope.q, scope.r
        locations = [Location("idle"), Location("armed"),
                     Location("saw_p"), Location("err")]
        edges = [
            Edge("idle", "armed", sync=f"{q}?", action="scope_opened"),
            Edge("armed", "idle", sync=f"{r}?", action="scope_closed"),
            Edge("armed", "saw_p", sync=f"{p}?", action=f"saw_{p}"),
            Edge("saw_p", "err", sync=f"{r}?", action="violation"),
        ]
        return _make_observer(name, [p, q, r], locations, edges, pattern)
    if isinstance(scope, AfterQUntilR):
        # Open-ended segment: a p inside is immediately a violation.
        q, r = scope.q, scope.r
        locations = [Location("idle"), Location("armed"), Location("err")]
        edges = [
            Edge("idle", "armed", sync=f"{q}?", action="scope_opened"),
            Edge("armed", "idle", sync=f"{r}?", action="scope_closed"),
            Edge("armed", "err", sync=f"{p}?", action="violation"),
        ]
        return _make_observer(name, [p, q, r], locations, edges, pattern)
    raise ObserverUnsupported(pattern, scope)


# -- global-scope order/occurrence observers -------------------------------------------

def _existence_observer(pattern: Existence, name: str) -> ObserverSpec:
    p = pattern.p
    locations = [Location("idle"), Location("done")]
    edges = [Edge("idle", "done", sync=f"{p}?", action=f"saw_{p}")]
    return _make_observer(name, [p], locations, edges, pattern)


def _precedence_observer(pattern: Precedence, name: str) -> ObserverSpec:
    p, s = pattern.p, pattern.s
    locations = [Location("init"), Location("safe"), Location("err")]
    edges = [
        Edge("init", "safe", sync=f"{s}?", action=f"saw_{s}"),
        Edge("init", "err", sync=f"{p}?", action="violation"),
    ]
    return _make_observer(name, [p, s], locations, edges, pattern)


def _response_observer(pattern: Response, name: str) -> ObserverSpec:
    p, s = pattern.p, pattern.s
    locations = [Location("idle"), Location("waiting")]
    edges = [
        Edge("idle", "waiting", sync=f"{p}?", action=f"saw_{p}"),
        Edge("waiting", "idle", sync=f"{s}?", action=f"saw_{s}"),
        Edge("waiting", "waiting", sync=f"{p}?", action=f"saw_{p}_again"),
    ]
    return _make_observer(name, [p, s], locations, edges, pattern)


def _response_after_observer(pattern: Response, scope: AfterQ,
                             name: str) -> ObserverSpec:
    """S responds to P, after Q: the obligation arms at the first Q."""
    p, s, q = pattern.p, pattern.s, scope.q
    locations = [Location("pre"), Location("idle"), Location("waiting")]
    edges = [
        Edge("pre", "idle", sync=f"{q}?", action="scope_opened"),
        Edge("idle", "waiting", sync=f"{p}?", action=f"saw_{p}"),
        Edge("waiting", "idle", sync=f"{s}?", action=f"saw_{s}"),
        Edge("waiting", "waiting", sync=f"{p}?", action=f"saw_{p}_again"),
    ]
    spec = _make_observer(name, [p, s, q], locations, edges, pattern)
    return ObserverSpec(
        automaton=spec.automaton,
        query=f"{name}.waiting --> {name}.idle",
        channels=spec.channels,
    )


def _response_after_until_observer(pattern: Response, scope: AfterQUntilR,
                                   name: str) -> ObserverSpec:
    """S responds to P, after Q until R.

    Inside a Q..R segment every P needs an S strictly before the
    closing R; an R arriving while a P is outstanding is a violation
    (``err``), and a trailing outstanding P with no R is a violation
    too (the leads-to conclusion excludes both ``waiting`` and
    ``err``).
    """
    p, s, q, r = pattern.p, pattern.s, scope.q, scope.r
    locations = [Location("idle"), Location("armed"),
                 Location("waiting"), Location("err")]
    edges = [
        Edge("idle", "armed", sync=f"{q}?", action="scope_opened"),
        Edge("armed", "idle", sync=f"{r}?", action="scope_closed"),
        Edge("armed", "waiting", sync=f"{p}?", action=f"saw_{p}"),
        Edge("waiting", "armed", sync=f"{s}?", action=f"saw_{s}"),
        Edge("waiting", "err", sync=f"{r}?",
             action="segment_closed_unanswered"),
        Edge("waiting", "waiting", sync=f"{p}?", action=f"saw_{p}_again"),
    ]
    spec = _make_observer(name, [p, s, q, r], locations, edges, pattern)
    return ObserverSpec(
        automaton=spec.automaton,
        query=f"{name}.waiting --> ({name}.armed or {name}.idle)",
        channels=spec.channels,
    )


def _response_chain_observer(pattern: ResponseChain, name: str
                             ) -> ObserverSpec:
    """S then T must follow every P (1-cause-2-effect chain).

    The observer walks waiting -> waiting_t -> idle as the chain
    completes; a new P while a chain is outstanding restarts it.  The
    leads-to query ``Obs.waiting --> Obs.idle`` covers both effects:
    the chain only returns to idle through S followed by T.
    """
    p, s, t = pattern.p, pattern.s, pattern.t
    locations = [Location("idle"), Location("waiting"),
                 Location("waiting_t")]
    edges = [
        Edge("idle", "waiting", sync=f"{p}?", action=f"saw_{p}"),
        Edge("waiting", "waiting_t", sync=f"{s}?", action=f"saw_{s}"),
        Edge("waiting_t", "idle", sync=f"{t}?", action=f"saw_{t}"),
        Edge("waiting", "waiting", sync=f"{p}?", action=f"saw_{p}_again"),
        Edge("waiting_t", "waiting", sync=f"{p}?",
             action=f"chain_restarted_by_{p}"),
    ]
    return _make_observer(name, [p, s, t], locations, edges, pattern)


def _bounded_existence_observer(pattern: BoundedExistence, name: str
                                ) -> ObserverSpec:
    """At most ``bound`` occurrences of P: count P events into err."""
    p, bound = pattern.p, pattern.bound
    locations = [Location(f"seen_{i}") for i in range(bound + 1)]
    locations.append(Location("err"))
    edges = []
    for i in range(bound):
        edges.append(Edge(f"seen_{i}", f"seen_{i + 1}", sync=f"{p}?",
                          action=f"saw_{p}_{i + 1}"))
    edges.append(Edge(f"seen_{bound}", "err", sync=f"{p}?",
                      action="bound_exceeded"))
    return _make_observer(name, [p], locations, edges, pattern)


def _universality_observer(pattern: Universality, name: str
                           ) -> ObserverSpec:
    """Universality over events uses the violation-event convention:
    the system emits ``not_<p>`` whenever the state property P breaks,
    and the observer is the absence observer on that event."""
    violation = f"not_{pattern.p}"
    locations = [Location("idle"), Location("err")]
    edges = [Edge("idle", "err", sync=f"{violation}?",
                  action=f"saw_{violation}")]
    return _make_observer(name, [violation], locations, edges, pattern)


def _timed_response_observer(pattern: TimedResponse, name: str
                             ) -> ObserverSpec:
    p, s, bound = pattern.p, pattern.s, pattern.bound
    locations = [Location("idle"), Location("waiting"), Location("err")]
    edges = [
        Edge("idle", "waiting", sync=f"{p}?", resets=("c",),
             action=f"saw_{p}"),
        Edge("waiting", "idle", guard=parse_guard(f"c <= {bound}"),
             sync=f"{s}?", action=f"saw_{s}_in_time"),
        Edge("waiting", "err", guard=parse_guard(f"c > {bound}"),
             action="timeout"),
        Edge("waiting", "err", guard=parse_guard(f"c > {bound}"),
             sync=f"{s}?", action=f"saw_{s}_late"),
        Edge("waiting", "waiting", sync=f"{p}?", action=f"saw_{p}_again"),
    ]
    return _make_observer(name, [p, s], locations, edges, pattern,
                          clocks=("c",))
