"""Named, seeded scenarios: one spec behind every bench.

A :class:`Scenario` bundles everything a benchmark used to hardcode as
module-level fixtures — the fleet (flat legacy node farm or a generated
zones-and-conduits estate), the natural-language requirement feed, the
software inventory the vulndb scan runs against, the drift rotation a
storm cycles through, and the compiled attack :class:`~repro.chaos.
plan.Campaign` — keyed by one name and one seed.  Benches that used to
say "32 hardened nodes, these 4 drifts" now say
``get_scenario("seed-legacy")``; runs against other named scenarios are
one string away, and every derived artifact is a pure function of the
scenario seed.

The pinned ``seed-legacy`` scenario reproduces the fixtures the benches
shipped with byte-for-byte (same host names, same drift rotation, same
NL statements, same inventory), so the checked-in BENCH_* figures stay
comparable across the refactor.  The generated scenarios draw a zoned
IEC 62443 estate from :func:`~repro.scenarios.topology.
generate_topology` and compile a recon → exploit → persist campaign
whose stage targets follow the zone structure.
"""

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos.plan import Campaign, CampaignStage, FaultPlan
from repro.core.fleet import Fleet
from repro.environment.profiles import hardened_ubuntu_host
from repro.scenarios.catalogues import patterns_for_stage
from repro.scenarios.topology import FleetTopology, generate_topology

#: The drift rotation the legacy benches cycled (E12's exact tuple:
#: three prohibited installs plus one mandated-package removal).
LEGACY_DRIFTS: Tuple[Tuple[str, str], ...] = (
    ("install", "nis"),
    ("install", "rsh-server"),
    ("install", "telnetd"),
    ("remove", "aide"),
)

#: Windows hosts drift by audit-policy tampering, not package installs.
#: Every subcategory here is one the armed STIG findings actually check
#: (Logon, User Account Management, Sensitive Privilege Use) — a drift
#: outside that set would be detected but its repair would find nothing
#: to enforce, leaving the tampering in place.
WINDOWS_DRIFT_SUBCATEGORIES: Tuple[str, ...] = (
    "Logon", "User Account Management", "Sensitive Privilege Use",
)

#: E1's exact NL feed (the DATE paper's elicitation examples).
LEGACY_NL_REQUIREMENTS: Tuple[str, ...] = (
    "The authentication service shall lock the account.",
    "When 3 consecutive failures occur, the session manager shall "
    "alert the operator within 5 seconds.",
    "The audit subsystem shall not transmit passwords.",
)

#: E1's exact reference inventory (known-vulnerable pins).
LEGACY_INVENTORY: Tuple[Tuple[str, str], ...] = (
    ("openssh-server", "7.6"),
    ("bash", "4.3"),
    ("openssl", "1.0.1f"),
)

#: RESA-matchable statements generated scenarios draw their NL feed
#: from (every template lowers through the resa boilerplates).
NL_TEMPLATE_POOL: Tuple[str, ...] = LEGACY_NL_REQUIREMENTS + (
    "The system shall log every authentication failure.",
    "While in maintenance mode, the system shall disable remote logins.",
    "The system shall encrypt all stored credentials.",
    "If an intrusion is detected, the system shall alert the operator.",
)

#: Product pins generated scenarios draw inventories from.  The first
#: three match bundled CVEs; the rest are clean pins (a realistic scan
#: mixes vulnerable and healthy software).
INVENTORY_POOL: Tuple[Tuple[str, str], ...] = LEGACY_INVENTORY + (
    ("curl", "8.5.0"),
    ("nginx", "1.24.0"),
)


class ScenarioError(KeyError):
    """An unknown scenario name was requested."""


@dataclass(frozen=True)
class Scenario:
    """One named, seeded bench scenario (see module docstring).

    ``zones is None`` marks the legacy shape: a flat fleet of hardened
    Ubuntu nodes named ``{prefix}-{index:02d}``, exactly what the
    benches built by hand.  With ``zones`` set, the fleet (and the
    campaign's stage targets) come from the seeded zones-and-conduits
    generator instead.
    """

    name: str
    seed: int
    summary: str
    hosts: int = 4
    zones: Optional[int] = None
    drifts: Tuple[Tuple[str, str], ...] = LEGACY_DRIFTS
    nl_requirements: Tuple[str, ...] = LEGACY_NL_REQUIREMENTS
    inventory: Tuple[Tuple[str, str], ...] = LEGACY_INVENTORY

    @property
    def generated(self) -> bool:
        return self.zones is not None

    @property
    def kind(self) -> str:
        return "generated" if self.generated else "legacy"

    # -- fleet ----------------------------------------------------------------

    def topology(self, hosts: Optional[int] = None) -> FleetTopology:
        """The scenario's zoned estate (generated scenarios only)."""
        if not self.generated:
            raise ValueError(
                f"scenario {self.name!r} is a legacy flat fleet; "
                f"it has no zones-and-conduits topology")
        return generate_topology(self.seed,
                                 hosts=hosts or self.hosts,
                                 zones=self.zones,
                                 name=self.name)

    def build_fleet(self, hosts: Optional[int] = None,
                    prefix: str = "node",
                    name: Optional[str] = None,
                    catalog=None) -> Fleet:
        """The scenario's fleet.

        Legacy: ``hosts`` hardened Ubuntu nodes named
        ``{prefix}-{index:02d}`` — byte-identical to the fixture fleets
        the benches used to build inline.  Generated: the topology's
        mixed-platform zoned fleet (*prefix* does not apply there; zone
        membership names the hosts).
        """
        if self.generated:
            return self.topology(hosts=hosts).fleet
        from repro.rqcode.catalog import default_catalog

        fleet = Fleet(name or self.name,
                      catalog if catalog is not None else default_catalog())
        for index in range(hosts or self.hosts):
            fleet.add(hardened_ubuntu_host(f"{prefix}-{index:02d}"))
        return fleet

    def build_hosts(self, hosts: Optional[int] = None,
                    prefix: str = "node") -> List:
        """The scenario's hosts as a bare list (no fleet wrapper) —
        what benches that drive :class:`~repro.soc.service.SocService`
        directly consume.  Same naming contract as
        :meth:`build_fleet`."""
        if self.generated:
            return self.topology(hosts=hosts).fleet.hosts()
        return [hardened_ubuntu_host(f"{prefix}-{index:02d}")
                for index in range(hosts or self.hosts)]

    def shard_hints(self, shards: int) -> Optional[Dict[str, int]]:
        """Conduit-aware SOC placement (None for legacy fleets, which
        keep the hash ring's default spread)."""
        if not self.generated:
            return None
        return self.topology().shard_hints(shards)

    # -- drift schedule -------------------------------------------------------

    def drift_for(self, round_index: int,
                  host_index: int) -> Tuple[str, str]:
        """The (action, argument) this storm slot injects."""
        return self.drifts[(round_index + host_index) % len(self.drifts)]

    def apply_drift(self, host, round_index: int, host_index: int) -> None:
        """Inject one platform-appropriate drift on *host*.

        Ubuntu hosts follow the scenario's package rotation; Windows
        hosts (generated estates mix platforms) tamper with audit
        policy, the drift class their catalogue findings watch.  Only
        the Success flag is cleared: each rotation subcategory pairs a
        success-only with a failure-only finding, and a full clear
        would make both repairs effective — two effective repairs for
        one drift event, which the chaos conservation invariants
        rightly reject.
        """
        if host.os_family == "windows":
            host.drift_audit_policy(
                WINDOWS_DRIFT_SUBCATEGORIES[
                    (round_index + host_index)
                    % len(WINDOWS_DRIFT_SUBCATEGORIES)],
                clear_failure=False)
            return
        action, package = self.drift_for(round_index, host_index)
        if action == "install":
            host.drift_install_package(package)
        else:
            host.drift_remove_package(package)

    # -- fault plans and campaigns -------------------------------------------

    def fault_plan(self, rate: float = 0.0, **overrides) -> FaultPlan:
        """Every fault site at *rate*, seeded by the scenario.

        Stall knobs are pinned to zero (the E14 convention: measure
        the runtime's degradation machinery, not configured sleeps);
        *overrides* adjust individual fields on top.
        """
        settings = dict(
            seed=self.seed,
            worker_crash=rate,
            worker_hang=rate,
            session_error=rate,
            repair_raise=rate,
            repair_noop=rate,
            event_duplicate=rate,
            event_reorder=rate,
            event_delay=rate,
            config_slow=rate,
            hang_seconds=0.0,
            delay_seconds=0.0,
            config_delay_seconds=0.0,
        )
        settings.update(overrides)
        return FaultPlan(**settings)

    def compile_campaign(self) -> Campaign:
        """Compile the scenario's attack campaign.

        Legacy: one untargeted fault-free "storm" stage — the flat
        drift storm the old benches ran, expressed in campaign form.
        Generated: a recon → exploit → persist schedule whose stage
        targets walk the zone structure outward-in (recon touches the
        outermost zone, exploit the middle, persistence the deepest),
        each stage annotated with CAPEC patterns from the bundled
        catalogue and running a seeded low-rate fault mix.  Pure
        function of the scenario — compiling twice yields equal
        campaigns, which is what the replay tests lean on.
        """
        if not self.generated:
            return Campaign(
                name=f"{self.name}-storm",
                seed=self.seed,
                stages=(CampaignStage(name="storm",
                                      plan=self.fault_plan(0.0)),),
            )
        topology = self.topology()
        zone_targets = [zone.hosts for zone in topology.zones]
        # Outermost, middle, and deepest zones take the three phases.
        picks = (zone_targets[0],
                 zone_targets[len(zone_targets) // 2],
                 zone_targets[-1])
        rng = random.Random(f"scenario:{self.seed}:campaign")
        stages = []
        for stage_name, targets in zip(("recon", "exploit", "persist"),
                                       picks):
            patterns = patterns_for_stage(stage_name)
            chosen = rng.sample([p.capec_id for p in patterns],
                                k=min(2, len(patterns)))
            rate = round(rng.uniform(0.01, 0.05), 3)
            stages.append(CampaignStage(
                name=stage_name,
                plan=self.fault_plan(rate),
                capec_ids=tuple(sorted(chosen)),
                target_hosts=tuple(targets),
                rounds=rng.randint(1, 2),
                extend_rate=round(rng.uniform(0.0, 0.5), 3),
                max_extra_rounds=1,
            ))
        return Campaign(name=f"{self.name}-campaign", seed=self.seed,
                        stages=tuple(stages))

    # -- pipeline inputs ------------------------------------------------------

    def inventory_for(self, host_name: str, platform: str):
        """The scenario's software inventory as a scan input."""
        from repro.vulndb import SoftwareInventory

        return SoftwareInventory.of(host_name, platform,
                                    dict(self.inventory))

    # -- presentation ---------------------------------------------------------

    def describe(self) -> str:
        shape = (f"{self.zones} zones" if self.generated
                 else "flat legacy fleet")
        return (f"scenario {self.name!r} seed {self.seed}: "
                f"{self.hosts} hosts, {shape}; "
                f"{len(self.drifts)} drift rotation(s), "
                f"{len(self.nl_requirements)} NL statement(s)")

    def to_dict(self) -> Dict[str, object]:
        """The full machine-readable scenario (``repro scenarios
        emit``): parameters, compiled campaign, and — for generated
        scenarios — the zone/conduit structure and shard hints."""
        document: Dict[str, object] = {
            "name": self.name,
            "seed": self.seed,
            "kind": self.kind,
            "summary": self.summary,
            "hosts": self.hosts,
            "zones": self.zones,
            "drifts": [list(pair) for pair in self.drifts],
            "nl_requirements": list(self.nl_requirements),
            "inventory": {name: version
                          for name, version in self.inventory},
            "campaign": self.compile_campaign().to_dict(),
        }
        if self.generated:
            topology = self.topology()
            document["topology"] = {
                "zones": [{"name": zone.name,
                           "level": int(zone.level),
                           "hosts": list(zone.hosts)}
                          for zone in topology.zones],
                "conduits": [{"source": c.source, "dest": c.dest,
                              "boundary_srs": list(c.boundary_srs)}
                             for c in topology.conduits],
                "shard_hints": topology.shard_hints(4),
            }
        return document


#: The scenario registry.  ``seed-legacy`` pins the pre-refactor bench
#: fixtures; the generated trio spans small/medium/deep estates.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario for scenario in (
        Scenario(
            name="seed-legacy",
            seed=14,
            summary="the pre-scenario bench fixtures, pinned: flat "
                    "hardened-Ubuntu node farm, E12's drift rotation, "
                    "E1's NL statements and reference inventory",
            hosts=32,
        ),
        Scenario(
            name="zoned-perimeter",
            seed=11,
            summary="small 3-zone estate (enterprise/dmz/operations); "
                    "campaign works the perimeter zones",
            hosts=9,
            zones=3,
        ),
        Scenario(
            name="zoned-depth",
            seed=23,
            summary="4-zone estate reaching the control zone; "
                    "persistence stage lands past the SL3 boundary",
            hosts=12,
            zones=4,
            nl_requirements=(NL_TEMPLATE_POOL[3], NL_TEMPLATE_POOL[4],
                             NL_TEMPLATE_POOL[0]),
            inventory=(INVENTORY_POOL[0], INVENTORY_POOL[2],
                       INVENTORY_POOL[3]),
        ),
        Scenario(
            name="zoned-estate",
            seed=47,
            summary="full 5-zone estate down to safety systems; the "
                    "widest fleet the generated scenarios produce",
            hosts=15,
            zones=5,
            drifts=(("install", "telnetd"), ("remove", "aide"),
                    ("install", "nis")),
            nl_requirements=(NL_TEMPLATE_POOL[5], NL_TEMPLATE_POOL[6],
                             NL_TEMPLATE_POOL[1]),
            inventory=(INVENTORY_POOL[1], INVENTORY_POOL[2],
                       INVENTORY_POOL[4]),
        ),
    )
}


def scenario_names() -> List[str]:
    """Registered scenario names, ``seed-legacy`` first."""
    names = sorted(SCENARIOS)
    names.remove("seed-legacy")
    return ["seed-legacy"] + names


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"no scenario {name!r}; registered: "
            f"{', '.join(scenario_names())}")


def generated_scenarios() -> List[Scenario]:
    """The generated (non-legacy) scenarios, name-ordered."""
    return [SCENARIOS[name] for name in scenario_names()
            if SCENARIOS[name].generated]
