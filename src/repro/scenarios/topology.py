"""Zones-and-conduits topology generator (IEC 62443-3-2 shape).

IEC 62443 partitions a system under consideration into *zones* —
groupings of assets sharing a security level — connected by
*conduits*, the communication channels whose boundary protections SR
5.1/SR 5.2 mandate.  This module maps that structure onto the
simulated estate: a seeded generator draws a zone graph from realistic
templates (enterprise IT down to control systems), populates each
zone with mixed Win10/Ubuntu hosts built from the environment
profiles, and derives **conduit-aware routing hints** — a host→shard
placement that keeps a zone's event traffic on as few SOC shards as
possible, so cross-zone interleaving inside one shard (the expensive
kind to reason about in an investigation) is minimized.

Everything is a pure function of the seed: the same seed always
yields the same zones, hosts, conduits, and hints.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.fleet import Fleet
from repro.environment.profiles import (
    default_ubuntu_host,
    default_windows_host,
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.standards.iec62443 import SecurityLevel, requirements_for_level

#: Zone templates in conduit (depth) order: enterprise IT at the top,
#: safety systems at the bottom.  ``windows_ratio`` is the typical
#: Win10 share of the zone; hosts/ratio get seeded jitter around it.
ZONE_TEMPLATES: Tuple[Tuple[str, SecurityLevel, float], ...] = (
    ("enterprise", SecurityLevel.SL1, 0.75),
    ("dmz", SecurityLevel.SL2, 0.50),
    ("operations", SecurityLevel.SL2, 0.25),
    ("control", SecurityLevel.SL3, 0.00),
    ("safety", SecurityLevel.SL4, 0.00),
)


@dataclass(frozen=True)
class Zone:
    """One IEC 62443 zone: a named SL boundary around hosts."""

    name: str
    level: SecurityLevel
    hosts: Tuple[str, ...]

    @property
    def host_count(self) -> int:
        return len(self.hosts)


@dataclass(frozen=True)
class Conduit:
    """A sanctioned communication channel between two zones.

    ``boundary_srs`` names the IEC 62443-3-3 requirements the conduit
    realizes (network segmentation / zone boundary protection).
    """

    source: str
    dest: str
    boundary_srs: Tuple[str, ...] = ("SR 5.1", "SR 5.2")


@dataclass
class FleetTopology:
    """A generated zones-and-conduits estate plus its fleet."""

    name: str
    seed: int
    fleet: Fleet
    zones: Tuple[Zone, ...]
    conduits: Tuple[Conduit, ...]
    zone_of: Dict[str, str] = field(default_factory=dict)

    @property
    def host_count(self) -> int:
        return sum(zone.host_count for zone in self.zones)

    def zone(self, name: str) -> Zone:
        for zone in self.zones:
            if zone.name == name:
                return zone
        raise KeyError(f"no zone {name!r}; zones: "
                       f"{[z.name for z in self.zones]}")

    def shard_hints(self, shards: int) -> Dict[str, int]:
        """Conduit-aware host→shard placement for the SOC.

        Zones are walked in conduit (depth) order and their hosts
        assigned to shards chunk-wise, so a zone's hosts land on one
        shard (or adjacent shards when the zone overflows the ideal
        per-shard load).  Cross-zone mixing inside a shard only
        happens where two zones share a conduit boundary — the hint
        the SOC sharder can exploit to keep correlated traffic local.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        total = self.host_count
        ideal = max(1, -(-total // shards))     # ceil division
        hints: Dict[str, int] = {}
        shard = 0
        load = 0
        for zone in self.zones:
            for host_name in zone.hosts:
                if load >= ideal and shard < shards - 1:
                    shard += 1
                    load = 0
                hints[host_name] = shard
                load += 1
        return hints

    def shard_census(self, shards: int) -> Dict[int, Dict[str, int]]:
        """shard -> {zone: host count} under :meth:`shard_hints`."""
        census: Dict[int, Dict[str, int]] = {}
        for host_name, shard in self.shard_hints(shards).items():
            zone = self.zone_of[host_name]
            census.setdefault(shard, {})
            census[shard][zone] = census[shard].get(zone, 0) + 1
        return census

    def zone_requirements(self) -> Dict[str, int]:
        """zone -> number of IEC 62443-3-3 SRs its level demands."""
        return {zone.name: len(requirements_for_level(zone.level))
                for zone in self.zones}

    def validate(self) -> List[str]:
        """Structural problems (empty list = a valid topology)."""
        problems: List[str] = []
        if not self.zones:
            problems.append("topology has no zones")
        fleet_hosts = {host.name for host in self.fleet.hosts()}
        zoned_hosts = [h for zone in self.zones for h in zone.hosts]
        if len(zoned_hosts) != len(set(zoned_hosts)):
            problems.append("a host appears in more than one zone")
        if set(zoned_hosts) != fleet_hosts:
            problems.append(
                f"zone membership and fleet disagree: "
                f"{sorted(set(zoned_hosts) ^ fleet_hosts)}")
        zone_names = {zone.name for zone in self.zones}
        for conduit in self.conduits:
            for end in (conduit.source, conduit.dest):
                if end not in zone_names:
                    problems.append(
                        f"conduit {conduit.source}->{conduit.dest} "
                        f"references unknown zone {end!r}")
        for zone in self.zones:
            if not zone.hosts:
                problems.append(f"zone {zone.name!r} has no hosts")
        reachable = set()
        if self.zones:
            frontier = [self.zones[0].name]
            edges = {(c.source, c.dest) for c in self.conduits}
            edges |= {(d, s) for s, d in edges}
            while frontier:
                current = frontier.pop()
                if current in reachable:
                    continue
                reachable.add(current)
                frontier.extend(d for s, d in edges if s == current)
        isolated = zone_names - reachable
        if isolated:
            problems.append(f"zone(s) unreachable through conduits: "
                            f"{sorted(isolated)}")
        return problems

    def describe(self) -> str:
        zones = ", ".join(
            f"{zone.name}(SL{zone.level.value}, {zone.host_count} hosts)"
            for zone in self.zones)
        return (f"topology {self.name!r} seed {self.seed}: {zones}; "
                f"{len(self.conduits)} conduit(s)")


def _host_factory(level: SecurityLevel, platform: str):
    """Profile choice per zone SL: low-SL zones run stock images,
    SL3+ zones start from the hardened profiles."""
    if platform == "windows":
        return (hardened_windows_host if level >= SecurityLevel.SL3
                else default_windows_host)
    return (hardened_ubuntu_host if level >= SecurityLevel.SL3
            else default_ubuntu_host)


def generate_topology(seed: int,
                      hosts: int = 8,
                      zones: Optional[int] = None,
                      name: Optional[str] = None,
                      catalog=None,
                      harden: bool = True) -> FleetTopology:
    """Generate one seeded zones-and-conduits estate.

    Draws a zone count (3–5 unless pinned), distributes the *hosts*
    budget across the selected :data:`ZONE_TEMPLATES` (every zone gets
    at least one host), jitters each zone's Win10 share around its
    template ratio, and strings conduits down the zone chain plus —
    on some seeds — one lateral maintenance conduit.  With *harden*
    (the default) the fleet is brought to full compliance after
    construction, so generated estates are valid starting points for
    drift-storm scenarios regardless of the zone's stock image.
    """
    from repro.rqcode.catalog import default_catalog

    rng = random.Random(f"topology:{seed}")
    zone_count = zones if zones is not None else rng.randint(3, 5)
    zone_count = max(1, min(zone_count, len(ZONE_TEMPLATES)))
    templates = ZONE_TEMPLATES[:zone_count]
    if hosts < zone_count:
        raise ValueError(f"need at least {zone_count} hosts for "
                         f"{zone_count} zones, got {hosts}")

    # Host budget: one guaranteed per zone, remainder seeded.
    counts = [1] * zone_count
    for _ in range(hosts - zone_count):
        counts[rng.randrange(zone_count)] += 1

    topology_name = name or f"zoned-{seed}"
    fleet = Fleet(topology_name,
                  catalog if catalog is not None else default_catalog())
    built_zones: List[Zone] = []
    zone_of: Dict[str, str] = {}
    for index, ((zone_name, level, ratio), count) in enumerate(
            zip(templates, counts)):
        jitter = rng.uniform(-0.15, 0.15)
        share = min(1.0, max(0.0, ratio + jitter))
        windows_count = round(count * share)
        members: List[str] = []
        for host_index in range(count):
            platform = ("windows" if host_index < windows_count
                        else "ubuntu")
            factory = _host_factory(level, platform)
            short = "win" if platform == "windows" else "ubu"
            host_name = (f"z{index}-{zone_name}-{short}"
                         f"-{host_index:02d}")
            fleet.add(factory(host_name))
            members.append(host_name)
            zone_of[host_name] = zone_name
        built_zones.append(Zone(zone_name, level, tuple(members)))

    conduits = [Conduit(a.name, b.name)
                for a, b in zip(built_zones, built_zones[1:])]
    if len(built_zones) >= 3 and rng.random() < 0.5:
        # A lateral maintenance conduit skipping one boundary — the
        # kind of path a segmentation audit exists to find.
        conduits.append(Conduit(built_zones[0].name,
                                built_zones[2].name))

    if harden:
        fleet.harden()
    return FleetTopology(
        name=topology_name,
        seed=seed,
        fleet=fleet,
        zones=tuple(built_zones),
        conduits=tuple(conduits),
        zone_of=zone_of,
    )
