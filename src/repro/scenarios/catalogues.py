"""Bundled attack-pattern catalogue: the CAPEC slice scenarios draw on.

The CWE side of the weakness taxonomy already ships with the
vulnerability database (:data:`repro.vulndb.records.CWE_CATALOG`);
this module adds the attack-pattern side — a curated CAPEC slice where
every pattern is keyed to a campaign *stage* (recon → exploit →
persist) and cross-linked to the CWE entries it exercises.  Two
consumers:

* the :class:`~repro.reqs.adapters.CapecAdapter` front-end lowers
  patterns into IR requirements whose provenance chains cite both the
  CAPEC id and the related CWE ids;
* the campaign compiler (:mod:`repro.scenarios.campaign`) keys each
  :class:`~repro.chaos.plan.CampaignStage` to the patterns it
  realizes, so a staged chaos run documents *which* attack behaviours
  its fault mix stands in for.

Like the CWE slice, this is a realistic offline corpus, not a feed
mirror: ids and names are genuine CAPEC entries, the stage assignment
is the curation.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Campaign stage names, in attack order.
STAGES: Tuple[str, ...] = ("recon", "exploit", "persist")


@dataclass(frozen=True)
class AttackPattern:
    """One Common Attack Pattern Enumeration (CAPEC) entry."""

    capec_id: str                    # "CAPEC-66"
    name: str
    stage: str                       # one of STAGES
    related_cwes: Tuple[str, ...]    # CWE ids this pattern exercises
    likelihood: str                  # low / medium / high
    severity: str                    # low / medium / high / critical
    summary: str

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ValueError(
                f"{self.capec_id}: stage must be one of {STAGES}, "
                f"got {self.stage!r}")


#: The CAPEC slice scenarios are built from, keyed by id.
CAPEC_CATALOG: Dict[str, AttackPattern] = {
    pattern.capec_id: pattern for pattern in (
        # -- reconnaissance ------------------------------------------------
        AttackPattern(
            "CAPEC-169", "Footprinting", "recon",
            ("CWE-778",), "high", "low",
            "An adversary engages in probing and exploration to map "
            "the target's network and services."),
        AttackPattern(
            "CAPEC-300", "Port Scanning", "recon",
            ("CWE-778",), "high", "low",
            "An adversary scans ports to fingerprint reachable "
            "services ahead of an exploit attempt."),
        AttackPattern(
            "CAPEC-312", "Active OS Fingerprinting", "recon",
            ("CWE-16",), "medium", "low",
            "An adversary sends crafted probes whose responses reveal "
            "the operating system in use."),
        AttackPattern(
            "CAPEC-497", "File Discovery", "recon",
            ("CWE-284",), "medium", "low",
            "An adversary enumerates files and directories looking "
            "for configuration and credential material."),
        AttackPattern(
            "CAPEC-573", "Process Footprinting", "recon",
            ("CWE-284",), "medium", "low",
            "An adversary enumerates running processes to find "
            "exploitable or security-relevant software."),
        # -- exploitation --------------------------------------------------
        AttackPattern(
            "CAPEC-66", "SQL Injection", "exploit",
            ("CWE-89", "CWE-20"), "high", "critical",
            "An adversary injects SQL through unsanitized inputs to "
            "read or alter backend data."),
        AttackPattern(
            "CAPEC-63", "Cross-Site Scripting", "exploit",
            ("CWE-79", "CWE-20"), "high", "high",
            "An adversary embeds malicious scripts in content served "
            "to other users."),
        AttackPattern(
            "CAPEC-88", "OS Command Injection", "exploit",
            ("CWE-78", "CWE-20"), "medium", "critical",
            "An adversary injects shell commands through unsanitized "
            "inputs passed to a command interpreter."),
        AttackPattern(
            "CAPEC-100", "Overflow Buffers", "exploit",
            ("CWE-119", "CWE-787"), "medium", "critical",
            "An adversary overflows a buffer to corrupt memory and "
            "redirect execution."),
        AttackPattern(
            "CAPEC-49", "Password Brute Forcing", "exploit",
            ("CWE-307", "CWE-521"), "high", "high",
            "An adversary tries many candidate passwords against an "
            "authentication interface."),
        AttackPattern(
            "CAPEC-233", "Privilege Escalation", "exploit",
            ("CWE-269", "CWE-250"), "medium", "high",
            "An adversary exploits weak privilege management to gain "
            "capabilities beyond those granted."),
        # -- persistence ---------------------------------------------------
        AttackPattern(
            "CAPEC-550", "Install New Service", "persist",
            ("CWE-284",), "medium", "high",
            "An adversary installs a new service to survive reboots "
            "and maintain access."),
        AttackPattern(
            "CAPEC-564", "Run Software at Logon", "persist",
            ("CWE-284",), "medium", "high",
            "An adversary registers software to execute at user logon "
            "for persistence."),
        AttackPattern(
            "CAPEC-478", "Modification of Windows Service Configuration",
            "persist", ("CWE-284", "CWE-269"), "low", "high",
            "An adversary alters an existing service's configuration "
            "to run attacker-controlled code."),
        AttackPattern(
            "CAPEC-165", "File Manipulation", "persist",
            ("CWE-284",), "medium", "medium",
            "An adversary plants or alters files (cron entries, rc "
            "scripts, prohibited packages) to keep a foothold."),
    )
}


def patterns_for_stage(stage: str) -> List[AttackPattern]:
    """The catalogue patterns assigned to *stage*, id-ordered."""
    if stage not in STAGES:
        raise KeyError(f"unknown stage {stage!r}; stages: {STAGES}")
    return sorted((p for p in CAPEC_CATALOG.values() if p.stage == stage),
                  key=lambda p: int(p.capec_id.split("-")[1]))


def get_pattern(capec_id: str) -> AttackPattern:
    """Look one pattern up by id (raises ``KeyError`` with the ids)."""
    try:
        return CAPEC_CATALOG[capec_id]
    except KeyError:
        raise KeyError(f"unknown attack pattern {capec_id!r}; "
                       f"catalogued: {sorted(CAPEC_CATALOG)}")
