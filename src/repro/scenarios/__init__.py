"""Scenario subsystem: catalogues, campaigns, and generated estates.

Three fronts behind one package:

* :mod:`repro.scenarios.catalogues` — the bundled CAPEC attack-pattern
  corpus (the CWE weakness corpus lives in :mod:`repro.vulndb.records`)
  that the ``cwe``/``capec`` requirement front-ends and the campaign
  compiler annotate from;
* :mod:`repro.scenarios.topology` — the seeded IEC 62443
  zones-and-conduits estate generator with conduit-aware SOC shard
  hints;
* :mod:`repro.scenarios.library` — the named-scenario registry every
  bench draws its fleet, requirements, and fault schedule from
  (``seed-legacy`` pins the pre-refactor fixtures).
"""

from repro.scenarios.catalogues import (
    CAPEC_CATALOG,
    STAGES,
    AttackPattern,
    get_pattern,
    patterns_for_stage,
)
from repro.scenarios.library import (
    LEGACY_DRIFTS,
    LEGACY_INVENTORY,
    LEGACY_NL_REQUIREMENTS,
    SCENARIOS,
    Scenario,
    ScenarioError,
    generated_scenarios,
    get_scenario,
    scenario_names,
)
from repro.scenarios.topology import (
    ZONE_TEMPLATES,
    Conduit,
    FleetTopology,
    Zone,
    generate_topology,
)

__all__ = [
    "AttackPattern",
    "CAPEC_CATALOG",
    "Conduit",
    "FleetTopology",
    "LEGACY_DRIFTS",
    "LEGACY_INVENTORY",
    "LEGACY_NL_REQUIREMENTS",
    "SCENARIOS",
    "STAGES",
    "Scenario",
    "ScenarioError",
    "Zone",
    "ZONE_TEMPLATES",
    "generate_topology",
    "generated_scenarios",
    "get_pattern",
    "get_scenario",
    "patterns_for_stage",
    "scenario_names",
]
