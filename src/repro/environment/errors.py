"""Exception hierarchy for the simulated environment."""


class EnvironmentError_(Exception):
    """Base class for all simulated-environment failures.

    Named with a trailing underscore to avoid shadowing the (deprecated)
    builtin ``EnvironmentError`` alias of :class:`OSError`.
    """


class CommandError(EnvironmentError_):
    """A simulated command-line tool was invoked with bad arguments.

    Mirrors the non-zero-exit-plus-stderr behaviour of the real tools.
    The offending argument vector is kept for diagnostics.
    """

    def __init__(self, message, argv=None):
        super().__init__(message)
        self.argv = list(argv) if argv is not None else []


class UnknownSubcategoryError(CommandError):
    """``auditpol`` was asked about an audit subcategory that does not exist."""


class UnknownPackageError(EnvironmentError_):
    """A package operation referenced a name absent from the package universe."""

    def __init__(self, name):
        super().__init__(f"unknown package: {name!r}")
        self.name = name


class UnknownServiceError(EnvironmentError_):
    """A service operation referenced a service that is not registered."""

    def __init__(self, name):
        super().__init__(f"unknown service: {name!r}")
        self.name = name
