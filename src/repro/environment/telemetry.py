"""Host telemetry: sample compliance state into TEARS-judgeable traces.

The operations story closes when what the protection loop *did* can be
audited post-hoc.  :class:`HostSampler` snapshots a host's compliance
signals (one boolean signal per STIG finding, plus an aggregate ratio)
into a :class:`~repro.tears.trace.TimedTrace`, so a TEARS guarded
assertion like ``WHEN compliance < 1 THEN compliance == 1 WITHIN 5``
can judge drift-and-repair episodes from the log alone.
"""

from typing import Optional

from repro.environment.host import SimulatedHost
from repro.rqcode.catalog import StigCatalog
from repro.rqcode.concepts import CheckStatus
from repro.tears.trace import TimedTrace


def signal_name(finding_id: str) -> str:
    """TEARS signal name for one finding (``V-219157`` -> ``ok_V_219157``)."""
    return "ok_" + finding_id.replace("-", "_")


class HostSampler:
    """Periodically snapshot a host's compliance into a timed trace.

    Args:
        host: The host to observe.
        catalog: Findings to sample (platform-filtered automatically).
        trace: Target trace; a fresh one is created when omitted.
    """

    def __init__(self, host: SimulatedHost, catalog: StigCatalog,
                 trace: Optional[TimedTrace] = None):
        self.host = host
        self.catalog = catalog
        self.trace = trace if trace is not None else TimedTrace()
        self._entries = catalog.entries_for(host.os_family)

    def sample(self, time: Optional[float] = None) -> dict:
        """Take one snapshot at *time* (defaults to the host's logical
        clock) and append it to the trace.  Returns the signal dict."""
        values = {}
        passing = 0
        for entry in self._entries:
            requirement = entry.instantiate(self.host)
            ok = requirement.check() is CheckStatus.PASS
            values[signal_name(entry.finding_id)] = 1.0 if ok else 0.0
            passing += ok
        values["compliance"] = (
            passing / len(self._entries) if self._entries else 1.0)
        at = float(self.host.events.clock) if time is None else time
        # Logical clocks may not advance between samples; nudge the
        # timestamp so the trace stays monotone.
        if len(self.trace) and at <= self.trace[-1].time:
            at = self.trace[-1].time + 0.001
        self.trace.record(at, **values)
        return values
