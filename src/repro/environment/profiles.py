"""Host profile factories.

Three profiles per platform, matching experiment E3's host axis:

* **default** — a stock install: some findings pass, most audit policies
  are unset, convenience packages are present.
* **hardened** — fully STIG-compliant for the bundled catalogue.
* **adversarial** — actively violates every finding the catalogue knows
  about (prohibited packages installed, required packages removed, audit
  disabled), the worst case the enforcement path must repair.
"""

from repro.environment.host import SimulatedHost

#: Audit subcategories the Windows 10 STIG slice requires, with the
#: (success, failure) flags STIG mandates.
_WIN10_REQUIRED_AUDIT = {
    "User Account Management": (True, True),
    "Logon": (True, True),
    "Sensitive Privilege Use": (True, True),
    "Account Lockout": (False, True),
    "Security Group Management": (True, False),
    "Special Logon": (True, False),
    "Audit Policy Change": (True, True),
    "Security State Change": (True, False),
}

#: Packages Ubuntu STIGs prohibit / require.
UBUNTU_PROHIBITED_PACKAGES = ("nis", "rsh-server", "telnetd")
UBUNTU_REQUIRED_PACKAGES = (
    "openssh-server", "vlock", "libpam-pkcs11", "opensc-pkcs11",
    "aide", "auditd", "ufw", "rsyslog", "libpam-pwquality", "sssd",
)

#: sshd_config keys the STIG slice pins.
_SSHD_STIG_SETTINGS = {
    "Protocol": "2",
    "PermitEmptyPasswords": "no",
    "PermitRootLogin": "no",
    "ClientAliveInterval": "600",
    "ClientAliveCountMax": "1",
    "UsePAM": "yes",
    "Ciphers": "aes256-ctr,aes192-ctr,aes128-ctr",
    "MACs": "hmac-sha2-512,hmac-sha2-256",
}

_LOGIN_DEFS_STIG_SETTINGS = {
    "ENCRYPT_METHOD": "SHA512",
    "PASS_MAX_DAYS": "60",
    "PASS_MIN_DAYS": "1",
    "UMASK": "077",
}


def default_windows_host(name: str = "win10-default") -> SimulatedHost:
    """Stock Windows 10: only the OS out-of-box audit defaults are set."""
    host = SimulatedHost(name, "windows")
    # Out-of-box Windows audits a handful of subcategories for Success.
    for subcategory in ("Logon", "Logoff", "Special Logon",
                        "User Account Management", "Security State Change"):
        host.audit_store.set(subcategory, success=True, failure=False)
    host.set_setting("registry.LegalNoticeText", "")
    host.set_setting("registry.LmCompatibilityLevel", "3")
    return host


def hardened_windows_host(name: str = "win10-hardened") -> SimulatedHost:
    """Windows 10 meeting every Win10 finding in the bundled catalogue."""
    host = SimulatedHost(name, "windows")
    for subcategory, (success, failure) in _WIN10_REQUIRED_AUDIT.items():
        host.audit_store.set(subcategory, success=success, failure=failure)
    host.set_setting("registry.LegalNoticeText", "DoD Notice and Consent")
    host.set_setting("registry.LmCompatibilityLevel", "5")
    host.set_setting("registry.RequireSecuritySignature", "1")
    host.set_setting("registry.RestrictAnonymous", "1")
    host.accounts.policy.threshold = 3
    host.accounts.policy.duration_minutes = 15
    return host


def adversarial_windows_host(name: str = "win10-adversarial") -> SimulatedHost:
    """Windows 10 with auditing disabled wholesale."""
    host = SimulatedHost(name, "windows")
    for _, subcategory, _setting in list(host.audit_store.items()):
        host.audit_store.set(subcategory, success=False, failure=False)
    host.set_setting("registry.LegalNoticeText", "")
    host.set_setting("registry.LmCompatibilityLevel", "0")
    return host


def default_ubuntu_host(name: str = "ubuntu-default") -> SimulatedHost:
    """Stock Ubuntu 18.04: ssh present, one legacy package lingering."""
    host = SimulatedHost(name, "ubuntu")
    host.dpkg.seed_installed([
        "openssh-server", "openssh-client", "rsyslog", "ufw", "nis",
    ])
    host.services.register("ssh", enabled=True, active=True)
    host.services.register("rsyslog", enabled=True, active=True)
    host.services.register("ufw", enabled=False, active=False)
    host.config.load_text(
        "/etc/ssh/sshd_config",
        "Protocol 2\nPermitRootLogin prohibit-password\nUsePAM yes\n",
    )
    host.config.load_text(
        "/etc/login.defs",
        "ENCRYPT_METHOD SHA512\nPASS_MAX_DAYS 99999\nUMASK 022\n",
    )
    return host


def hardened_ubuntu_host(name: str = "ubuntu-hardened") -> SimulatedHost:
    """Ubuntu 18.04 meeting every Ubuntu finding in the bundled catalogue."""
    host = SimulatedHost(name, "ubuntu")
    host.dpkg.seed_installed(UBUNTU_REQUIRED_PACKAGES)
    for service in ("ssh", "rsyslog", "ufw", "auditd", "sssd"):
        host.services.register(service, enabled=True, active=True)
    sshd_lines = "\n".join(
        f"{key} {value}" for key, value in _SSHD_STIG_SETTINGS.items()
    )
    host.config.load_text("/etc/ssh/sshd_config", sshd_lines)
    login_lines = "\n".join(
        f"{key} {value}" for key, value in _LOGIN_DEFS_STIG_SETTINGS.items()
    )
    host.config.load_text("/etc/login.defs", login_lines)
    host.config.load_text(
        "/etc/pam.d/common-auth",
        "auth_required pam_faildelay.so\nauth_pkcs11 enabled\n",
    )
    return host


def adversarial_ubuntu_host(name: str = "ubuntu-adversarial") -> SimulatedHost:
    """Ubuntu 18.04 violating every finding the catalogue knows about."""
    host = SimulatedHost(name, "ubuntu")
    host.dpkg.seed_installed(UBUNTU_PROHIBITED_PACKAGES)
    host.services.register("ssh", enabled=False, active=False)
    host.config.load_text(
        "/etc/ssh/sshd_config",
        "Protocol 1\nPermitRootLogin yes\nPermitEmptyPasswords yes\n",
    )
    host.config.load_text(
        "/etc/login.defs",
        "ENCRYPT_METHOD MD5\nPASS_MAX_DAYS 99999\nUMASK 000\n",
    )
    return host
