"""Host event log.

Every observable state change on a :class:`~repro.environment.host.
SimulatedHost` is appended to its :class:`EventLog`.  The operations-time
protection loop (WP3) and the runtime monitors consume this log, so the
record format is deliberately small and stable: a monotonically increasing
logical timestamp, a dotted event type, and a free-form payload mapping.
"""

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """One observable occurrence on a host.

    Attributes:
        time: Logical timestamp (monotonic per :class:`EventLog`).
        kind: Dotted event type, e.g. ``"package.removed"`` or
            ``"audit.policy_changed"``.
        payload: Event-specific details; values must be plain data.
    """

    time: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def matches(self, kind: str) -> bool:
        """Return True when this event's kind equals *kind* or is nested
        under it (``"package"`` matches ``"package.removed"``)."""
        return self.kind == kind or self.kind.startswith(kind + ".")


class Subscription:
    """Handle for one :class:`EventLog` subscriber.

    Cancel with :meth:`cancel` — or by calling the handle, which keeps
    the original ``unsubscribe = log.subscribe(cb); unsubscribe()``
    idiom working.  Cancellation is idempotent and safe from any
    thread, including from inside a dispatch.
    """

    def __init__(self, log: "EventLog",
                 callback: Callable[[Event], None]) -> None:
        self._log = log
        self.callback = callback

    @property
    def active(self) -> bool:
        return self._log.is_subscribed(self)

    def cancel(self) -> None:
        self._log.unsubscribe(self)

    def __call__(self) -> None:
        self.cancel()


class EventLog:
    """Append-only sequence of :class:`Event` with subscription support.

    Subscribers are called synchronously on every append; a subscriber
    raising propagates to the emitter, which keeps failure modes visible
    in tests instead of being swallowed.

    The log is safe to share across threads (the SOC runtime appends
    repair events from shard workers while scenario threads inject
    drift): timestamp assignment is atomic, and dispatch iterates a
    snapshot of the subscriber list, so subscribing or unsubscribing —
    even from inside a running dispatch — can never corrupt iteration.
    Every subscriber registered at emit time is invoked exactly once
    unless its subscription was cancelled before its turn came.
    """

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._clock = 0
        self._subscriptions: List[Subscription] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    @property
    def clock(self) -> int:
        """Current logical time (timestamp the *next* event will carry)."""
        return self._clock

    def advance(self, ticks: int = 1) -> int:
        """Advance logical time without emitting an event.

        Useful for modelling quiescent periods in monitoring benchmarks.
        Returns the new clock value.
        """
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        with self._lock:
            self._clock += ticks
            return self._clock

    def emit(self, kind: str, **payload: Any) -> Event:
        """Record an event at the current logical time and advance it.

        The append and timestamp are taken under the log's lock;
        subscribers run *outside* it (against a snapshot of the
        subscriber list), so a subscriber may emit, subscribe, or
        unsubscribe without deadlocking or corrupting dispatch.
        """
        with self._lock:
            event = Event(time=self._clock, kind=kind,
                          payload=dict(payload))
            self._events.append(event)
            self._clock += 1
            snapshot = tuple(self._subscriptions)
        for subscription in snapshot:
            if subscription.active:
                subscription.callback(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> Subscription:
        """Register *callback* for future events.

        Returns a :class:`Subscription` handle; call it (or its
        :meth:`~Subscription.cancel`) to detach.
        """
        subscription = Subscription(self, callback)
        with self._lock:
            self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach *subscription* (idempotent; no-op when unknown)."""
        with self._lock:
            if subscription in self._subscriptions:
                self._subscriptions.remove(subscription)

    def is_subscribed(self, subscription: Subscription) -> bool:
        return subscription in self._subscriptions

    @property
    def subscriber_count(self) -> int:
        return len(self._subscriptions)

    def since(self, time: int) -> List[Event]:
        """Events with ``event.time >= time``, oldest first."""
        return [e for e in self._events if e.time >= time]

    def of_kind(self, kind: str, since: int = 0) -> List[Event]:
        """Events matching *kind* (prefix semantics) from *since* onwards."""
        return [e for e in self._events if e.time >= since and e.matches(kind)]

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        """Most recent event, optionally restricted to *kind*."""
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.matches(kind):
                return event
        return None
