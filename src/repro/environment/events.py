"""Host event log.

Every observable state change on a :class:`~repro.environment.host.
SimulatedHost` is appended to its :class:`EventLog`.  The operations-time
protection loop (WP3) and the runtime monitors consume this log, so the
record format is deliberately small and stable: a monotonically increasing
logical timestamp, a dotted event type, and a free-form payload mapping.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """One observable occurrence on a host.

    Attributes:
        time: Logical timestamp (monotonic per :class:`EventLog`).
        kind: Dotted event type, e.g. ``"package.removed"`` or
            ``"audit.policy_changed"``.
        payload: Event-specific details; values must be plain data.
    """

    time: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def matches(self, kind: str) -> bool:
        """Return True when this event's kind equals *kind* or is nested
        under it (``"package"`` matches ``"package.removed"``)."""
        return self.kind == kind or self.kind.startswith(kind + ".")


class EventLog:
    """Append-only sequence of :class:`Event` with subscription support.

    Subscribers are called synchronously on every append; a subscriber
    raising propagates to the emitter, which keeps failure modes visible
    in tests instead of being swallowed.
    """

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._clock = 0
        self._subscribers: List[Callable[[Event], None]] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    @property
    def clock(self) -> int:
        """Current logical time (timestamp the *next* event will carry)."""
        return self._clock

    def advance(self, ticks: int = 1) -> int:
        """Advance logical time without emitting an event.

        Useful for modelling quiescent periods in monitoring benchmarks.
        Returns the new clock value.
        """
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        self._clock += ticks
        return self._clock

    def emit(self, kind: str, **payload: Any) -> Event:
        """Record an event at the current logical time and advance it."""
        event = Event(time=self._clock, kind=kind, payload=dict(payload))
        self._events.append(event)
        self._clock += 1
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> Callable[[], None]:
        """Register *callback* for future events; returns an unsubscriber."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    def since(self, time: int) -> List[Event]:
        """Events with ``event.time >= time``, oldest first."""
        return [e for e in self._events if e.time >= time]

    def of_kind(self, kind: str, since: int = 0) -> List[Event]:
        """Events matching *kind* (prefix semantics) from *since* onwards."""
        return [e for e in self._events if e.time >= since and e.matches(kind)]

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        """Most recent event, optionally restricted to *kind*."""
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.matches(kind):
                return event
        return None
