"""Service manager: systemd-ish unit states on a simulated host.

STIG findings frequently require a service to be enabled and active
(``auditd``, ``ufw``) or masked (``rsh``), so hosts carry a small service
table with the enable/active distinction systemd makes.
"""

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.environment.errors import UnknownServiceError
from repro.environment.events import EventLog


class ServiceState(enum.Enum):
    """Runtime state of a unit."""

    ACTIVE = "active"
    INACTIVE = "inactive"
    FAILED = "failed"


@dataclass
class ServiceRecord:
    """One unit: whether it starts at boot and whether it is running now."""

    name: str
    enabled: bool = False
    state: ServiceState = ServiceState.INACTIVE
    masked: bool = False


class ServiceManager:
    """Registry of units with systemctl-like operations."""

    def __init__(self, event_log: Optional[EventLog] = None):
        self._services: Dict[str, ServiceRecord] = {}
        self._event_log = event_log

    def register(self, name: str, enabled: bool = False,
                 active: bool = False, masked: bool = False) -> ServiceRecord:
        """Add a unit to the table (idempotent overwrite)."""
        record = ServiceRecord(
            name=name,
            enabled=enabled,
            state=ServiceState.ACTIVE if active else ServiceState.INACTIVE,
            masked=masked,
        )
        self._services[name] = record
        return record

    def known(self, name: str) -> bool:
        return name in self._services

    def get(self, name: str) -> ServiceRecord:
        record = self._services.get(name)
        if record is None:
            raise UnknownServiceError(name)
        return record

    def is_active(self, name: str) -> bool:
        return self.known(name) and self.get(name).state is ServiceState.ACTIVE

    def is_enabled(self, name: str) -> bool:
        return self.known(name) and self.get(name).enabled

    def is_masked(self, name: str) -> bool:
        return self.known(name) and self.get(name).masked

    def names(self) -> List[str]:
        return sorted(self._services)

    # -- systemctl verbs ----------------------------------------------------

    def start(self, name: str) -> None:
        record = self.get(name)
        if record.masked:
            raise UnknownServiceError(f"{name} is masked")
        if record.state is not ServiceState.ACTIVE:
            record.state = ServiceState.ACTIVE
            self._emit("service.started", name=name)

    def stop(self, name: str) -> None:
        record = self.get(name)
        if record.state is ServiceState.ACTIVE:
            record.state = ServiceState.INACTIVE
            self._emit("service.stopped", name=name)

    def enable(self, name: str) -> None:
        record = self.get(name)
        if record.masked:
            raise UnknownServiceError(f"{name} is masked")
        if not record.enabled:
            record.enabled = True
            self._emit("service.enabled", name=name)

    def disable(self, name: str) -> None:
        record = self.get(name)
        if record.enabled:
            record.enabled = False
            self._emit("service.disabled", name=name)

    def mask(self, name: str) -> None:
        """Mask a unit: stopped, disabled, and unstartable until unmasked."""
        record = self.get(name)
        record.masked = True
        record.enabled = False
        if record.state is ServiceState.ACTIVE:
            record.state = ServiceState.INACTIVE
        self._emit("service.masked", name=name)

    def unmask(self, name: str) -> None:
        record = self.get(name)
        if record.masked:
            record.masked = False
            self._emit("service.unmasked", name=name)

    def fail(self, name: str) -> None:
        """Force a unit into the FAILED state (fault injection for tests)."""
        record = self.get(name)
        record.state = ServiceState.FAILED
        self._emit("service.failed", name=name)

    def _emit(self, kind: str, **payload) -> None:
        if self._event_log is not None:
            self._event_log.emit(kind, **payload)
