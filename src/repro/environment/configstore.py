"""Config-file store: key/value configuration files on a simulated host.

Several Ubuntu STIG findings are satisfied by a line in a configuration
file (``/etc/ssh/sshd_config``, ``/etc/login.defs``, PAM stacks, ...).
:class:`ConfigFileStore` models those files as ordered key -> value maps
with sshd_config-style serialization, which is what the STIG check text
greps for.
"""

from typing import Callable, Dict, List, Optional, Tuple


class ConfigFileStore:
    """A set of configuration files, each an ordered key/value mapping.

    Keys are case-insensitive on lookup (sshd_config semantics) but
    preserve their original spelling on render.  Repeated ``set`` calls
    replace the value in place, keeping line order stable — mirroring how
    hardening scripts edit rather than append.

    Reads accept an optional hook (:meth:`set_read_hook`) invoked before
    every :meth:`get` — the seam the chaos plane uses to model slow
    config backends (NFS-mounted ``/etc``, a wedged configuration
    service) without the store knowing anything about fault injection.
    """

    def __init__(self) -> None:
        self._files: Dict[str, List[Tuple[str, str]]] = {}
        self._read_hook: Optional[Callable[[str, str], None]] = None

    def set_read_hook(
            self, hook: Optional[Callable[[str, str], None]]) -> None:
        """Install (or clear, with ``None``) a pre-read callback.

        The hook receives ``(path, key)`` before each lookup; it may
        delay, record, or raise — the store itself never interprets it.
        """
        self._read_hook = hook

    # -- file-level ---------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def ensure(self, path: str) -> None:
        """Create an empty file if absent."""
        self._files.setdefault(path, [])

    def remove_file(self, path: str) -> None:
        self._files.pop(path, None)

    def paths(self) -> List[str]:
        return sorted(self._files)

    # -- key-level ----------------------------------------------------------

    def get(self, path: str, key: str, default: Optional[str] = None
            ) -> Optional[str]:
        """Value of *key* in *path*, or *default* when file/key is absent."""
        if self._read_hook is not None:
            self._read_hook(path, key)
        entries = self._files.get(path)
        if entries is None:
            return default
        lowered = key.lower()
        for existing_key, value in entries:
            if existing_key.lower() == lowered:
                return value
        return default

    def set(self, path: str, key: str, value: str) -> None:
        """Set *key* to *value*, creating the file if needed."""
        entries = self._files.setdefault(path, [])
        lowered = key.lower()
        for index, (existing_key, _) in enumerate(entries):
            if existing_key.lower() == lowered:
                entries[index] = (existing_key, value)
                return
        entries.append((key, value))

    def unset(self, path: str, key: str) -> bool:
        """Remove *key* from *path*; returns True when something was removed."""
        entries = self._files.get(path)
        if entries is None:
            return False
        lowered = key.lower()
        remaining = [(k, v) for k, v in entries if k.lower() != lowered]
        removed = len(remaining) != len(entries)
        self._files[path] = remaining
        return removed

    def keys(self, path: str) -> List[str]:
        return [k for k, _ in self._files.get(path, [])]

    # -- text round-trip ----------------------------------------------------

    def render(self, path: str) -> str:
        """Serialize the file in ``Key value`` (sshd_config) form."""
        entries = self._files.get(path, [])
        return "\n".join(f"{key} {value}" for key, value in entries)

    def load_text(self, path: str, text: str) -> None:
        """Replace *path* contents by parsing ``Key value`` lines.

        Blank lines and ``#`` comments are skipped, as the real parsers do.
        """
        entries: List[Tuple[str, str]] = []
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            key, _, value = stripped.partition(" ")
            entries.append((key, value.strip()))
        self._files[path] = entries

    def grep(self, path: str, needle: str) -> List[str]:
        """Lines of the rendered file containing *needle* (case-insensitive)."""
        lowered = needle.lower()
        return [
            line for line in self.render(path).splitlines()
            if lowered in line.lower()
        ]

    def snapshot(self) -> Dict[str, Dict[str, str]]:
        """Plain-data view of every file, for drift comparison."""
        return {
            path: {key: value for key, value in entries}
            for path, entries in self._files.items()
        }
