"""Simulated dpkg/apt package manager.

The RQCODE Ubuntu STIG requirements (``UbuntuPackagePattern``) only ever
ask two things of the package system: *is package X installed?* and
*install / remove package X*.  :class:`SimulatedDpkg` answers both over an
in-memory package database and also reproduces the ``dpkg -l <name>``
listing format, because the original Java pattern parses that output.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.environment.errors import EnvironmentError_, UnknownPackageError
from repro.environment.events import EventLog

#: Packages known to the simulated apt universe. Versions are the Ubuntu
#: 18.04 LTS archive versions for the packages the STIG catalogue touches.
DEFAULT_PACKAGE_UNIVERSE: Dict[str, str] = {
    "nis": "3.17.1-1build1",
    "rsh-server": "0.17-17",
    "rsh-client": "0.17-17",
    "telnetd": "0.17-41",
    "ssh": "1:7.6p1-4ubuntu0.7",
    "openssh-server": "1:7.6p1-4ubuntu0.7",
    "openssh-client": "1:7.6p1-4ubuntu0.7",
    "vlock": "2.2.2-8",
    "libpam-pkcs11": "0.6.9-2",
    "opensc-pkcs11": "0.17.0-3ubuntu2",
    "aide": "0.16-3ubuntu0.1",
    "auditd": "1:2.8.2-1ubuntu1.1",
    "ufw": "0.36-0ubuntu0.18.04.2",
    "chrony": "3.2-4ubuntu4.2",
    "rsyslog": "8.32.0-1ubuntu4",
    "libpam-pwquality": "1.4.0-2",
    "sssd": "1.16.1-1ubuntu1.8",
    "libpam-sss": "1.16.1-1ubuntu1.8",
    "apparmor": "2.12-4ubuntu5.3",
    "clamav": "0.103.2+dfsg-0ubuntu0.18.04.1",
    "xinetd": "1:2.3.15.3-1",
    "nfs-kernel-server": "1:1.3.4-2.1ubuntu5",
    "vsftpd": "3.0.3-9build1",
    "snmpd": "5.7.3+dfsg-1.8ubuntu3.8",
}


@dataclass
class PackageRecord:
    """State of one package in the simulated database."""

    name: str
    version: str
    installed: bool = False

    @property
    def status_letters(self) -> str:
        """The dpkg status abbreviation (``ii`` installed, ``un`` not)."""
        return "ii" if self.installed else "un"


class SimulatedDpkg:
    """In-memory dpkg/apt with the query surface the STIG patterns use."""

    def __init__(self, universe: Optional[Dict[str, str]] = None,
                 event_log: Optional[EventLog] = None):
        packages = universe if universe is not None else DEFAULT_PACKAGE_UNIVERSE
        self._records: Dict[str, PackageRecord] = {
            name: PackageRecord(name=name, version=version)
            for name, version in packages.items()
        }
        self._event_log = event_log
        self._broken = False

    def break_tool(self) -> None:
        """Fault injection: every mutation fails until :meth:`repair_tool`.

        Models a wedged package manager (stale lock file, corrupted
        database) — the failure mode enforcement code must surface as
        ``EnforcementStatus.FAILURE`` rather than swallow.
        """
        self._broken = True

    def repair_tool(self) -> None:
        self._broken = False

    @property
    def broken(self) -> bool:
        return self._broken

    def _require_working(self) -> None:
        if self._broken:
            raise EnvironmentError_(
                "dpkg: could not get lock /var/lib/dpkg/lock")

    # -- queries ------------------------------------------------------------

    def known(self, name: str) -> bool:
        """True when *name* exists in the apt universe (any state)."""
        return name in self._records

    def is_installed(self, name: str) -> bool:
        """True when the package is currently installed.

        Unknown packages are simply not installed — mirroring
        ``dpkg -s`` exiting non-zero rather than crashing the caller.
        """
        record = self._records.get(name)
        return record is not None and record.installed

    def installed_packages(self) -> List[str]:
        """Sorted names of all installed packages."""
        return sorted(n for n, r in self._records.items() if r.installed)

    def list_output(self, name: str) -> str:
        """Reproduce ``dpkg -l <name>`` output for one package.

        Raises :class:`UnknownPackageError` for names outside the
        universe, mirroring dpkg's "no packages found matching" error.
        """
        record = self._records.get(name)
        if record is None:
            raise UnknownPackageError(name)
        header = (
            "Desired=Unknown/Install/Remove/Purge/Hold\n"
            "| Status=Not/Inst/Conf-files/Unpacked/halF-conf/Half-inst/"
            "trig-aWait/Trig-pend\n"
            "|/ Err?=(none)/Reinst-required (Status,Err: uppercase=bad)\n"
            "||/ Name           Version        Architecture Description\n"
            "+++-==============-==============-============-============="
        )
        row = (
            f"{record.status_letters}  {record.name:<14} "
            f"{record.version:<14} amd64        (simulated)"
        )
        return f"{header}\n{row}"

    # -- mutations ----------------------------------------------------------

    def install(self, name: str) -> PackageRecord:
        """``apt-get install`` equivalent; idempotent."""
        self._require_working()
        record = self._records.get(name)
        if record is None:
            raise UnknownPackageError(name)
        if not record.installed:
            record.installed = True
            self._emit("package.installed", name=name, version=record.version)
        return record

    def remove(self, name: str) -> PackageRecord:
        """``apt-get remove`` equivalent; idempotent, tolerant of unknowns
        already absent (the real tool warns but succeeds)."""
        self._require_working()
        record = self._records.get(name)
        if record is None:
            raise UnknownPackageError(name)
        if record.installed:
            record.installed = False
            self._emit("package.removed", name=name, version=record.version)
        return record

    def seed_installed(self, names) -> None:
        """Mark *names* installed without emitting events (profile setup)."""
        for name in names:
            record = self._records.get(name)
            if record is None:
                raise UnknownPackageError(name)
            record.installed = True

    def _emit(self, kind: str, **payload) -> None:
        if self._event_log is not None:
            self._event_log.emit(kind, **payload)
