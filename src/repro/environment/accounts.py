"""User accounts with a lockout policy — behavioural substrate.

Account-management STIGs are usually *checked* as configuration, but
their point is behavioural: after N failed logons the account locks.
This module gives hosts a user-account store whose logon path actually
enforces the configured policy and emits the events
(``logon.success``, ``logon.failure``, ``account.locked``,
``account.unlocked``) the audit and protection machinery consume — so a
lockout requirement can be verified end-to-end by *attacking* the host.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.environment.events import EventLog


@dataclass
class LockoutPolicy:
    """The account-lockout knobs the STIG pins.

    ``threshold`` of 0 disables lockout (the insecure default STIG
    forbids); ``duration`` is informational here (no wall clock).
    """

    threshold: int = 0
    duration_minutes: int = 0
    reset_window_minutes: int = 0

    @property
    def lockout_enabled(self) -> bool:
        return self.threshold > 0


@dataclass
class UserAccount:
    """One account's state."""

    name: str
    privileged: bool = False
    locked: bool = False
    failed_attempts: int = 0
    enabled: bool = True


class AccountStore:
    """Accounts plus the policy the logon path enforces."""

    def __init__(self, event_log: Optional[EventLog] = None,
                 policy: Optional[LockoutPolicy] = None):
        self._accounts: Dict[str, UserAccount] = {}
        self._events = event_log
        self.policy = policy if policy is not None else LockoutPolicy()

    # -- management ---------------------------------------------------------

    def add(self, name: str, privileged: bool = False) -> UserAccount:
        if name in self._accounts:
            raise ValueError(f"account exists: {name!r}")
        account = UserAccount(name=name, privileged=privileged)
        self._accounts[name] = account
        self._emit("account.created", user=name, privileged=privileged)
        return account

    def get(self, name: str) -> UserAccount:
        if name not in self._accounts:
            raise KeyError(f"no account {name!r}")
        return self._accounts[name]

    def names(self) -> List[str]:
        return sorted(self._accounts)

    def unlock(self, name: str) -> None:
        """Administrative unlock: clears the lock and the counter."""
        account = self.get(name)
        if account.locked:
            account.locked = False
            account.failed_attempts = 0
            self._emit("account.unlocked", user=name)

    # -- the logon path -------------------------------------------------------

    def logon(self, name: str, success: bool) -> bool:
        """Attempt a logon; returns whether a session was granted.

        Failures count toward the policy threshold; reaching it locks
        the account.  Successful logons reset the counter.  Logons to a
        locked or disabled account are refused outright (and audited as
        failures).
        """
        account = self.get(name)
        if account.locked or not account.enabled:
            self._emit("logon.failure", user=name, reason="locked")
            return False
        if success:
            account.failed_attempts = 0
            self._emit("logon.success", user=name)
            return True
        account.failed_attempts += 1
        self._emit("logon.failure", user=name,
                   attempts=account.failed_attempts)
        if (self.policy.lockout_enabled
                and account.failed_attempts >= self.policy.threshold):
            account.locked = True
            self._emit("account.locked", user=name,
                       after_attempts=account.failed_attempts)
        return False

    def _emit(self, kind: str, **payload) -> None:
        if self._events is not None:
            self._events.emit(kind, **payload)
