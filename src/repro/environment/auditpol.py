"""Simulated ``auditpol.exe``.

The RQCODE Windows 10 STIG requirements (D2.7 Annex 1, class
``AuditPolicyRequirement``) "fork auditpol.exe [and] manipulate its input
and output".  This module reproduces the relevant slice of auditpol's
command-line grammar and report format over an in-memory policy store, so
the same text-manipulating check/enforce logic runs without a Windows
host:

* ``auditpol /get /subcategory:"<name>"``
* ``auditpol /get /category:"<name>"``
* ``auditpol /get /category:*``
* ``auditpol /set /subcategory:"<name>" /success:enable|disable
  /failure:enable|disable``

Output mirrors the real tool::

    System audit policy
    Category/Subcategory                    Setting
    Logon/Logoff
      Logon                                 Success and Failure
"""

import shlex
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.environment.errors import CommandError, UnknownSubcategoryError
from repro.environment.events import EventLog

#: The Windows 10 advanced audit policy taxonomy (category -> subcategories)
#: restricted to the categories the STIG catalogue touches, plus enough
#: neighbours that ``/get /category:*`` output is realistically shaped.
WINDOWS10_AUDIT_TAXONOMY: Dict[str, Tuple[str, ...]] = {
    "Account Logon": (
        "Credential Validation",
        "Kerberos Authentication Service",
        "Kerberos Service Ticket Operations",
        "Other Account Logon Events",
    ),
    "Account Management": (
        "Application Group Management",
        "Computer Account Management",
        "Distribution Group Management",
        "Other Account Management Events",
        "Security Group Management",
        "User Account Management",
    ),
    "Detailed Tracking": (
        "DPAPI Activity",
        "Plug and Play Events",
        "Process Creation",
        "Process Termination",
        "RPC Events",
    ),
    "Logon/Logoff": (
        "Account Lockout",
        "Group Membership",
        "IPsec Extended Mode",
        "IPsec Main Mode",
        "IPsec Quick Mode",
        "Logoff",
        "Logon",
        "Network Policy Server",
        "Other Logon/Logoff Events",
        "Special Logon",
    ),
    "Object Access": (
        "Application Generated",
        "Certification Services",
        "Detailed File Share",
        "File Share",
        "File System",
        "Filtering Platform Connection",
        "Filtering Platform Packet Drop",
        "Handle Manipulation",
        "Kernel Object",
        "Other Object Access Events",
        "Registry",
        "Removable Storage",
        "SAM",
    ),
    "Policy Change": (
        "Audit Policy Change",
        "Authentication Policy Change",
        "Authorization Policy Change",
        "Filtering Platform Policy Change",
        "MPSSVC Rule-Level Policy Change",
        "Other Policy Change Events",
    ),
    "Privilege Use": (
        "Non Sensitive Privilege Use",
        "Other Privilege Use Events",
        "Sensitive Privilege Use",
    ),
    "System": (
        "IPsec Driver",
        "Other System Events",
        "Security State Change",
        "Security System Extension",
        "System Integrity",
    ),
}


@dataclass
class AuditSetting:
    """Audit configuration of one subcategory."""

    success: bool = False
    failure: bool = False

    def render(self) -> str:
        """The setting string auditpol prints for this configuration."""
        if self.success and self.failure:
            return "Success and Failure"
        if self.success:
            return "Success"
        if self.failure:
            return "Failure"
        return "No Auditing"

    @classmethod
    def parse(cls, text: str) -> "AuditSetting":
        """Inverse of :meth:`render`; accepts auditpol's setting strings."""
        normalized = text.strip().lower()
        table = {
            "success and failure": cls(True, True),
            "success": cls(True, False),
            "failure": cls(False, True),
            "no auditing": cls(False, False),
        }
        if normalized not in table:
            raise ValueError(f"unrecognized audit setting: {text!r}")
        return table[normalized]


class AuditPolicyStore:
    """In-memory advanced audit policy: subcategory -> :class:`AuditSetting`.

    The store is the "registry" behind :class:`SimulatedAuditPol`; tests and
    host profiles manipulate it directly, while RQCODE requirements go
    through the textual tool interface as they would on a real host.
    """

    def __init__(self, taxonomy: Optional[Dict[str, Tuple[str, ...]]] = None):
        self._taxonomy = dict(taxonomy or WINDOWS10_AUDIT_TAXONOMY)
        self._settings: Dict[str, AuditSetting] = {}
        self._subcategory_to_category: Dict[str, str] = {}
        for category, subcategories in self._taxonomy.items():
            for subcategory in subcategories:
                self._settings[subcategory] = AuditSetting()
                self._subcategory_to_category[subcategory] = category

    @property
    def categories(self) -> List[str]:
        return sorted(self._taxonomy)

    def subcategories(self, category: str) -> Tuple[str, ...]:
        if category not in self._taxonomy:
            raise UnknownSubcategoryError(f"unknown audit category: {category!r}")
        return self._taxonomy[category]

    def category_of(self, subcategory: str) -> str:
        self._require(subcategory)
        return self._subcategory_to_category[subcategory]

    def get(self, subcategory: str) -> AuditSetting:
        self._require(subcategory)
        return self._settings[subcategory]

    def set(self, subcategory: str, success: Optional[bool] = None,
            failure: Optional[bool] = None) -> AuditSetting:
        """Update a subcategory; ``None`` leaves the flag unchanged."""
        self._require(subcategory)
        setting = self._settings[subcategory]
        if success is not None:
            setting.success = success
        if failure is not None:
            setting.failure = failure
        return setting

    def items(self) -> Iterable[Tuple[str, str, AuditSetting]]:
        """Yield (category, subcategory, setting) in taxonomy order."""
        for category in self.categories:
            for subcategory in self._taxonomy[category]:
                yield category, subcategory, self._settings[subcategory]

    def snapshot(self) -> Dict[str, str]:
        """Rendered settings by subcategory; useful for drift detection."""
        return {sub: setting.render() for _, sub, setting in self.items()}

    def _require(self, subcategory: str) -> None:
        if subcategory not in self._settings:
            raise UnknownSubcategoryError(
                f"unknown audit subcategory: {subcategory!r}"
            )


class SimulatedAuditPol:
    """Text-interface facade over an :class:`AuditPolicyStore`.

    :meth:`run` accepts either an argv list or a single command string
    (``'/get /subcategory:"Logon"'``) and returns the stdout text the real
    tool would print.  Invalid invocations raise :class:`CommandError`,
    matching the real tool's non-zero exit.
    """

    HEADER = "System audit policy"
    COLUMNS = "Category/Subcategory                    Setting"
    _SETTING_COLUMN = 40

    def __init__(self, store: Optional[AuditPolicyStore] = None,
                 event_log: Optional[EventLog] = None):
        self.store = store if store is not None else AuditPolicyStore()
        self._event_log = event_log

    # -- command dispatch ---------------------------------------------------

    def run(self, argv) -> str:
        """Execute one auditpol invocation; returns stdout text."""
        if isinstance(argv, str):
            argv = shlex.split(argv)
        argv = list(argv)
        if argv and argv[0].lower() in ("auditpol", "auditpol.exe"):
            argv = argv[1:]
        if not argv:
            raise CommandError("missing verb (/get or /set)", argv)
        verb = argv[0].lower()
        if verb == "/get":
            return self._run_get(argv[1:])
        if verb == "/set":
            return self._run_set(argv[1:])
        raise CommandError(f"unsupported verb: {argv[0]!r}", argv)

    # -- /get ---------------------------------------------------------------

    def _run_get(self, args: List[str]) -> str:
        options = _parse_options(args)
        if "subcategory" in options:
            name = options["subcategory"]
            category = self.store.category_of(name)
            return self._render([(category, name, self.store.get(name))])
        if "category" in options:
            name = options["category"]
            if name == "*":
                return self._render(list(self.store.items()))
            rows = [
                (name, sub, self.store.get(sub))
                for sub in self.store.subcategories(name)
            ]
            return self._render(rows)
        raise CommandError("/get requires /subcategory: or /category:", args)

    def _render(self, rows) -> str:
        lines = [self.HEADER, self.COLUMNS]
        current_category = None
        for category, subcategory, setting in rows:
            if category != current_category:
                lines.append(category)
                current_category = category
            label = f"  {subcategory}"
            padding = max(1, self._SETTING_COLUMN - len(label))
            lines.append(f"{label}{' ' * padding}{setting.render()}")
        return "\n".join(lines)

    # -- /set ---------------------------------------------------------------

    def _run_set(self, args: List[str]) -> str:
        options = _parse_options(args)
        if "subcategory" not in options:
            raise CommandError("/set requires /subcategory:", args)
        name = options["subcategory"]
        success = _parse_enable(options.get("success"), "success", args)
        failure = _parse_enable(options.get("failure"), "failure", args)
        if success is None and failure is None:
            raise CommandError(
                "/set requires at least one of /success: or /failure:", args
            )
        before = self.store.get(name).render()
        setting = self.store.set(name, success=success, failure=failure)
        if self._event_log is not None:
            self._event_log.emit(
                "audit.policy_changed",
                subcategory=name,
                before=before,
                after=setting.render(),
            )
        return "The command was successfully executed."


def _parse_options(args: List[str]) -> Dict[str, str]:
    """Parse ``/key:value`` tokens; values may carry quotes already
    stripped by shlex."""
    options: Dict[str, str] = {}
    for token in args:
        if not token.startswith("/") or ":" not in token:
            raise CommandError(f"malformed option: {token!r}", args)
        key, _, value = token[1:].partition(":")
        options[key.lower()] = value.strip('"')
    return options


def _parse_enable(value: Optional[str], flag: str, args: List[str]):
    """Map enable/disable strings to booleans; ``None`` passes through."""
    if value is None:
        return None
    lowered = value.lower()
    if lowered == "enable":
        return True
    if lowered == "disable":
        return False
    raise CommandError(f"/{flag}: expects enable or disable, got {value!r}", args)
