"""Simulated host environment substrate.

The VeriDevOps RQCODE requirements check and enforce security settings on
real Windows 10 and Ubuntu hosts (forking ``auditpol.exe``, querying
``dpkg``).  This package provides in-memory stand-ins that speak the same
textual interfaces, so the exact check/enforce code paths run offline.

Public surface:

* :class:`~repro.environment.host.SimulatedHost` — a host with packages,
  services, config files, audit policies and an event log.
* :class:`~repro.environment.auditpol.SimulatedAuditPol` — an
  ``auditpol.exe`` work-alike over an in-memory audit-policy store.
* :class:`~repro.environment.dpkg.SimulatedDpkg` — a dpkg/apt work-alike.
* :mod:`~repro.environment.profiles` — factory functions producing
  default / hardened / adversarial host profiles.
"""

from repro.environment.auditpol import (
    AuditPolicyStore,
    AuditSetting,
    SimulatedAuditPol,
)
from repro.environment.configstore import ConfigFileStore
from repro.environment.dpkg import PackageRecord, SimulatedDpkg
from repro.environment.errors import (
    CommandError,
    EnvironmentError_,
    UnknownPackageError,
    UnknownServiceError,
    UnknownSubcategoryError,
)
from repro.environment.events import Event, EventLog
from repro.environment.host import SimulatedHost
from repro.environment.profiles import (
    adversarial_ubuntu_host,
    adversarial_windows_host,
    default_ubuntu_host,
    default_windows_host,
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.environment.services import ServiceManager, ServiceState

__all__ = [
    "AuditPolicyStore",
    "AuditSetting",
    "CommandError",
    "ConfigFileStore",
    "EnvironmentError_",
    "Event",
    "EventLog",
    "PackageRecord",
    "ServiceManager",
    "ServiceState",
    "SimulatedAuditPol",
    "SimulatedDpkg",
    "SimulatedHost",
    "UnknownPackageError",
    "UnknownServiceError",
    "UnknownSubcategoryError",
    "adversarial_ubuntu_host",
    "adversarial_windows_host",
    "default_ubuntu_host",
    "default_windows_host",
    "hardened_ubuntu_host",
    "hardened_windows_host",
]
