"""The simulated host that requirements are checked and enforced against."""

from typing import Dict, Optional

from repro.environment.accounts import AccountStore
from repro.environment.auditpol import AuditPolicyStore, SimulatedAuditPol
from repro.environment.configstore import ConfigFileStore
from repro.environment.dpkg import SimulatedDpkg
from repro.environment.events import EventLog
from repro.environment.services import ServiceManager


class SimulatedHost:
    """One machine under management.

    A host aggregates the subsystems the STIG catalogue touches:

    * ``auditpol`` — Windows advanced audit policy (text tool + store)
    * ``dpkg`` — package database
    * ``config`` — key/value configuration files
    * ``services`` — unit table
    * ``settings`` — a flat registry for miscellaneous host settings
      (Windows registry values, sysctl knobs) keyed by dotted path
    * ``events`` — the append-only event log every mutation lands in

    The ``os_family`` tag ("windows" or "ubuntu") routes requirements to
    the right backends but does not restrict them: a Windows host still
    has a (mostly empty) package database, which keeps cross-platform
    batch runs total rather than partial.
    """

    def __init__(self, name: str, os_family: str,
                 package_universe: Optional[Dict[str, str]] = None):
        if os_family not in ("windows", "ubuntu"):
            raise ValueError(f"unsupported os_family: {os_family!r}")
        self.name = name
        self.os_family = os_family
        self.events = EventLog()
        self.audit_store = AuditPolicyStore()
        self.auditpol = SimulatedAuditPol(self.audit_store, self.events)
        self.dpkg = SimulatedDpkg(package_universe, self.events)
        self.config = ConfigFileStore()
        self.services = ServiceManager(self.events)
        self.accounts = AccountStore(self.events)
        self._settings: Dict[str, str] = {}

    def __repr__(self) -> str:
        return f"SimulatedHost(name={self.name!r}, os_family={self.os_family!r})"

    # -- flat settings registry ----------------------------------------------

    def get_setting(self, key: str, default: Optional[str] = None
                    ) -> Optional[str]:
        """Read a dotted-path host setting (registry value / sysctl knob)."""
        return self._settings.get(key, default)

    def set_setting(self, key: str, value: str) -> None:
        """Write a host setting, logging the change to the event stream."""
        before = self._settings.get(key)
        self._settings[key] = value
        if before != value:
            self.events.emit("setting.changed", key=key,
                             before=before, after=value)

    def settings_snapshot(self) -> Dict[str, str]:
        return dict(self._settings)

    # -- drift injection ------------------------------------------------------

    def drift_audit_policy(self, subcategory: str,
                           clear_success: bool = True,
                           clear_failure: bool = True) -> None:
        """Adversarially clear audit flags on one subcategory.

        By default resets the subcategory to No Auditing; pass
        ``clear_failure=False`` (or ``clear_success=False``) to tamper
        only one flag — useful when the drift should map to exactly one
        enforceable finding.  Used by the protection-loop benchmarks to
        model configuration drift in operations.
        """
        before = self.audit_store.get(subcategory).render()
        self.audit_store.set(
            subcategory,
            success=False if clear_success else None,
            failure=False if clear_failure else None)
        self.events.emit("drift.audit", subcategory=subcategory, before=before)

    def drift_install_package(self, name: str) -> None:
        """Adversarially install a prohibited package (drift injection)."""
        self.dpkg.install(name)
        self.events.emit("drift.package", name=name)

    def drift_remove_package(self, name: str) -> None:
        """Adversarially remove a required package (drift injection)."""
        self.dpkg.remove(name)
        self.events.emit("drift.package", name=name)

    def drift_config_value(self, path: str, key: str, value: str) -> None:
        """Adversarially flip a configuration key (drift injection)."""
        before = self.config.get(path, key)
        self.config.set(path, key, value)
        self.events.emit("drift.config", path=path, key=key,
                         before=before, after=value)

    def drift_account_policy(self, threshold: int = 0,
                             duration_minutes: int = 0) -> None:
        """Adversarially weaken the lockout policy (drift injection)."""
        before = (self.accounts.policy.threshold,
                  self.accounts.policy.duration_minutes)
        self.accounts.policy.threshold = threshold
        self.accounts.policy.duration_minutes = duration_minutes
        self.events.emit("drift.account", before=before,
                         after=(threshold, duration_minutes))

    def drift_registry_value(self, value_name: str, value: str) -> None:
        """Adversarially rewrite a registry value (drift injection)."""
        key = f"registry.{value_name}"
        before = self._settings.get(key)
        self._settings[key] = value
        self.events.emit("drift.registry", value_name=value_name,
                         before=before, after=value)

    def drift_stop_service(self, name: str) -> None:
        """Adversarially stop and disable a service (drift injection)."""
        if self.services.known(name):
            self.services.stop(name)
            self.services.disable(name)
        self.events.emit("drift.service", name=name)
