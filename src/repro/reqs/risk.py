"""The risk-calculation plane: one score per IR record, driving priority.

The Resilient-Cloud-DevSecOps line of work (PAPERS.md) pairs automated
vulnerability search with *risk calculation* that drives operations;
this module is that calculation for the streaming requirements plane.
Every IR record gets a score in ``[0, 1]`` composed from three
observable signals:

* **severity** — the record's own severity band, sharpened by the CVSS
  score of the CVE in its provenance chain when the vulnerability
  database knows it (a ``critical`` 9.8 outranks a ``critical`` 9.1);
* **fleet exposure** — the fraction of the fleet the requirement is
  armed on: a requirement watching every host is a bigger lever than
  one watching a single segment;
* **incident history** — requirements that keep firing are hot: each
  recorded incident raises the score (saturating), so the queue leans
  toward requirements with demonstrated drift.

The score is consumed through a :class:`RiskIndex` — a thread-safe
req-id -> score map shared by the SOC (incident enforcement order,
reconcile sweep order), the prevention pipeline (verification wave
ordering) and the streaming re-arm plane (highest-risk deltas patch
first).  Monitor ids derived from a requirement (the ``<rid>/drift``
detectors) resolve to their record's score.
"""

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.reqs.ir import Requirement

#: Severity band -> base score (the CVSS qualitative band midpoints,
#: normalized to [0, 1]).
SEVERITY_BASE = {
    "low": 0.2,
    "medium": 0.5,
    "high": 0.75,
    "critical": 0.95,
}

#: Component weights (sum to 1.0).
WEIGHT_SEVERITY = 0.5
WEIGHT_EXPOSURE = 0.3
WEIGHT_INCIDENTS = 0.2

#: Incidents at which the history component saturates.
INCIDENT_SATURATION = 5


@dataclass(frozen=True)
class RiskScore:
    """One record's score and its components (all in [0, 1])."""

    rid: str
    score: float
    severity: float
    exposure: float
    incidents: float

    def to_dict(self) -> Dict[str, float]:
        return {"rid": self.rid, "score": round(self.score, 4),
                "severity": round(self.severity, 4),
                "exposure": round(self.exposure, 4),
                "incidents": round(self.incidents, 4)}


def _cvss_for(record: Requirement, vulndb) -> Optional[float]:
    """The CVSS score of the first CVE provenance link *vulndb* knows."""
    if vulndb is None:
        return None
    for link in record.provenance:
        if link.kind != "cve":
            continue
        try:
            return float(vulndb.get(link.ref).cvss)
        except KeyError:
            continue
    return None


class RiskScorer:
    """Scores IR records from severity, exposure, and incident history."""

    def __init__(self, vulndb=None, fleet_size: int = 0):
        self.vulndb = vulndb
        self.fleet_size = max(0, fleet_size)
        self._incidents: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- the three signals --------------------------------------------------

    def note_incident(self, rid: str, count: int = 1) -> int:
        """Record *count* incidents against *rid*; returns the total."""
        with self._lock:
            total = self._incidents.get(rid, 0) + count
            self._incidents[rid] = total
            return total

    def incident_count(self, rid: str) -> int:
        return self._incidents.get(rid, 0)

    def severity_component(self, record: Requirement) -> float:
        base = SEVERITY_BASE.get(record.severity, SEVERITY_BASE["medium"])
        cvss = _cvss_for(record, self.vulndb)
        if cvss is None:
            return base
        # Blend the band midpoint with the exact CVSS position: two
        # records in the same band still order by their scores.
        return 0.5 * base + 0.5 * min(1.0, max(0.0, cvss / 10.0))

    def exposure_component(self, hosts_routed: int) -> float:
        if self.fleet_size <= 0:
            return 1.0 if hosts_routed else 0.0
        return min(1.0, max(0, hosts_routed) / self.fleet_size)

    def incident_component(self, rid: str) -> float:
        return min(1.0, self.incident_count(rid) / INCIDENT_SATURATION)

    # -- composition --------------------------------------------------------

    def score(self, record: Requirement,
              hosts_routed: int = 0) -> RiskScore:
        severity = self.severity_component(record)
        exposure = self.exposure_component(hosts_routed)
        incidents = self.incident_component(record.rid)
        return RiskScore(
            rid=record.rid,
            score=(WEIGHT_SEVERITY * severity
                   + WEIGHT_EXPOSURE * exposure
                   + WEIGHT_INCIDENTS * incidents),
            severity=severity,
            exposure=exposure,
            incidents=incidents,
        )


class RiskIndex:
    """Thread-safe req-id -> score map, the consumers' lookup surface.

    Writers are the streaming plane (scores refreshed as records flow)
    and the SOC's incident path (history bumps); readers are shard
    workers, the incident pipeline, the reconcile sweep, and the
    verification gate — all of which only need ``score_for`` and
    ``order``.  Derived monitor ids (``<rid>/drift``) resolve to the
    base record's score.
    """

    def __init__(self, scorer: Optional[RiskScorer] = None):
        self.scorer = scorer
        self._scores: Dict[str, float] = {}
        self._lock = threading.Lock()

    def put(self, rid: str, score: float) -> None:
        with self._lock:
            self._scores[rid] = score

    def update(self, scores: Iterable[RiskScore]) -> None:
        with self._lock:
            for entry in scores:
                self._scores[entry.rid] = entry.score

    def discard(self, rid: str) -> None:
        with self._lock:
            self._scores.pop(rid, None)

    def score_for(self, req_id: str, default: float = 0.0) -> float:
        score = self._scores.get(req_id)
        if score is None and "/" in req_id:
            score = self._scores.get(req_id.rsplit("/", 1)[0])
        return default if score is None else score

    def note_incident(self, req_id: str, record: Optional[Requirement]
                      = None, hosts_routed: int = 0) -> None:
        """Fold one incident into the index (and the scorer's history).

        Without a scorer (or the record) the index still reacts: the
        existing score is nudged up by one saturating increment so hot
        requirements bubble toward the front of every queue.
        """
        rid = req_id.rsplit("/", 1)[0] if "/" in req_id else req_id
        if self.scorer is not None:
            self.scorer.note_incident(rid)
            if record is not None:
                self.put(rid, self.scorer.score(
                    record, hosts_routed=hosts_routed).score)
                return
        with self._lock:
            current = self._scores.get(rid)
            if current is not None:
                bump = WEIGHT_INCIDENTS / INCIDENT_SATURATION
                self._scores[rid] = min(1.0, current + bump)

    def order(self, req_ids: Iterable[str]) -> Tuple[str, ...]:
        """*req_ids* sorted highest-risk first (ties stay stable by id,
        so ordering is deterministic across runs and backends)."""
        return tuple(sorted(req_ids,
                            key=lambda rid: (-self.score_for(rid), rid)))

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._scores)
