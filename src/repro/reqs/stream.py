"""Streaming ingestion: bounded feeds diffed against the armed set.

The paper's continuous path — requirements flowing from live sources
into protection — needs two things the batch path doesn't have:

* **backpressure** between the front-ends and the SOC, so a bursty
  feed cannot outrun the shard queues (:class:`IngestBudget`, shared
  by :meth:`~repro.reqs.registry.FrontendRegistry.lower_iter` and the
  re-arm plane);
* a **diff engine** that turns "here is the feed's current view of a
  requirement" into the *minimal* change against what is armed
  (:class:`ReqStream` -> :class:`StreamDelta`), so re-arming touches
  only affected hosts instead of restarting the world.

Change detection is O(1) per record: armed records are indexed by rid
with their blake2b content :meth:`~repro.reqs.ir.Requirement.fingerprint`
cached, so an unchanged record is one dict probe and one string
compare.  Whether a *changed* record needs a fresh monitor (formula
changed) or only new bindings is likewise an identity check downstream,
because compiled LTL formulas are hash-consed
(:mod:`repro.ltl.compile`): ``parse(old) is parse(new)``.
"""

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.reqs.ir import Requirement
from repro.reqs.registry import RejectedNative


class BudgetExhausted(RuntimeError):
    """An :class:`IngestBudget` acquire timed out."""


class IngestBudget:
    """A bounded pool of in-flight-record credits.

    The producer side (``lower_iter``, the CLI feed) acquires one
    credit per record it emits; the consumer side (the re-arm plane,
    after a delta lands in the SOC; the CLI, after a record is
    printed) releases it.  When the pool is empty the producer blocks
    — the feed slows to the speed of the slowest consumer instead of
    ballooning memory, and because the SOC's shard queues are bounded
    too, total in-flight work is capped end to end.
    """

    def __init__(self, limit: int = 256):
        if limit < 1:
            raise ValueError(f"budget limit must be >= 1, got {limit}")
        self.limit = limit
        self._available = limit
        self._cond = threading.Condition()
        self.acquired_total = 0
        self.blocked_total = 0

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self.limit - self._available

    def acquire(self, n: int = 1, timeout: Optional[float] = None) -> None:
        """Take *n* credits, blocking while the pool is empty.

        Raises :class:`BudgetExhausted` when *timeout* (seconds)
        elapses first — callers treat that as "downstream is wedged",
        not as a normal slow consumer.
        """
        with self._cond:
            if self._available < n:
                self.blocked_total += 1
            if not self._cond.wait_for(lambda: self._available >= n,
                                       timeout=timeout):
                raise BudgetExhausted(
                    f"ingest budget: {n} credit(s) unavailable after "
                    f"{timeout}s ({self.limit - self._available} in flight)")
            self._available -= n
            self.acquired_total += n

    def release(self, n: int = 1) -> None:
        with self._cond:
            self._available = min(self.limit, self._available + n)
            self._cond.notify_all()


@dataclass(frozen=True)
class StreamDelta:
    """The minimal change between a feed batch and the armed set.

    ``changed`` pairs are ``(old, new)`` — consumers use the old
    record to find what is currently armed (bindings, formula) and
    decide patch shape.  ``unchanged`` counts records the feed
    re-sent byte-identically; they cost one fingerprint probe each
    and produce no work.
    """

    generation: int
    added: Tuple[Requirement, ...] = ()
    changed: Tuple[Tuple[Requirement, Requirement], ...] = ()
    removed: Tuple[Requirement, ...] = ()
    unchanged: int = 0
    #: Natives that failed to lower, carried for reporting.
    rejected: Tuple[RejectedNative, ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.added or self.changed or self.removed)

    def touched_rids(self) -> Tuple[str, ...]:
        rids = ([r.rid for r in self.added]
                + [new.rid for _, new in self.changed]
                + [r.rid for r in self.removed])
        return tuple(rids)

    def summary(self) -> Dict[str, int]:
        return {"generation": self.generation,
                "added": len(self.added), "changed": len(self.changed),
                "removed": len(self.removed), "unchanged": self.unchanged,
                "rejected": len(self.rejected)}


@dataclass
class _Armed:
    record: Requirement
    fingerprint: str


class ReqStream:
    """The armed requirement set, diffed against incoming IR.

    Feeds are *upsert* streams: a record mentioned again replaces (or
    confirms) its rid; a record not mentioned stays armed until an
    explicit removal — live sources re-announce what changed, not the
    whole world.  :meth:`diff` computes a :class:`StreamDelta` without
    mutating state; :meth:`commit` folds a delta in after the re-arm
    plane has applied it, so a failed re-arm can be retried against
    unchanged bookkeeping.  Thread-safe: a feed thread can diff while
    the SOC's incident path reads :meth:`armed`.
    """

    def __init__(self, armed: Iterable[Requirement] = ()):
        self._armed: Dict[str, _Armed] = {}
        self._generation = 0
        self._lock = threading.Lock()
        for record in armed:
            self._armed[record.rid] = _Armed(record, record.fingerprint())

    def __len__(self) -> int:
        return len(self._armed)

    def __contains__(self, rid: str) -> bool:
        return rid in self._armed

    @property
    def generation(self) -> int:
        return self._generation

    def armed(self) -> List[Requirement]:
        with self._lock:
            return [entry.record for entry in self._armed.values()]

    def get(self, rid: str) -> Optional[Requirement]:
        entry = self._armed.get(rid)
        return entry.record if entry else None

    def diff(self, items: Iterable[Union[Requirement, RejectedNative]],
             remove_rids: Iterable[str] = ()) -> StreamDelta:
        """One feed batch -> the minimal delta against the armed set.

        *items* is whatever ``lower_iter`` yielded — records upsert,
        :class:`RejectedNative` markers are carried through for
        reporting.  *remove_rids* are explicit retirements (unknown
        rids are ignored: removal is idempotent).  Within one batch
        the last mention of a rid wins.
        """
        upserts: Dict[str, Requirement] = {}
        rejected: List[RejectedNative] = []
        for item in items:
            if isinstance(item, RejectedNative):
                rejected.append(item)
            else:
                upserts[item.rid] = item
        added: List[Requirement] = []
        changed: List[Tuple[Requirement, Requirement]] = []
        unchanged = 0
        with self._lock:
            for rid, record in upserts.items():
                entry = self._armed.get(rid)
                if entry is None:
                    added.append(record)
                elif entry.fingerprint == record.fingerprint():
                    unchanged += 1
                else:
                    changed.append((entry.record, record))
            removed = [self._armed[rid].record
                       for rid in dict.fromkeys(remove_rids)
                       if rid in self._armed and rid not in upserts]
            return StreamDelta(
                generation=self._generation + 1,
                added=tuple(added), changed=tuple(changed),
                removed=tuple(removed), unchanged=unchanged,
                rejected=tuple(rejected))

    def commit(self, delta: StreamDelta) -> None:
        """Fold an *applied* delta into the armed bookkeeping."""
        with self._lock:
            for record in delta.added:
                self._armed[record.rid] = _Armed(record,
                                                 record.fingerprint())
            for _, record in delta.changed:
                self._armed[record.rid] = _Armed(record,
                                                 record.fingerprint())
            for record in delta.removed:
                self._armed.pop(record.rid, None)
            self._generation = max(self._generation, delta.generation)
