"""The unified requirements plane.

One typed, immutable, hash-stable Requirement IR behind every
front-end: NALABS prose, RESA boilerplates, RQCODE catalogue findings,
vulnerability-database records and IEC 62443 standard entries all
lower into :class:`~repro.reqs.ir.Requirement` through registered
adapters, and all consumers (repository, pipeline gates, prevention
cache, SOC routing, CLI) operate on that one shape.
"""

from repro.reqs.ir import (
    Formalization,
    IrError,
    Provenance,
    Requirement,
    SEVERITIES,
    TARGET_KINDS,
    dedupe,
)
from repro.reqs.registry import (
    AdapterContractError,
    FrontendAdapter,
    FrontendRegistry,
    ProvenanceError,
    default_registry,
    lint_requirements,
)
from repro.reqs.schema import IR_SCHEMA, validate_record

__all__ = [
    "AdapterContractError",
    "Formalization",
    "FrontendAdapter",
    "FrontendRegistry",
    "IR_SCHEMA",
    "IrError",
    "Provenance",
    "ProvenanceError",
    "Requirement",
    "SEVERITIES",
    "TARGET_KINDS",
    "dedupe",
    "default_registry",
    "lint_requirements",
    "validate_record",
]
