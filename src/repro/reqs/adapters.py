"""The seven bundled front-end adapters.

Each adapter lowers one native requirement shape into the canonical IR:

========== ====================================================
nalabs     :class:`~repro.nalabs.analyzer.RequirementText` /
           ``RequirementReport`` (quality-analyzed prose)
resa       statements / :class:`~repro.resa.boilerplates.
           StructuredRequirement` (boilerplate-matched prose)
rqcode     :class:`~repro.rqcode.catalog.CatalogEntry` (STIG
           findings; also raises IR back into checkable/
           enforceable instances)
vulndb     :class:`~repro.vulndb.generator.GeneratedRequirement`
           (CVE-derived requirements)
standards  :class:`~repro.standards.iec62443.SystemRequirement`
           (IEC 62443-3-3 SRs with their finding mappings)
cwe        :class:`~repro.vulndb.records.CweEntry` (weakness
           catalogue entries, or bare CWE ids)
capec      :class:`~repro.scenarios.catalogues.AttackPattern`
           (attack-pattern catalogue entries, or bare CAPEC ids)
========== ====================================================

The lowering rules here are *the* definition of each source's IR form:
the orchestrator's ingestion methods call these adapters, so a record
ingested through the legacy native API and one lowered explicitly
through the registry are field-for-field (and therefore
fingerprint-for-fingerprint) identical.

The catalogue adapters (``cwe``, ``capec``) derive their requirement
ids from the catalogue ids themselves, so re-announcing an entry on
the streaming path (``lower_iter`` → ``ReqStream`` → ``Rearmer``)
lands as an upsert of the same rid rather than a fresh record — no
threaded id counter needed (their :meth:`~repro.reqs.registry.
FrontendAdapter.id_factory` stays ``None`` by design).
"""

import itertools
from typing import Callable, List, Optional, Sequence, Tuple

from repro.reqs.ir import Formalization, Provenance, Requirement
from repro.reqs.registry import FrontendAdapter
from repro.specpatterns.ltl_mappings import PatternScopeUnsupported, to_ltl
from repro.specpatterns.tctl_mappings import to_tctl


def _title(text: str, limit: int = 60) -> str:
    """A one-line title derived from the normative text."""
    line = " ".join(text.split())
    return line if len(line) <= limit else line[:limit - 1].rstrip() + "…"


def _formalize(pattern, scope) -> Optional[Formalization]:
    """Render a pattern/scope pair into the IR formalization payload."""
    if pattern is None:
        return None
    try:
        ltl = str(to_ltl(pattern, scope))
    except PatternScopeUnsupported:
        ltl = ""
    return Formalization.from_objects(pattern, scope, ltl=ltl,
                                      tctl=to_tctl(pattern, scope))


def _id_factory(prefix: str) -> Callable[[], str]:
    counter = itertools.count(1)
    return lambda: f"{prefix}-{next(counter):03d}"


class NalabsAdapter(FrontendAdapter):
    """Prose requirements with NALABS quality metadata as tags."""

    name = "nalabs"
    native = "RequirementText / RequirementReport"

    def __init__(self, analyzer=None):
        self._analyzer = analyzer

    def _analyze(self, requirement):
        from repro.nalabs.analyzer import NalabsAnalyzer

        if self._analyzer is None:
            self._analyzer = NalabsAnalyzer()
        return self._analyzer.analyze(requirement)

    def lower(self, natives: Sequence,
              ids: Optional[Callable[[], str]] = None) -> List[Requirement]:
        from repro.nalabs.analyzer import RequirementText

        records = []
        for native in natives:
            report = (self._analyze(native)
                      if isinstance(native, RequirementText) else native)
            rid = ids() if ids is not None else f"NAL-{report.req_id}"
            records.append(Requirement(
                rid=rid,
                title=_title(report.text),
                text=report.text,
                source=self.name,
                provenance=(Provenance(
                    "nalabs", report.req_id,
                    f"NALABS-analyzed requirement {report.req_id}"),),
                target_kind="document",
                severity="medium",
                formalization=None,
                tags=tuple(f"smell:{name}"
                           for name in sorted(report.flagged_metrics)),
            ))
        return records

    def discover(self) -> Sequence:
        """A seeded slice of the synthetic E4 corpus (deterministic)."""
        from repro.nalabs.corpus import CorpusGenerator

        requirements, _ = CorpusGenerator(seed=0).generate(
            count=10, injection_rate=0.1)
        return requirements

    def native_ref(self, native) -> str:
        return str(getattr(native, "req_id", "") or "")


class ResaAdapter(FrontendAdapter):
    """Boilerplate-matched prose, carrying its exported formalization.

    Accepts plain statement strings (matched here; statements outside
    the grammar still lower, pattern-less, so the quality gate can
    judge them) or pre-matched ``StructuredRequirement`` objects.
    """

    name = "resa"
    native = "statement str / StructuredRequirement"

    def id_factory(self):
        # Default ids are positional: streaming must thread one
        # counter across batches or every batch restarts at RESA-001.
        return _id_factory("RESA")

    def lower(self, natives: Sequence,
              ids: Optional[Callable[[], str]] = None) -> List[Requirement]:
        from repro.resa.boilerplates import (
            BoilerplateMatchError,
            StructuredRequirement,
            match_boilerplate,
        )
        from repro.resa.export import to_pattern

        ids = ids if ids is not None else _id_factory("RESA")
        records = []
        for native in natives:
            rid = ids()
            if isinstance(native, StructuredRequirement):
                structured = native
                provenance = Provenance(
                    "resa", structured.boilerplate_id,
                    f"{structured.req_id} (boilerplate "
                    f"{structured.boilerplate_id})")
            else:
                try:
                    structured = match_boilerplate(rid, str(native))
                    provenance = Provenance(
                        "resa", structured.boilerplate_id,
                        f"boilerplate {structured.boilerplate_id}")
                except BoilerplateMatchError:
                    records.append(Requirement(
                        rid=rid,
                        title=_title(str(native)),
                        text=str(native),
                        source=self.name,
                        provenance=(Provenance(
                            "freeform", rid,
                            "free-form (no boilerplate match)"),),
                        target_kind="document",
                        formalization=None,
                    ))
                    continue
            pattern, scope = to_pattern(structured)
            records.append(Requirement(
                rid=rid,
                title=_title(structured.text),
                text=structured.text,
                source=self.name,
                provenance=(provenance,),
                target_kind="monitor",
                formalization=_formalize(pattern, scope),
            ))
        return records

    def discover(self) -> Sequence:
        """A reference document exercising the boilerplate shapes."""
        from repro.resa.parser import parse_document

        return parse_document(
            "REQ-1: The authentication service shall lock the account "
            "after 3 consecutive failures.\n"
            "REQ-2: When intrusion is detected, the gateway shall "
            "alert the operator within 5 seconds.\n"
            "REQ-3: The audit subsystem shall not transmit passwords.\n"
            "REQ-4: While maintenance mode is active, the update client "
            "shall reject remote sessions.\n"
        ).requirements

    def native_ref(self, native) -> str:
        return str(getattr(native, "boilerplate_id", "") or "")


class RqcodeAdapter(FrontendAdapter):
    """STIG catalogue findings: continuous-compliance requirements.

    The only adapter with both directions: :meth:`lower` turns a
    catalogue entry into a `G compliant_<finding>` requirement bound to
    the finding, and :meth:`raise_artifacts` turns such an IR record
    back into the checkable/enforceable instances for a host.
    """

    name = "rqcode"
    native = "CatalogEntry"

    def __init__(self, catalog=None):
        self._catalog = catalog

    def catalog(self):
        if self._catalog is None:
            from repro.rqcode.catalog import default_catalog

            self._catalog = default_catalog()
        return self._catalog

    def lower(self, natives: Sequence,
              ids: Optional[Callable[[], str]] = None) -> List[Requirement]:
        from repro.specpatterns.patterns import Universality
        from repro.specpatterns.scopes import Globally

        records = []
        for entry in natives:
            atom = f"compliant_{entry.finding_id}".replace("-", "_")
            severity = entry.severity if entry.severity in (
                "low", "medium", "high", "critical") else "medium"
            records.append(Requirement(
                rid=(ids() if ids is not None
                     else f"RQC-{entry.finding_id}"),
                title=f"STIG finding {entry.finding_id}",
                text=(f"The system shall satisfy STIG finding "
                      f"{entry.finding_id} continuously."),
                source=self.name,
                provenance=(Provenance(
                    "stig", entry.finding_id,
                    f"STIG {entry.finding_id} ({entry.platform})"),),
                target_kind="host",
                severity=severity,
                formalization=_formalize(Universality(p=atom), Globally()),
                bindings=(entry.finding_id,),
            ))
        return records

    def discover(self) -> Sequence:
        catalog = self.catalog()
        return [catalog.get(fid) for fid in catalog.finding_ids()]

    def raise_artifacts(self, record: Requirement, host):
        """IR -> instantiated checkable/enforceable STIG requirements."""
        catalog = self.catalog()
        return [catalog.get(fid).instantiate(host)
                for fid in record.bindings
                if fid in catalog
                and catalog.get(fid).platform == host.os_family]

    def native_ref(self, native) -> str:
        return str(getattr(native, "finding_id", "") or "")


class VulndbAdapter(FrontendAdapter):
    """CVE-derived requirements from the vulnerability database."""

    name = "vulndb"
    native = "GeneratedRequirement"

    #: Pattern family -> pattern builder, mirroring the WP2 mapping.
    @staticmethod
    def _pattern_for(generated):
        from repro.specpatterns import patterns as pat

        def atom(prefix: str) -> str:
            return f"{prefix}_{generated.source_cve}".replace("-", "_")

        factory = {
            "Absence": lambda: pat.Absence(p=atom("exploit")),
            "Existence": lambda: pat.Existence(p=atom("audited")),
            "Universality": lambda: pat.Universality(p=atom("hardened")),
            "Precedence": lambda: pat.Precedence(p=atom("access"),
                                                 s=atom("authz")),
            "TimedResponse": lambda: pat.TimedResponse(
                p=atom("exhaustion"), s=atom("recovered"), bound=60),
        }
        return factory[generated.pattern_family]()

    def lower(self, natives: Sequence,
              ids: Optional[Callable[[], str]] = None) -> List[Requirement]:
        from repro.specpatterns.scopes import Globally

        records = []
        for generated in natives:
            binding = generated.rqcode_binding
            target = ("monitor" if binding == "monitor"
                      else "host" if binding else "system")
            records.append(Requirement(
                rid=(ids() if ids is not None else f"VDB-{generated.req_id}"),
                title=f"Mitigate {generated.source_cve}",
                text=generated.text,
                source=self.name,
                provenance=(Provenance(
                    "cve", generated.source_cve,
                    f"{generated.source_cve} ({generated.cwe_category}, "
                    f"{generated.severity.value})"),),
                target_kind=target,
                severity=generated.severity.value.lower(),
                formalization=_formalize(self._pattern_for(generated),
                                         Globally()),
                tags=(f"cwe-category:{generated.cwe_category}",)
                + ((f"rqcode-binding:{binding}",) if binding else ()),
            ))
        return records

    def discover(self) -> Sequence:
        """Requirements for the reference inventory (bash/openssl)."""
        from repro.vulndb import (
            RequirementGenerator,
            SoftwareInventory,
            bundled_database,
        )

        inventory = SoftwareInventory.of(
            "reqs-reference", "ubuntu",
            {"bash": "4.3", "openssl": "1.0.1f"})
        return RequirementGenerator(
            bundled_database()).generate(inventory).requirements

    def native_ref(self, native) -> str:
        return str(getattr(native, "source_cve", "") or "")


class StandardsAdapter(FrontendAdapter):
    """IEC 62443-3-3 system requirements with their SR mappings.

    Natives are ``(SystemRequirement, bindings)`` pairs or bare
    ``SystemRequirement`` objects (bindings then come from the default
    SR mapping, unfiltered by platform).
    """

    name = "standards"
    native = "SystemRequirement [+ bindings]"

    def lower(self, natives: Sequence,
              ids: Optional[Callable[[], str]] = None) -> List[Requirement]:
        from repro.specpatterns.patterns import Universality
        from repro.specpatterns.scopes import Globally
        from repro.standards.mapping import DEFAULT_SR_MAPPING

        records = []
        for native in natives:
            if isinstance(native, tuple):
                sr, bindings = native
            else:
                sr = native
                mapping = DEFAULT_SR_MAPPING.get(sr.sr_id)
                bindings = mapping.finding_ids if mapping is not None else ()
            atom = ("satisfied_"
                    + sr.sr_id.replace(" ", "_").replace(".", "_"))
            records.append(Requirement(
                rid=(ids() if ids is not None else
                     "IEC-" + sr.sr_id.replace(" ", "-").replace(".", "-")),
                title=f"{sr.sr_id} {sr.name}",
                text=(f"The system shall satisfy {sr.sr_id} "
                      f"({sr.name}) continuously."),
                source=self.name,
                provenance=(Provenance(
                    "iec62443-3-3", sr.sr_id,
                    f"IEC 62443-3-3 {sr.sr_id}, baseline "
                    f"SL{sr.baseline_level.value}: {sr.intent}"),),
                target_kind="host" if bindings else "system",
                formalization=_formalize(Universality(p=atom), Globally()),
                tags=(f"fr:{sr.fr.name}",
                      f"baseline:SL{sr.baseline_level.value}"),
                bindings=tuple(bindings),
            ))
        return records

    def discover(self) -> Sequence:
        from repro.standards.iec62443 import (
            SecurityLevel,
            requirements_for_level,
        )

        return list(requirements_for_level(SecurityLevel.SL4))

    def native_ref(self, native) -> str:
        sr = native[0] if isinstance(native, tuple) and native else native
        return str(getattr(sr, "sr_id", "") or "")


#: Severity the CWE adapter assigns per weakness category: the coarse
#: judgement a triage playbook would make from the category alone.
CWE_CATEGORY_SEVERITY = {
    "memory-safety": "critical",
    "input-validation": "high",
    "authentication": "high",
    "authorization": "high",
    "cryptography": "medium",
    "availability": "medium",
    "configuration": "medium",
    "auditing": "low",
}


class CweAdapter(FrontendAdapter):
    """Weakness-catalogue entries as absence requirements.

    Natives are :class:`~repro.vulndb.records.CweEntry` objects or
    bare CWE id strings (resolved against the bundled catalogue —
    the shape a live catalogue feed announces).  Requirement ids
    derive from the CWE id, so catalogue re-announcements upsert
    rather than duplicate on the streaming path.
    """

    name = "cwe"
    native = "CweEntry / 'CWE-nnn' id"

    @staticmethod
    def _resolve(native):
        from repro.vulndb.records import CWE_CATALOG, CweEntry

        if isinstance(native, CweEntry):
            return native
        try:
            return CWE_CATALOG[str(native)]
        except KeyError:
            raise KeyError(f"unknown weakness {native!r}; "
                           f"catalogued: {sorted(CWE_CATALOG)}")

    def lower(self, natives: Sequence,
              ids: Optional[Callable[[], str]] = None) -> List[Requirement]:
        from repro.specpatterns.patterns import Absence
        from repro.specpatterns.scopes import Globally

        records = []
        for native in natives:
            entry = self._resolve(native)
            atom = f"weakness_{entry.cwe_id}".replace("-", "_").lower()
            records.append(Requirement(
                rid=(ids() if ids is not None
                     else entry.cwe_id.replace("CWE-", "CWE-REQ-")),
                title=f"{entry.cwe_id} {entry.name}",
                text=(f"The system shall not exhibit {entry.name} "
                      f"({entry.cwe_id}) weaknesses."),
                source=self.name,
                provenance=(Provenance(
                    "cwe", entry.cwe_id,
                    f"{entry.cwe_id} {entry.name} "
                    f"[{entry.category}]"),),
                target_kind="system",
                severity=CWE_CATEGORY_SEVERITY.get(entry.category,
                                                   "medium"),
                formalization=_formalize(Absence(p=atom), Globally()),
                tags=(f"cwe-category:{entry.category}",),
            ))
        return records

    def discover(self) -> Sequence:
        from repro.vulndb.records import CWE_CATALOG

        return [CWE_CATALOG[cwe_id] for cwe_id in sorted(
            CWE_CATALOG, key=lambda cid: int(cid.split("-")[1]))]

    def native_ref(self, native) -> str:
        return str(getattr(native, "cwe_id", native) or "")


class CapecAdapter(FrontendAdapter):
    """Attack-pattern catalogue entries as detection requirements.

    Natives are :class:`~repro.scenarios.catalogues.AttackPattern`
    objects or bare CAPEC id strings.  The provenance chain cites the
    CAPEC id first and then every related CWE, so a record traces to
    both halves of the weakness taxonomy; the stage tag is what the
    campaign compiler keys on.
    """

    name = "capec"
    native = "AttackPattern / 'CAPEC-nnn' id"

    @staticmethod
    def _resolve(native):
        from repro.scenarios.catalogues import AttackPattern, get_pattern

        if isinstance(native, AttackPattern):
            return native
        return get_pattern(str(native))

    def lower(self, natives: Sequence,
              ids: Optional[Callable[[], str]] = None) -> List[Requirement]:
        from repro.specpatterns.patterns import Absence
        from repro.specpatterns.scopes import Globally
        from repro.vulndb.records import CWE_CATALOG

        records = []
        for native in natives:
            pattern = self._resolve(native)
            atom = (f"attack_{pattern.capec_id}"
                    .replace("-", "_").lower())
            chain = [Provenance(
                "capec", pattern.capec_id,
                f"{pattern.capec_id} {pattern.name} "
                f"({pattern.stage}, likelihood {pattern.likelihood})")]
            for cwe_id in pattern.related_cwes:
                entry = CWE_CATALOG.get(cwe_id)
                chain.append(Provenance(
                    "cwe", cwe_id,
                    f"{cwe_id} {entry.name}" if entry is not None
                    else f"{cwe_id} related weakness"))
            records.append(Requirement(
                rid=(ids() if ids is not None
                     else pattern.capec_id.replace("CAPEC-",
                                                   "CAPEC-REQ-")),
                title=f"Counter {pattern.capec_id} {pattern.name}",
                text=(f"The system shall detect and counter "
                      f"{pattern.name} ({pattern.capec_id}) attack "
                      f"attempts. {pattern.summary}"),
                source=self.name,
                provenance=tuple(chain),
                target_kind="monitor",
                severity=pattern.severity,
                formalization=_formalize(Absence(p=atom), Globally()),
                tags=(f"capec-stage:{pattern.stage}",
                      f"likelihood:{pattern.likelihood}")
                + tuple(f"cwe:{cwe_id}"
                        for cwe_id in pattern.related_cwes),
            ))
        return records

    def discover(self) -> Sequence:
        from repro.scenarios.catalogues import CAPEC_CATALOG

        return [CAPEC_CATALOG[cid] for cid in sorted(
            CAPEC_CATALOG, key=lambda cid: int(cid.split("-")[1]))]

    def native_ref(self, native) -> str:
        return str(getattr(native, "capec_id", native) or "")
