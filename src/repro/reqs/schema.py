"""JSON Schema for the Requirement IR, plus a dependency-free validator.

The schema is the IR's wire contract: ``repro reqs list --json`` must
emit records that validate against it, and CI's ``reqs-smoke`` step
pipes that output through this module against the *checked-in* copy at
``schemas/requirement-ir.schema.json``.  The embedded :data:`IR_SCHEMA`
and the checked-in file must stay identical — drift between them (or
between either and the emitted records) fails the step, which is the
point: the schema can only change deliberately, in the same commit as
the code and the file.

The validator implements the subset of JSON Schema the IR needs
(``type`` incl. unions, ``properties`` / ``required`` /
``additionalProperties``, ``items``, ``enum``, ``minLength`` /
``minItems``) so it runs in environments without the ``jsonschema``
package.

**Versioning.**  The wire shape is versioned (:data:`SCHEMA_VERSION`,
carried in the ``$id``): v2 adds the *optional* ``ir_version`` stamp
that version-aware embedders — the scheduler journal's IR-fingerprint
manifest — attach to records, while emitters of the bare shape (``repro
reqs list --json``) stay byte-identical, so fingerprints and the
``reqs-smoke`` drift check are unaffected.  :func:`migrate_record`
upgrades older records in place of a hard failure: a v1 record (no
``ir_version``) is stamped to the current version; a record claiming a
*future* version is refused.
"""

import json
import sys
from typing import Any, Dict, List

from repro.reqs.ir import IrError, SEVERITIES, TARGET_KINDS

#: Wire-shape version.  Bump together with ``$id`` and regenerate
#: ``schemas/requirement-ir.schema.json`` in the same commit.
SCHEMA_VERSION = 2

SCHEMA_ID = ("https://veridevops.example/schemas/"
             f"requirement-ir.v{SCHEMA_VERSION}.schema.json")

_PROVENANCE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["kind", "ref", "detail"],
    "additionalProperties": False,
    "properties": {
        "kind": {"type": "string", "minLength": 1},
        "ref": {"type": "string", "minLength": 1},
        "detail": {"type": "string"},
    },
}

_PATTERN_HALF_SCHEMA: Dict[str, Any] = {
    "type": ["object", "null"],
    "required": ["kind", "params"],
    "additionalProperties": False,
    "properties": {
        "kind": {"type": "string", "minLength": 1},
        "params": {
            "type": "object",
            "additionalProperties": {"type": ["string", "integer", "number"]},
        },
    },
}

IR_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": SCHEMA_ID,
    "title": "Requirement IR",
    "description": "Canonical requirement record lowered from any "
                   "registered front-end (see src/repro/reqs/).",
    "type": "object",
    "required": ["rid", "title", "text", "source", "provenance",
                 "target_kind", "severity", "formalization", "tags",
                 "bindings"],
    "additionalProperties": False,
    "properties": {
        "rid": {"type": "string", "minLength": 1},
        "title": {"type": "string"},
        "text": {"type": "string", "minLength": 1},
        "source": {"type": "string", "minLength": 1},
        "provenance": {
            "type": "array",
            "minItems": 1,
            "items": _PROVENANCE_SCHEMA,
        },
        "target_kind": {"type": "string", "enum": list(TARGET_KINDS)},
        "severity": {"type": "string", "enum": list(SEVERITIES)},
        "formalization": {
            "type": ["object", "null"],
            "required": ["pattern", "scope", "ltl", "tctl"],
            "additionalProperties": False,
            "properties": {
                "pattern": _PATTERN_HALF_SCHEMA,
                "scope": _PATTERN_HALF_SCHEMA,
                "ltl": {"type": "string"},
                "tctl": {"type": "string"},
            },
        },
        "tags": {"type": "array", "items": {"type": "string"}},
        "bindings": {"type": "array",
                     "items": {"type": "string", "minLength": 1}},
        # Optional version stamp (the validator's keyword subset has no
        # "minimum"/"const", so the accepted value is pinned by enum).
        # Emitters of the bare wire shape omit it; version-aware
        # embedders (the scheduler journal) stamp it via
        # migrate_record.
        "ir_version": {"type": "integer", "enum": [SCHEMA_VERSION]},
    },
}


def migrate_record(payload: Any) -> Any:
    """Upgrade one wire record to the current schema version.

    A v1 record — anything without an ``ir_version`` stamp — is
    returned as a copy stamped ``SCHEMA_VERSION`` (the v1->v2 change is
    purely additive, so stamping *is* the migration).  A current record
    passes through unchanged; a record claiming an unknown (future)
    version raises :class:`~repro.reqs.ir.IrError` rather than being
    guessed at.
    """
    if not isinstance(payload, dict):
        return payload
    version = payload.get("ir_version", 1)
    if version == SCHEMA_VERSION:
        return payload
    if version == 1:
        migrated = dict(payload)
        migrated["ir_version"] = SCHEMA_VERSION
        return migrated
    raise IrError(
        f"cannot migrate IR record {payload.get('rid', '?')!r}: "
        f"ir_version {version!r} is newer than this build's "
        f"schema v{SCHEMA_VERSION}")

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _validate(value: Any, schema: Dict[str, Any], path: str,
              errors: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            errors.append(f"{path}: expected {'/'.join(types)}, "
                          f"got {type(value).__name__}")
            return
        if value is None and "null" in types:
            return  # nullable and null: nested object keywords don't apply
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if isinstance(value, str) and len(value) < schema.get("minLength", 0):
        errors.append(f"{path}: shorter than minLength "
                      f"{schema['minLength']}")
    if isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            errors.append(f"{path}: fewer than minItems "
                          f"{schema['minItems']}")
        item_schema = schema.get("items")
        if item_schema is not None:
            for index, item in enumerate(value):
                _validate(item, item_schema, f"{path}[{index}]", errors)
    if isinstance(value, dict):
        properties = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        additional = schema.get("additionalProperties", True)
        for name, item in value.items():
            if name in properties:
                _validate(item, properties[name], f"{path}.{name}", errors)
            elif additional is False:
                errors.append(f"{path}: unexpected property {name!r}")
            elif isinstance(additional, dict):
                _validate(item, additional, f"{path}.{name}", errors)


def validate_record(payload: Any,
                    schema: Dict[str, Any] = None) -> List[str]:
    """Validate one plain-data record; returns a list of error strings
    (empty when the record conforms)."""
    errors: List[str] = []
    _validate(payload, schema if schema is not None else IR_SCHEMA,
              "$", errors)
    return errors


def schema_drift(checked_in: Dict[str, Any]) -> bool:
    """True when the checked-in schema no longer matches the code's."""
    return checked_in != IR_SCHEMA


def main(argv=None) -> int:
    """Validate a JSON array of IR records read from stdin.

    Usage: ``repro reqs list --json | python -m repro.reqs.schema
    [schemas/requirement-ir.schema.json]``.  With a schema path, the
    file is first compared against the embedded schema (drift fails),
    then used for validation.  Exit 0 only when every record conforms.
    """
    argv = argv if argv is not None else sys.argv[1:]
    schema = IR_SCHEMA
    if argv:
        with open(argv[0]) as handle:
            checked_in = json.load(handle)
        if schema_drift(checked_in):
            print(f"schema drift: {argv[0]} does not match "
                  f"repro.reqs.schema.IR_SCHEMA — regenerate the file in "
                  f"the same commit as the schema change", file=sys.stderr)
            return 2
        schema = checked_in
    try:
        records = json.load(sys.stdin)
    except json.JSONDecodeError as exc:
        print(f"stdin is not JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(records, list):
        print("expected a JSON array of IR records", file=sys.stderr)
        return 2
    failures = 0
    for index, record in enumerate(records):
        try:
            record = migrate_record(record)
        except IrError as exc:
            print(str(exc), file=sys.stderr)
            failures += 1
            continue
        errors = validate_record(record, schema)
        if errors:
            failures += 1
            label = (record.get("rid", f"#{index}")
                     if isinstance(record, dict) else f"#{index}")
            for error in errors:
                print(f"{label}: {error}", file=sys.stderr)
    print(f"{len(records) - failures}/{len(records)} records conform",
          file=sys.stderr)
    return 0 if failures == 0 else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
