"""The canonical Requirement IR: one typed shape behind every front-end.

The paper promises a single automated path from a security requirement
— stated in natural language, in a standard, or implied by a
vulnerability-database entry — to a machine-checkable artifact.  The
repo grew one requirement shape per source; this module is the merge
point: every front-end lowers its native objects into an immutable
:class:`Requirement`, and every consumer (repository, pipeline, gates,
prevention cache, SOC routing, CLI) works on that one type.

Design invariants:

* **Immutable** — frozen dataclasses; list-like fields are tuples, so
  a requirement can key dictionaries and be shared across threads.
* **Hash-stable** — :meth:`Requirement.canonical_json` is a sorted-key,
  no-whitespace serialization; :meth:`Requirement.fingerprint` is a
  blake2b digest over it.  The digest is a pure function of content:
  field order at construction, dict insertion order and process
  identity never leak in.
* **Provenanced** — every record carries a non-empty source chain
  (enforced by the registry's lint; see :mod:`repro.reqs.registry`),
  so any artifact in the pipeline can be traced back to the CVE, STIG
  finding, boilerplate or standard clause it came from.
"""

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.specpatterns import patterns as pattern_module
from repro.specpatterns import scopes as scope_module
from repro.specpatterns.patterns import Pattern
from repro.specpatterns.scopes import Scope

#: Digest size in bytes — matches the prevention plane's cache keys.
_DIGEST_SIZE = 16

#: The severity ladder (CVSS qualitative bands, lower-cased).
SEVERITIES: Tuple[str, ...] = ("low", "medium", "high", "critical")

#: What kind of thing the requirement ultimately constrains:
#: ``host`` — host configuration checked/enforced via RQCODE bindings;
#: ``monitor`` — runtime behaviour watched by an LTL monitor;
#: ``document`` — the requirement text itself (quality analysis);
#: ``system`` — a system-level property with no bound mechanism yet.
TARGET_KINDS: Tuple[str, ...] = ("host", "monitor", "document", "system")


class IrError(ValueError):
    """A malformed IR record or payload."""


def _digest(payload: str) -> str:
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=_DIGEST_SIZE).hexdigest()


def _class_registry(module, base) -> Dict[str, type]:
    return {
        name: obj for name, obj in vars(module).items()
        if isinstance(obj, type) and issubclass(obj, base) and obj is not base
    }


_PATTERN_CLASSES = _class_registry(pattern_module, Pattern)
_SCOPE_CLASSES = _class_registry(scope_module, Scope)


@dataclass(frozen=True)
class Provenance:
    """One link in a requirement's source chain.

    ``kind`` names the kind of source ("stig", "cve", "resa",
    "iec62443-3-3", ...), ``ref`` the identifier within it, and
    ``detail`` an optional human-readable note.  Chains read
    origin-first: the first link is where the requirement came from,
    later links record intermediate derivations.
    """

    kind: str
    ref: str
    detail: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "ref": self.ref, "detail": self.detail}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Provenance":
        return cls(kind=str(payload.get("kind", "")),
                   ref=str(payload.get("ref", "")),
                   detail=str(payload.get("detail", "")))

    def render(self) -> str:
        text = f"{self.kind}:{self.ref}"
        return f"{text} ({self.detail})" if self.detail else text


def _params_tuple(value) -> Tuple[Tuple[str, Any], ...]:
    """Normalize a params mapping/sequence into a sorted tuple of pairs."""
    if isinstance(value, dict):
        items = value.items()
    else:
        items = [(str(k), v) for k, v in value]
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class Formalization:
    """The formal payload of a requirement.

    The pattern/scope halves are stored as plain data (class kind +
    parameter pairs) so the IR serializes without importing consumer
    machinery; :meth:`to_objects` raises them back into the
    :mod:`repro.specpatterns` dataclasses when a consumer needs them.
    ``ltl``/``tctl`` hold the rendered formulas ("" when the catalogue
    has no mapping for the pattern/scope combination).
    """

    pattern_kind: str = ""
    pattern_params: Tuple[Tuple[str, Any], ...] = ()
    scope_kind: str = ""
    scope_params: Tuple[Tuple[str, Any], ...] = ()
    ltl: str = ""
    tctl: str = ""

    def __post_init__(self):
        object.__setattr__(self, "pattern_params",
                           _params_tuple(self.pattern_params))
        object.__setattr__(self, "scope_params",
                           _params_tuple(self.scope_params))

    @classmethod
    def from_objects(cls, pattern: Optional[Pattern],
                     scope: Optional[Scope],
                     ltl: str = "", tctl: str = "") -> "Formalization":
        return cls(
            pattern_kind=type(pattern).__name__ if pattern else "",
            pattern_params=(_params_tuple(dataclasses.asdict(pattern))
                            if pattern else ()),
            scope_kind=type(scope).__name__ if scope else "",
            scope_params=(_params_tuple(dataclasses.asdict(scope))
                          if scope else ()),
            ltl=ltl,
            tctl=tctl,
        )

    def to_objects(self) -> Tuple[Optional[Pattern], Optional[Scope]]:
        """Raise the plain-data halves back into pattern/scope objects."""
        pattern = scope = None
        if self.pattern_kind:
            cls = _PATTERN_CLASSES.get(self.pattern_kind)
            if cls is None:
                raise IrError(f"unknown pattern kind: {self.pattern_kind!r}")
            pattern = cls(**dict(self.pattern_params))
        if self.scope_kind:
            cls = _SCOPE_CLASSES.get(self.scope_kind)
            if cls is None:
                raise IrError(f"unknown scope kind: {self.scope_kind!r}")
            scope = cls(**dict(self.scope_params))
        return pattern, scope

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pattern": ({"kind": self.pattern_kind,
                         "params": dict(self.pattern_params)}
                        if self.pattern_kind else None),
            "scope": ({"kind": self.scope_kind,
                       "params": dict(self.scope_params)}
                      if self.scope_kind else None),
            "ltl": self.ltl,
            "tctl": self.tctl,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Formalization":
        pattern = payload.get("pattern") or {}
        scope = payload.get("scope") or {}
        return cls(
            pattern_kind=str(pattern.get("kind", "")),
            pattern_params=_params_tuple(pattern.get("params", {})),
            scope_kind=str(scope.get("kind", "")),
            scope_params=_params_tuple(scope.get("params", {})),
            ltl=str(payload.get("ltl", "")),
            tctl=str(payload.get("tctl", "")),
        )


@dataclass(frozen=True)
class Requirement:
    """One requirement in the canonical IR.

    ``rid`` is the requirement's identifier, ``source`` the registered
    front-end name it was lowered from ("nalabs", "resa", "rqcode",
    "vulndb", "standards", ...), ``bindings`` the RQCODE finding ids
    that can check/enforce it on hosts, and ``tags`` free-form labels
    (quality smells, CWE categories, ...).
    """

    rid: str
    title: str
    text: str
    source: str
    provenance: Tuple[Provenance, ...] = ()
    target_kind: str = "system"
    severity: str = "medium"
    formalization: Optional[Formalization] = None
    tags: Tuple[str, ...] = ()
    bindings: Tuple[str, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "provenance", tuple(self.provenance))
        object.__setattr__(self, "tags", tuple(self.tags))
        object.__setattr__(self, "bindings", tuple(self.bindings))
        if not self.rid:
            raise IrError("requirement rid must be non-empty")
        if not self.text:
            raise IrError(f"{self.rid}: requirement text must be non-empty")
        if not self.source:
            raise IrError(f"{self.rid}: requirement source must be non-empty")
        if self.severity not in SEVERITIES:
            raise IrError(
                f"{self.rid}: severity {self.severity!r} not in {SEVERITIES}")
        if self.target_kind not in TARGET_KINDS:
            raise IrError(
                f"{self.rid}: target_kind {self.target_kind!r} "
                f"not in {TARGET_KINDS}")

    # -- canonical serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The record as plain data — the schema-governed wire shape."""
        return {
            "rid": self.rid,
            "title": self.title,
            "text": self.text,
            "source": self.source,
            "provenance": [link.to_dict() for link in self.provenance],
            "target_kind": self.target_kind,
            "severity": self.severity,
            "formalization": (self.formalization.to_dict()
                              if self.formalization is not None else None),
            "tags": list(self.tags),
            "bindings": list(self.bindings),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Requirement":
        formalization = payload.get("formalization")
        return cls(
            rid=str(payload.get("rid", "")),
            title=str(payload.get("title", "")),
            text=str(payload.get("text", "")),
            source=str(payload.get("source", "")),
            provenance=tuple(Provenance.from_dict(link)
                             for link in payload.get("provenance", ())),
            target_kind=str(payload.get("target_kind", "system")),
            severity=str(payload.get("severity", "medium")),
            formalization=(Formalization.from_dict(formalization)
                           if formalization is not None else None),
            tags=tuple(str(tag) for tag in payload.get("tags", ())),
            bindings=tuple(str(b) for b in payload.get("bindings", ())),
        )

    def canonical_json(self) -> str:
        """Sorted-key, no-whitespace JSON — the fingerprint input."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self) -> str:
        """Content address of the full record (id and provenance
        included) — what the prevention cache keys on."""
        return _digest(self.canonical_json())

    def content_fingerprint(self) -> str:
        """Content address of the *normative* content only.

        Excludes ``rid`` and ``provenance``, so the same requirement
        reached through two different front-ends (a CVE feed and a
        standard citing it, say) collides here — cross-source dedup
        falls out of comparing this digest.
        """
        body = self.to_dict()
        del body["rid"]
        del body["provenance"]
        return _digest(json.dumps(body, sort_keys=True,
                                  separators=(",", ":")))

    def provenance_digests(self) -> Tuple[str, ...]:
        """Chained digests over the provenance links, origin-first.

        ``digest[i] = blake2b(digest[i-1] + canonical(link[i]))`` with a
        fixed genesis — the same construction as the scheduler journal's
        entry chain, so each link's digest commits to the whole chain
        before it.  Tampering with (or dropping) any upstream link
        changes every digest after it, which is what lets a
        traceability report cite one short digest per requirement and
        still cover the full derivation.
        """
        digests = []
        prev = "ir-provenance-genesis"
        for link in self.provenance:
            payload = prev + json.dumps(link.to_dict(), sort_keys=True,
                                        separators=(",", ":"))
            prev = _digest(payload)
            digests.append(prev)
        return tuple(digests)

    def provenance_chain_digest(self) -> str:
        """The terminal chained digest ("" without provenance) — one
        value committing to the record's entire source chain."""
        digests = self.provenance_digests()
        return digests[-1] if digests else ""

    # -- convenience ---------------------------------------------------------------

    def pattern_scope(self) -> Tuple[Optional[Pattern], Optional[Scope]]:
        """The raised pattern/scope objects (``(None, None)`` when the
        record carries no formalization)."""
        if self.formalization is None:
            return None, None
        return self.formalization.to_objects()

    def legacy_provenance(self) -> str:
        """The one-line provenance string older consumers carry.

        The origin link's detail (or ``kind:ref``) — matches the
        free-form strings the pre-IR ingestion paths produced.
        """
        if not self.provenance:
            return ""
        origin = self.provenance[0]
        return origin.detail or f"{origin.kind}:{origin.ref}"


def dedupe(records) -> "list[Requirement]":
    """Drop records whose normative content repeats an earlier one.

    Order-preserving: the first record with a given
    :meth:`~Requirement.content_fingerprint` wins, whatever front-end
    it entered through.
    """
    seen = set()
    unique = []
    for record in records:
        key = record.content_fingerprint()
        if key in seen:
            continue
        seen.add(key)
        unique.append(record)
    return unique
