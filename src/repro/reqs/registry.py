"""Front-end registry: where native requirement shapes meet the IR.

A *front-end* is anything that produces requirements in its own
vocabulary — the NALABS analyzer, the RESA boilerplate matcher, the
RQCODE catalogue, the vulnerability database, a standard.  Each one
registers a :class:`FrontendAdapter` that lowers its native objects
into :class:`~repro.reqs.ir.Requirement` records; consumers then never
special-case sources again, they iterate IR.

Every lowering passes through :func:`lint_requirements` on the way out:
an adapter emitting a record without a provenance chain (or with blank
chain links, or duplicate ids) is a contract violation and raises
:class:`ProvenanceError` / :class:`AdapterContractError` immediately,
at the adapter boundary, instead of surfacing as an untraceable
artifact three stages later.
"""

from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Union)

from repro.reqs.ir import Requirement


class AdapterContractError(ValueError):
    """An adapter emitted records violating the IR contract."""


class ProvenanceError(AdapterContractError):
    """An adapter emitted records without a usable provenance chain."""


@dataclass(frozen=True)
class RejectedNative:
    """One native that failed to lower on the streaming path.

    :meth:`FrontendRegistry.lower_iter` yields these in place of the
    records a malformed native would have produced, so one bad item in
    a live feed surfaces as a provenance-linted error *for that item*
    without poisoning the rest of the batch (the batch path,
    :meth:`FrontendRegistry.lower`, stays all-or-nothing).
    """

    frontend: str
    #: Position of the offending native in the input stream.
    index: int
    #: ``repr`` of the native, truncated — enough to find it upstream.
    native: str
    #: The lint/adapter error message.
    error: str
    #: Provenance-chain hint (catalogue id: a CWE/CAPEC/CVE/finding
    #: id) when the adapter can name one — what makes a rejection
    #: traceable upstream without parsing the native's repr.
    ref: str = ""

    def render(self) -> str:
        subject = (f"native #{self.index} ({self.ref})" if self.ref
                   else f"native #{self.index}")
        return (f"front-end {self.frontend!r}: {subject} "
                f"rejected: {self.error}")


class FrontendAdapter:
    """Base contract for front-end adapters.

    Subclasses set :attr:`name` (the registry key) and :attr:`native`
    (a one-line description of the native shape), and implement:

    * :meth:`lower` — native objects -> list of IR records.  ``ids``
      is an optional callable allocating requirement ids (the
      orchestrator passes its counter so records ingested through the
      native API and through the IR path are literally identical);
      omitted, the adapter uses its deterministic source-derived ids.
    * :meth:`discover` — the bundled native corpus, so registry-wide
      operations (``repro reqs list``, the CI smoke) have data without
      external inputs.

    Adapters whose sources are enforceable also implement
    :meth:`raise_artifacts`, the inverse direction: IR -> the
    checkable/enforceable objects for a host.
    """

    name = "adapter"
    native = ""

    def lower(self, natives: Sequence,
              ids: Optional[Callable[[], str]] = None
              ) -> List[Requirement]:
        raise NotImplementedError

    def discover(self) -> Sequence:
        return ()

    def raise_artifacts(self, record: Requirement, host):
        """IR -> native enforceable artifacts for *host* (default: none)."""
        raise AdapterContractError(
            f"front-end {self.name!r} cannot raise IR back into "
            f"enforceable artifacts")

    def native_ref(self, native) -> str:
        """The catalogue id of one native (its provenance-chain hint).

        Used to label streaming rejections so a malformed catalogue
        entry is traceable upstream by its own id (CWE/CAPEC/CVE/
        finding id) instead of only its position in the feed.  Return
        ``""`` when the native carries no stable id.
        """
        return ""

    def id_factory(self) -> Optional[Callable[[], str]]:
        """A default id allocator spanning one *logical* lowering.

        Streaming (:meth:`FrontendRegistry.lower_iter`) splits a feed
        into many :meth:`lower` calls; an adapter whose default ids are
        positional (a fresh per-call counter) would restart numbering
        every batch and collide.  Such adapters return a fresh counter
        here so the registry can thread it across batches; adapters
        with source-derived ids keep the ``None`` default.
        """
        return None


def lint_requirements(records: Iterable[Requirement],
                      frontend: str = "") -> List[Requirement]:
    """Reject records that would be untraceable or collide.

    Checks every record carries a non-empty provenance chain whose
    links all have a kind and a ref, and that no two records share an
    id.  Returns the records as a list when clean.
    """
    label = f"front-end {frontend!r}: " if frontend else ""
    records = list(records)
    seen: Dict[str, int] = {}
    for record in records:
        if not record.provenance:
            raise ProvenanceError(
                f"{label}record {record.rid!r} has an empty provenance "
                f"chain; every IR record must say where it came from")
        for index, link in enumerate(record.provenance):
            if not link.kind or not link.ref:
                raise ProvenanceError(
                    f"{label}record {record.rid!r} provenance link "
                    f"#{index} lacks kind/ref: {link!r}")
        if record.rid in seen:
            raise AdapterContractError(
                f"{label}duplicate requirement id {record.rid!r}")
        seen[record.rid] = 1
    return records


class FrontendRegistry:
    """Named adapters, with linted lowering across all of them."""

    def __init__(self) -> None:
        self._adapters: Dict[str, FrontendAdapter] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._adapters

    def __len__(self) -> int:
        return len(self._adapters)

    def register(self, adapter: FrontendAdapter) -> FrontendAdapter:
        if not adapter.name or adapter.name == FrontendAdapter.name:
            raise AdapterContractError(
                f"adapter {type(adapter).__name__} must set a name")
        if adapter.name in self._adapters:
            raise AdapterContractError(
                f"duplicate front-end name: {adapter.name!r}")
        self._adapters[adapter.name] = adapter
        return adapter

    def get(self, name: str) -> FrontendAdapter:
        if name not in self._adapters:
            raise KeyError(
                f"no front-end {name!r}; registered: {self.names()}")
        return self._adapters[name]

    def names(self) -> List[str]:
        return sorted(self._adapters)

    def lower(self, name: str, natives: Sequence,
              ids: Optional[Callable[[], str]] = None
              ) -> List[Requirement]:
        """Lower *natives* through the named adapter, linted."""
        adapter = self.get(name)
        return lint_requirements(adapter.lower(natives, ids=ids), name)

    def lower_iter(self, name: str, natives: Iterable,
                   ids: Optional[Callable[[], str]] = None,
                   batch_size: int = 8,
                   budget=None,
                   ) -> Iterator[Union[Requirement, RejectedNative]]:
        """Incremental lowering: yield IR records as natives arrive.

        The streaming counterpart of :meth:`lower`.  *natives* may be
        any iterable — including a live generator that blocks between
        items — and records are yielded as soon as their batch lowers,
        so a consumer (the SOC re-arm plane, the ``--stream`` CLI) sees
        IR while the feed is still producing.

        Differences from the batch path, all deliberate:

        * **Per-adapter batching** — natives are lowered *batch_size*
          at a time, amortizing adapter setup without waiting for the
          end of the feed.
        * **Error isolation** — when a batch fails to lower or lint,
          it is retried native-by-native and only the offenders are
          replaced by :class:`RejectedNative` markers carrying the
          provenance-lint error; the rest of the batch flows on.  A
          rid colliding with one already yielded by *this iteration*
          is rejected the same way (the whole-sequence duplicate check
          :meth:`lower` gets from :func:`lint_requirements`).
        * **Backpressure** — when *budget* (an
          :class:`~repro.reqs.stream.IngestBudget`) is given, one
          credit is acquired per yielded record, blocking the feed
          when downstream (the SOC shard queues) is saturated.
          Rejections don't consume credits.
        """
        adapter = self.get(name)
        if ids is None:
            # One allocator for the whole feed: positional default ids
            # must not restart per batch (see id_factory).
            ids = adapter.id_factory()
        seen_rids: Dict[str, int] = {}
        index = 0
        batch: List = []
        starts: List[int] = []

        def ref_of(native) -> str:
            try:
                return str(adapter.native_ref(native) or "")[:80]
            except Exception:
                return ""

        def lower_one(native, position):
            try:
                records = lint_requirements(
                    adapter.lower([native], ids=ids), name)
            except Exception as exc:
                return [RejectedNative(
                    frontend=name, index=position,
                    native=repr(native)[:200], error=str(exc),
                    ref=ref_of(native))]
            out = []
            for record in records:
                if record.rid in seen_rids:
                    out.append(RejectedNative(
                        frontend=name, index=position,
                        native=repr(native)[:200],
                        error=(f"duplicate requirement id {record.rid!r} "
                               f"(first lowered from native "
                               f"#{seen_rids[record.rid]})"),
                        ref=ref_of(native)))
                else:
                    seen_rids[record.rid] = position
                    out.append(record)
            return out

        def flush():
            if not batch:
                return
            try:
                records = lint_requirements(
                    adapter.lower(list(batch), ids=ids), name)
            except Exception:
                # Isolate the offender(s): re-lower one native at a
                # time so the rest of the batch still flows.
                records = None
            if records is None:
                produced: List[Union[Requirement, RejectedNative]] = []
                for native, position in zip(batch, starts):
                    produced.extend(lower_one(native, position))
            else:
                produced = []
                for record in records:
                    if record.rid in seen_rids:
                        produced.append(RejectedNative(
                            frontend=name, index=starts[0],
                            native=repr(record.rid)[:200],
                            error=(f"duplicate requirement id "
                                   f"{record.rid!r} (first lowered from "
                                   f"native #{seen_rids[record.rid]})"),
                            ref=(record.provenance[0].ref
                                 if record.provenance else "")))
                    else:
                        seen_rids[record.rid] = starts[0]
                        produced.append(record)
            for item in produced:
                if budget is not None and isinstance(item, Requirement):
                    budget.acquire()
                yield item
            batch.clear()
            starts.clear()

        for native in natives:
            batch.append(native)
            starts.append(index)
            index += 1
            if len(batch) >= max(1, batch_size):
                for item in flush():
                    yield item
        for item in flush():
            yield item

    def lower_bundled(self, name: str) -> List[Requirement]:
        """Lower the adapter's bundled corpus, linted."""
        adapter = self.get(name)
        return lint_requirements(adapter.lower(adapter.discover()), name)

    def lower_all_bundled(self) -> Dict[str, List[Requirement]]:
        """Every registered front-end's bundled corpus as IR."""
        return {name: self.lower_bundled(name) for name in self.names()}


def default_registry() -> FrontendRegistry:
    """A registry with the seven bundled front-ends registered."""
    from repro.reqs.adapters import (
        CapecAdapter,
        CweAdapter,
        NalabsAdapter,
        ResaAdapter,
        RqcodeAdapter,
        StandardsAdapter,
        VulndbAdapter,
    )

    registry = FrontendRegistry()
    registry.register(NalabsAdapter())
    registry.register(ResaAdapter())
    registry.register(RqcodeAdapter())
    registry.register(VulndbAdapter())
    registry.register(StandardsAdapter())
    registry.register(CweAdapter())
    registry.register(CapecAdapter())
    return registry
