"""Front-end registry: where native requirement shapes meet the IR.

A *front-end* is anything that produces requirements in its own
vocabulary — the NALABS analyzer, the RESA boilerplate matcher, the
RQCODE catalogue, the vulnerability database, a standard.  Each one
registers a :class:`FrontendAdapter` that lowers its native objects
into :class:`~repro.reqs.ir.Requirement` records; consumers then never
special-case sources again, they iterate IR.

Every lowering passes through :func:`lint_requirements` on the way out:
an adapter emitting a record without a provenance chain (or with blank
chain links, or duplicate ids) is a contract violation and raises
:class:`ProvenanceError` / :class:`AdapterContractError` immediately,
at the adapter boundary, instead of surfacing as an untraceable
artifact three stages later.
"""

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.reqs.ir import Requirement


class AdapterContractError(ValueError):
    """An adapter emitted records violating the IR contract."""


class ProvenanceError(AdapterContractError):
    """An adapter emitted records without a usable provenance chain."""


class FrontendAdapter:
    """Base contract for front-end adapters.

    Subclasses set :attr:`name` (the registry key) and :attr:`native`
    (a one-line description of the native shape), and implement:

    * :meth:`lower` — native objects -> list of IR records.  ``ids``
      is an optional callable allocating requirement ids (the
      orchestrator passes its counter so records ingested through the
      native API and through the IR path are literally identical);
      omitted, the adapter uses its deterministic source-derived ids.
    * :meth:`discover` — the bundled native corpus, so registry-wide
      operations (``repro reqs list``, the CI smoke) have data without
      external inputs.

    Adapters whose sources are enforceable also implement
    :meth:`raise_artifacts`, the inverse direction: IR -> the
    checkable/enforceable objects for a host.
    """

    name = "adapter"
    native = ""

    def lower(self, natives: Sequence,
              ids: Optional[Callable[[], str]] = None
              ) -> List[Requirement]:
        raise NotImplementedError

    def discover(self) -> Sequence:
        return ()

    def raise_artifacts(self, record: Requirement, host):
        """IR -> native enforceable artifacts for *host* (default: none)."""
        raise AdapterContractError(
            f"front-end {self.name!r} cannot raise IR back into "
            f"enforceable artifacts")


def lint_requirements(records: Iterable[Requirement],
                      frontend: str = "") -> List[Requirement]:
    """Reject records that would be untraceable or collide.

    Checks every record carries a non-empty provenance chain whose
    links all have a kind and a ref, and that no two records share an
    id.  Returns the records as a list when clean.
    """
    label = f"front-end {frontend!r}: " if frontend else ""
    records = list(records)
    seen: Dict[str, int] = {}
    for record in records:
        if not record.provenance:
            raise ProvenanceError(
                f"{label}record {record.rid!r} has an empty provenance "
                f"chain; every IR record must say where it came from")
        for index, link in enumerate(record.provenance):
            if not link.kind or not link.ref:
                raise ProvenanceError(
                    f"{label}record {record.rid!r} provenance link "
                    f"#{index} lacks kind/ref: {link!r}")
        if record.rid in seen:
            raise AdapterContractError(
                f"{label}duplicate requirement id {record.rid!r}")
        seen[record.rid] = 1
    return records


class FrontendRegistry:
    """Named adapters, with linted lowering across all of them."""

    def __init__(self) -> None:
        self._adapters: Dict[str, FrontendAdapter] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._adapters

    def __len__(self) -> int:
        return len(self._adapters)

    def register(self, adapter: FrontendAdapter) -> FrontendAdapter:
        if not adapter.name or adapter.name == FrontendAdapter.name:
            raise AdapterContractError(
                f"adapter {type(adapter).__name__} must set a name")
        if adapter.name in self._adapters:
            raise AdapterContractError(
                f"duplicate front-end name: {adapter.name!r}")
        self._adapters[adapter.name] = adapter
        return adapter

    def get(self, name: str) -> FrontendAdapter:
        if name not in self._adapters:
            raise KeyError(
                f"no front-end {name!r}; registered: {self.names()}")
        return self._adapters[name]

    def names(self) -> List[str]:
        return sorted(self._adapters)

    def lower(self, name: str, natives: Sequence,
              ids: Optional[Callable[[], str]] = None
              ) -> List[Requirement]:
        """Lower *natives* through the named adapter, linted."""
        adapter = self.get(name)
        return lint_requirements(adapter.lower(natives, ids=ids), name)

    def lower_bundled(self, name: str) -> List[Requirement]:
        """Lower the adapter's bundled corpus, linted."""
        adapter = self.get(name)
        return lint_requirements(adapter.lower(adapter.discover()), name)

    def lower_all_bundled(self) -> Dict[str, List[Requirement]]:
        """Every registered front-end's bundled corpus as IR."""
        return {name: self.lower_bundled(name) for name in self.names()}


def default_registry() -> FrontendRegistry:
    """A registry with the five bundled front-ends registered."""
    from repro.reqs.adapters import (
        NalabsAdapter,
        ResaAdapter,
        RqcodeAdapter,
        StandardsAdapter,
        VulndbAdapter,
    )

    registry = FrontendRegistry()
    registry.register(NalabsAdapter())
    registry.register(ResaAdapter())
    registry.register(RqcodeAdapter())
    registry.register(VulndbAdapter())
    registry.register(StandardsAdapter())
    return registry
