"""Compiled LTL monitoring: memoized progression over interned formulas.

The progression monitor (:class:`~repro.ltl.monitor.LtlMonitor`)
re-derives its next obligation from scratch on every event — a full
recursive rewrite of the obligation tree.  This module turns per-event
rewriting into cached automaton transitions, the standard
runtime-verification move (Bauer et al.'s LTL3 monitor construction;
Havelund & Roşu's rewriting-based monitoring):

* **Interning** (:mod:`repro.ltl.formulas`) makes every obligation a
  canonical object, so a transition key hashes in O(1) and two monitors
  in the same progression state share the literal same obligation.
* **Step projection**: progression only inspects the atoms that occur
  in the obligation, so each observed step is intersected with the
  obligation's (cached) atom set before lookup — distinct raw events
  collapse onto a handful of distinct projected steps.
* **The progression memo** (:class:`TransitionTable`) caches
  ``(obligation, projected step) -> next obligation``.  After warmup an
  :meth:`CompiledMonitor.observe` call is one dict lookup: the table is
  the monitor's LTL3-style automaton, materialized lazily, state by
  reached state.

Tables are shared process-wide per formula (:func:`transition_table`),
so a fleet of monitors on the same requirement warms a single
automaton.  The memo is bounded (``max_transitions``, default 2**16
entries); on overflow the whole epoch is dropped and the table rebuilds
lazily — correctness never depends on the memo, only speed.
"""

import hashlib
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.ltl.formulas import FALSE, Formula, TRUE
from repro.ltl.monitor import LtlMonitor, Verdict, progress
from repro.ltl.parser import parse_ltl

_EMPTY_STEP: FrozenSet[str] = frozenset()

#: One memoized transition: (source obligation, projected step).
TransitionKey = Tuple[Formula, FrozenSet[str]]


class TransitionTable:
    """Lazily-materialized transition function for one formula.

    Shared by every :class:`CompiledMonitor` armed with the same
    (interned) formula; thread-safe in the same sense the interner is —
    concurrent misses may both compute the (deterministic) transition,
    and the memo insert is a plain dict write under the GIL.
    """

    DEFAULT_MAX_TRANSITIONS = 65536

    __slots__ = ("formula", "max_transitions", "_next", "misses",
                 "evictions")

    def __init__(self, formula: Formula,
                 max_transitions: int = DEFAULT_MAX_TRANSITIONS):
        self.formula = formula
        self.max_transitions = max_transitions
        self._next: Dict[TransitionKey, Formula] = {}
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._next)

    def step(self, obligation: Formula, step: FrozenSet[str]) -> Formula:
        """The obligation after observing *step* in state *obligation*."""
        key = (obligation, step & obligation._atoms)
        nxt = self._next.get(key)
        if nxt is None:
            nxt = self._materialize(key)
        return nxt

    def _materialize(self, key: TransitionKey) -> Formula:
        """Memo miss: run one real progression and record it."""
        obligation, projected = key
        nxt = progress(obligation, projected)
        if len(self._next) >= self.max_transitions:
            # Epoch eviction: drop everything and re-warm lazily.  Hit
            # only by adversarial formula/step diversity; keeps the
            # memo's footprint bounded without per-entry bookkeeping.
            self._next.clear()
            self.evictions += 1
        self._next[key] = nxt
        self.misses += 1
        return nxt


#: Process-wide registry: interned formula -> its shared table.
_TABLES: Dict[Formula, TransitionTable] = {}


def transition_table(formula: Formula) -> TransitionTable:
    """The shared :class:`TransitionTable` for *formula*.

    Formulas are interned, so any two monitors built from the same text
    (or the same structural construction) resolve to the same table.
    """
    table = _TABLES.get(formula)
    if table is None:
        table = _TABLES.setdefault(formula, TransitionTable(formula))
    return table


# -- stable obligation identity (the process plane's codec substrate) --------
#
# The SOC's process backend ships monitor banks to worker processes and
# compares final monitor states across backends.  Both need a formula
# identity that survives process boundaries, where interning identity
# does not.  The concrete syntax is that identity: ``str(formula)``
# renders fully parenthesized parser syntax, and interning makes the
# round trip ``parse_ltl(str(f)) is f`` exact — so the canonical text
# (and its digest) is a stable obligation id across any number of
# processes running the same code.

#: Memoized canonical text per interned obligation.
_TEXTS: Dict[Formula, str] = {}


def formula_text(formula: Formula) -> str:
    """Canonical, re-parseable concrete syntax for *formula*.

    ``parse_ltl(formula_text(f)) is f`` — the parser re-interns onto
    the same canonical node — so this is the wire encoding the process
    plane uses to rebuild monitor banks in worker processes.
    """
    text = _TEXTS.get(formula)
    if text is None:
        text = _TEXTS.setdefault(formula, str(formula))
    return text


def parse_formula_text(text: str) -> Formula:
    """Inverse of :func:`formula_text` (re-interning parse)."""
    return parse_ltl(text)


def obligation_id(formula: Formula, digest_size: int = 16) -> bytes:
    """Stable cross-process identity digest for an obligation.

    blake2b over the canonical text; two processes that reach the same
    obligation by any route produce the same id, which is how the
    thread/process equivalence suite compares final monitor states and
    how the merge plane tags verdict records.
    """
    return hashlib.blake2b(formula_text(formula).encode("utf-8"),
                           digest_size=digest_size).digest()


#: Memo for the routing fixed-point probe (see ``soc.sessions``).
_STABLE: Dict[Formula, bool] = {}


def empty_step_stable(formula: Formula) -> bool:
    """True iff progressing *formula* over an atom-free step is a fixed
    point — the SOC sessions' skippability criterion.  Interning makes
    the probe an identity check, memoized per obligation."""
    stable = _STABLE.get(formula)
    if stable is None:
        stable = _STABLE.setdefault(
            formula, progress(formula, _EMPTY_STEP) is formula)
    return stable


class CompiledMonitor(LtlMonitor):
    """Drop-in :class:`LtlMonitor` whose stepping is a memo lookup.

    Verdict-equivalent to progression by construction (the memo caches
    progression's own results); after warmup each :meth:`observe` costs
    one set intersection and one dict probe instead of a recursive
    rewrite.  Monitors of the same formula share one table unless an
    explicit *table* is supplied.
    """

    def __init__(self, formula: Formula, table: TransitionTable = None):
        super().__init__(formula)
        self.table = table if table is not None else transition_table(formula)

    def observe(self, propositions: Iterable[str]) -> Verdict:
        """Consume one step (iterable of true proposition names)."""
        obligation = self.obligation
        if obligation is TRUE:
            return Verdict.TRUE
        if obligation is FALSE:
            return Verdict.FALSE
        step = propositions if type(propositions) is frozenset \
            else frozenset(propositions)
        table = self.table
        key = (obligation, step & obligation._atoms)
        nxt = table._next.get(key)
        if nxt is None:
            nxt = table._materialize(key)
        self.obligation = nxt
        self.steps_observed += 1
        if nxt is TRUE:
            return Verdict.TRUE
        if nxt is FALSE:
            return Verdict.FALSE
        return Verdict.INCONCLUSIVE

    def observe_many(self, steps: Sequence[Iterable[str]]) -> Verdict:
        """Consume a batch of steps in one tight loop.

        Stops early once the verdict freezes (same contract as
        :meth:`observe_trace`), but hoists the per-call attribute
        lookups out of the loop — the fast path for trace replay and
        cross-validation suites.
        """
        obligation = self.obligation
        table = self.table
        memo = table._next
        materialize = table._materialize
        consumed = 0
        for step in steps:
            if obligation is TRUE or obligation is FALSE:
                break
            if type(step) is not frozenset:
                step = frozenset(step)
            key = (obligation, step & obligation._atoms)
            nxt = memo.get(key)
            if nxt is None:
                nxt = materialize(key)
            obligation = nxt
            consumed += 1
        self.obligation = obligation
        self.steps_observed += consumed
        return self.verdict


def step_monitors(monitors: Mapping[str, LtlMonitor],
                  propositions: Iterable[str]) -> List[str]:
    """Feed one step to every monitor in *monitors*.

    Normalizes the step once (instead of per monitor) and returns the
    keys whose monitor concluded FALSE on this step — the batch entry
    point the serial protection loop drives.
    """
    step = propositions if type(propositions) is frozenset \
        else frozenset(propositions)
    tripped: List[str] = []
    for key, monitor in monitors.items():
        if monitor.observe(step) is Verdict.FALSE:
            tripped.append(key)
    return tripped
