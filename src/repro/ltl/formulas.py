"""LTL formula AST.

Formulas are immutable and hash-consed by value (frozen dataclasses), so
progression-based monitoring can fold constants and detect fixpoints by
equality.  Smart constructors (:func:`land`, :func:`lor`, :func:`lnot`)
perform the constant folding; the class constructors build raw nodes.

Temporal operators follow the usual abbreviations: ``X`` next, ``U``
until (strong), ``W`` weak until, ``R`` release, ``F`` eventually,
``G`` globally.
"""

from dataclasses import dataclass
from typing import FrozenSet, Tuple, Union


class Formula:
    """Base class; all nodes render to the parser's concrete syntax."""

    def atoms(self) -> FrozenSet[str]:
        """The atomic proposition names appearing in the formula."""
        names = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Atom):
                names.add(node.name)
            for child in getattr(node, "_children", lambda: ())():
                stack.append(child)
        return frozenset(names)

    def _children(self) -> Tuple["Formula", ...]:
        return ()

    # Operator sugar, so tests can write ``p >> q`` style combinations.

    def __and__(self, other: "Formula") -> "Formula":
        return land(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return lor(self, other)

    def __invert__(self) -> "Formula":
        return lnot(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return implies(self, other)


@dataclass(frozen=True)
class _Constant(Formula):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = _Constant(True)
FALSE = _Constant(False)


@dataclass(frozen=True)
class Atom(Formula):
    """Atomic proposition, true on a step when its name is in the step's
    proposition set."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def _children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class Next(Formula):
    operand: Formula

    def _children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"X ({self.operand})"


@dataclass(frozen=True)
class Until(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} U {self.right})"


@dataclass(frozen=True)
class WeakUntil(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} W {self.right})"


@dataclass(frozen=True)
class Release(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} R {self.right})"


@dataclass(frozen=True)
class Eventually(Formula):
    operand: Formula

    def _children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"F ({self.operand})"


@dataclass(frozen=True)
class Globally(Formula):
    operand: Formula

    def _children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"G ({self.operand})"


# -- smart constructors (constant folding) -------------------------------------

def lnot(operand: Formula) -> Formula:
    """Negation with folding (double negation, constants)."""
    if operand is TRUE:
        return FALSE
    if operand is FALSE:
        return TRUE
    if isinstance(operand, Not):
        return operand.operand
    return Not(operand)


def land(left: Formula, right: Formula) -> Formula:
    """Conjunction with unit/absorbing-element and idempotence folding."""
    if left is FALSE or right is FALSE:
        return FALSE
    if left is TRUE:
        return right
    if right is TRUE:
        return left
    if left == right:
        return left
    return And(left, right)


def lor(left: Formula, right: Formula) -> Formula:
    """Disjunction with unit/absorbing-element and idempotence folding."""
    if left is TRUE or right is TRUE:
        return TRUE
    if left is FALSE:
        return right
    if right is FALSE:
        return left
    if left == right:
        return left
    return Or(left, right)


def implies(left: Formula, right: Formula) -> Formula:
    """Implication via folding: ``a -> b`` behaves as ``!a | b``."""
    if left is FALSE or right is TRUE:
        return TRUE
    if left is TRUE:
        return right
    if right is FALSE:
        return lnot(left)
    return Implies(left, right)


#: A step of a trace: the set of atomic propositions true at that step.
Step = Union[FrozenSet[str], set]


def as_step(propositions) -> FrozenSet[str]:
    """Normalize any iterable of proposition names into a step."""
    return frozenset(propositions)
