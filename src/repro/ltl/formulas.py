"""LTL formula AST with hash-consing (interning).

Every node is **interned**: constructing a node whose field values match
an already-built node returns the canonical instance, so structural
equality *is* object identity (``==`` degenerates to ``is``) and hashing
is the O(1) identity hash.  That makes obligations produced by formula
progression cheap to compare, deduplicate, and memoize — the substrate
the compiled monitor (:mod:`repro.ltl.compile`) builds its transition
tables on.

Interning also lets each node carry its derived data exactly once:
:meth:`Formula.atoms` is computed at construction (children are already
interned, so it is a union of cached child sets) and returned from a
cache thereafter.

Smart constructors (:func:`land`, :func:`lor`, :func:`lnot`,
:func:`implies`) perform constant folding; the class constructors build
raw (but still interned) nodes.  Temporal operators follow the usual
abbreviations: ``X`` next, ``U`` until (strong), ``W`` weak until,
``R`` release, ``F`` eventually, ``G`` globally.
"""

from dataclasses import dataclass
from typing import FrozenSet, Tuple, Union

_NO_ATOMS: FrozenSet[str] = frozenset()


class _InternMeta(type):
    """Hash-consing metaclass for formula nodes.

    Each concrete node class owns a construction cache keyed by its
    field values; instantiating the class first consults the cache.
    ``setdefault`` keeps the canonical-instance invariant even when two
    threads race to build the same node (SOC workers progress monitors
    concurrently).
    """

    def __new__(mcls, name, bases, namespace, **kwargs):
        cls = super().__new__(mcls, name, bases, namespace, **kwargs)
        cls._intern = {}
        return cls

    def __call__(cls, *args, **kwargs):
        if kwargs:  # normalize keyword construction onto field order
            args = args + tuple(kwargs[name]
                                for name in cls.__match_args__[len(args):])
        node = cls._intern.get(args)
        if node is None:
            fresh = super().__call__(*args)
            object.__setattr__(fresh, "_atoms", fresh._compute_atoms())
            node = cls._intern.setdefault(args, fresh)
        return node


class Formula(metaclass=_InternMeta):
    """Base class; all nodes render to the parser's concrete syntax.

    Nodes are interned (see :class:`_InternMeta`), immutable, and carry
    their atom set in ``_atoms`` from the moment of construction.
    """

    _atoms: FrozenSet[str] = _NO_ATOMS

    def atoms(self) -> FrozenSet[str]:
        """The atomic proposition names appearing in the formula.

        Computed once per interned node at construction; this accessor
        is an attribute read.
        """
        return self._atoms

    def _compute_atoms(self) -> FrozenSet[str]:
        atoms = _NO_ATOMS
        for child in self._children():
            atoms = atoms | child._atoms
        return atoms

    def _children(self) -> Tuple["Formula", ...]:
        return ()

    # Interning makes structural equality coincide with identity; the
    # inherited object ``__eq__``/``__hash__`` are exactly right (and
    # O(1)), so the dataclasses below are declared with ``eq=False``.

    # Operator sugar, so tests can write ``p >> q`` style combinations.

    def __and__(self, other: "Formula") -> "Formula":
        return land(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return lor(self, other)

    def __invert__(self) -> "Formula":
        return lnot(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return implies(self, other)


@dataclass(frozen=True, eq=False)
class _Constant(Formula):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = _Constant(True)
FALSE = _Constant(False)


@dataclass(frozen=True, eq=False)
class Atom(Formula):
    """Atomic proposition, true on a step when its name is in the step's
    proposition set."""

    name: str

    def _compute_atoms(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Not(Formula):
    operand: Formula

    def _children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True, eq=False)
class And(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True, eq=False)
class Or(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True, eq=False)
class Implies(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True, eq=False)
class Next(Formula):
    operand: Formula

    def _children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"X ({self.operand})"


@dataclass(frozen=True, eq=False)
class Until(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} U {self.right})"


@dataclass(frozen=True, eq=False)
class WeakUntil(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} W {self.right})"


@dataclass(frozen=True, eq=False)
class Release(Formula):
    left: Formula
    right: Formula

    def _children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} R {self.right})"


@dataclass(frozen=True, eq=False)
class Eventually(Formula):
    operand: Formula

    def _children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"F ({self.operand})"


@dataclass(frozen=True, eq=False)
class Globally(Formula):
    operand: Formula

    def _children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"G ({self.operand})"


# -- smart constructors (constant folding) -------------------------------------

def lnot(operand: Formula) -> Formula:
    """Negation with folding (double negation, constants)."""
    if operand is TRUE:
        return FALSE
    if operand is FALSE:
        return TRUE
    if isinstance(operand, Not):
        return operand.operand
    return Not(operand)


def land(left: Formula, right: Formula) -> Formula:
    """Conjunction with unit/absorbing-element and idempotence folding."""
    if left is FALSE or right is FALSE:
        return FALSE
    if left is TRUE:
        return right
    if right is TRUE:
        return left
    if left is right:
        return left
    return And(left, right)


def lor(left: Formula, right: Formula) -> Formula:
    """Disjunction with unit/absorbing-element and idempotence folding."""
    if left is TRUE or right is TRUE:
        return TRUE
    if left is FALSE:
        return right
    if right is FALSE:
        return left
    if left is right:
        return left
    return Or(left, right)


def implies(left: Formula, right: Formula) -> Formula:
    """Implication via folding: ``a -> b`` behaves as ``!a | b``."""
    if left is FALSE or right is TRUE:
        return TRUE
    if left is TRUE:
        return right
    if right is FALSE:
        return lnot(left)
    return Implies(left, right)


#: A step of a trace: the set of atomic propositions true at that step.
Step = Union[FrozenSet[str], set]


def as_step(propositions) -> FrozenSet[str]:
    """Normalize any iterable of proposition names into a step."""
    if type(propositions) is frozenset:
        return propositions
    return frozenset(propositions)
