"""Runtime monitoring of LTL formulas.

Two evaluation modes:

* :class:`LtlMonitor` — an *impartial* online monitor based on formula
  progression.  After each step the remaining obligation is rewritten;
  when it folds to ``true`` the property is satisfied on every
  continuation (verdict TRUE), to ``false`` violated on every
  continuation (FALSE), otherwise INCONCLUSIVE.  Impartiality means the
  monitor never revokes a TRUE/FALSE verdict; it may stay INCONCLUSIVE
  where a full LTL3 automaton could conclude (syntactic progression does
  not decide semantic tautologies), which is sound for the protection
  loop's use.
* :func:`evaluate_ltlf` — exact LTLf (finite-trace) semantics on a
  *completed* trace, where ``X`` is strong (false at the last step) and
  ``G``/``U`` quantify over the remaining finite suffix.
"""

import enum
from typing import FrozenSet, Iterable, List, Sequence

from repro.ltl.formulas import (
    And,
    Atom,
    Eventually,
    FALSE,
    Formula,
    Globally,
    Implies,
    Next,
    Not,
    Or,
    Release,
    TRUE,
    Until,
    WeakUntil,
    as_step,
    implies,
    land,
    lnot,
    lor,
)


class Verdict(enum.Enum):
    """3-valued monitoring verdict."""

    TRUE = "TRUE"
    FALSE = "FALSE"
    INCONCLUSIVE = "INCONCLUSIVE"


def progress(formula: Formula, step: FrozenSet[str]) -> Formula:
    """One progression step: the obligation on the rest of the trace
    after observing *step*."""
    if formula is TRUE or formula is FALSE:
        return formula
    if isinstance(formula, Atom):
        return TRUE if formula.name in step else FALSE
    if isinstance(formula, Not):
        return lnot(progress(formula.operand, step))
    if isinstance(formula, And):
        return land(progress(formula.left, step),
                    progress(formula.right, step))
    if isinstance(formula, Or):
        return lor(progress(formula.left, step),
                   progress(formula.right, step))
    if isinstance(formula, Implies):
        return implies(progress(formula.left, step),
                       progress(formula.right, step))
    if isinstance(formula, Next):
        return formula.operand
    if isinstance(formula, Until):
        # p U q  ≡  q ∨ (p ∧ X(p U q))
        return lor(progress(formula.right, step),
                   land(progress(formula.left, step), formula))
    if isinstance(formula, WeakUntil):
        return lor(progress(formula.right, step),
                   land(progress(formula.left, step), formula))
    if isinstance(formula, Release):
        # p R q  ≡  q ∧ (p ∨ X(p R q))
        return land(progress(formula.right, step),
                    lor(progress(formula.left, step), formula))
    if isinstance(formula, Eventually):
        return lor(progress(formula.operand, step), formula)
    if isinstance(formula, Globally):
        return land(progress(formula.operand, step), formula)
    raise TypeError(f"unknown formula node: {formula!r}")


class LtlMonitor:
    """Online impartial monitor for one formula.

    Feed steps with :meth:`observe`; read :attr:`verdict` any time.
    Once the verdict leaves INCONCLUSIVE it is frozen (impartiality),
    and further observations are ignored.
    """

    def __init__(self, formula: Formula):
        self.formula = formula
        self.obligation = formula
        self.steps_observed = 0

    @property
    def verdict(self) -> Verdict:
        if self.obligation is TRUE:
            return Verdict.TRUE
        if self.obligation is FALSE:
            return Verdict.FALSE
        return Verdict.INCONCLUSIVE

    def observe(self, propositions: Iterable[str]) -> Verdict:
        """Consume one step (iterable of true proposition names)."""
        if self.verdict is Verdict.INCONCLUSIVE:
            self.obligation = progress(self.obligation, as_step(propositions))
            self.steps_observed += 1
        return self.verdict

    def observe_trace(self, trace: Sequence[Iterable[str]]) -> Verdict:
        """Consume a whole trace; stops early once the verdict freezes."""
        for step in trace:
            if self.observe(step) is not Verdict.INCONCLUSIVE:
                break
        return self.verdict

    def observe_many(self, steps: Sequence[Iterable[str]]) -> Verdict:
        """Batch form of :meth:`observe` (same early-stop contract as
        :meth:`observe_trace`); the compiled engine overrides this with
        a tighter loop."""
        return self.observe_trace(steps)

    def reset(self) -> None:
        self.obligation = self.formula
        self.steps_observed = 0


def evaluate_ltlf(formula: Formula, trace: Sequence[Iterable[str]],
                  position: int = 0) -> bool:
    """Exact LTLf evaluation of *formula* on the completed *trace*.

    The empty trace satisfies ``G``-shaped obligations vacuously and
    falsifies ``F``/``U`` obligations, per standard LTLf semantics.
    """
    steps: List[FrozenSet[str]] = [as_step(step) for step in trace]
    return _eval(formula, steps, position)


def _eval(formula: Formula, steps: List[FrozenSet[str]], i: int) -> bool:
    n = len(steps)
    if formula is TRUE:
        return True
    if formula is FALSE:
        return False
    if isinstance(formula, Atom):
        return i < n and formula.name in steps[i]
    if isinstance(formula, Not):
        return not _eval(formula.operand, steps, i)
    if isinstance(formula, And):
        return _eval(formula.left, steps, i) and _eval(formula.right, steps, i)
    if isinstance(formula, Or):
        return _eval(formula.left, steps, i) or _eval(formula.right, steps, i)
    if isinstance(formula, Implies):
        return (not _eval(formula.left, steps, i)
                or _eval(formula.right, steps, i))
    if isinstance(formula, Next):
        return i + 1 < n and _eval(formula.operand, steps, i + 1)
    if isinstance(formula, Eventually):
        return any(_eval(formula.operand, steps, j) for j in range(i, n))
    if isinstance(formula, Globally):
        return all(_eval(formula.operand, steps, j) for j in range(i, n))
    if isinstance(formula, Until):
        for j in range(i, n):
            if _eval(formula.right, steps, j):
                return all(_eval(formula.left, steps, k)
                           for k in range(i, j))
        return False
    if isinstance(formula, WeakUntil):
        for j in range(i, n):
            if _eval(formula.right, steps, j):
                return all(_eval(formula.left, steps, k)
                           for k in range(i, j))
        return all(_eval(formula.left, steps, j) for j in range(i, n))
    if isinstance(formula, Release):
        # p R q on finite traces: q holds up to and including the first
        # p-step, or q holds for the whole remaining suffix.
        for j in range(i, n):
            if not _eval(formula.right, steps, j):
                return any(_eval(formula.left, steps, k)
                           for k in range(i, j))
        return True
    raise TypeError(f"unknown formula node: {formula!r}")
