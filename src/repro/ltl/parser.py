"""LTL concrete-syntax parser.

Grammar (precedence climbing, loosest first)::

    formula    := implication
    implication:= until ( '->' implication )?          (right assoc)
    until      := disjunction ( ('U'|'W'|'R') until )? (right assoc)
    disjunction:= conjunction ( '|' conjunction )*
    conjunction:= unary ( '&' unary )*
    unary      := ('!'|'X'|'F'|'G') unary | primary
    primary    := 'true' | 'false' | ident | '(' formula ')'

Identifiers are ``[A-Za-z_][A-Za-z0-9_.]*`` minus the operator keywords,
so dotted event names (``package.removed``) parse as atoms.
"""

import re
from typing import List, Optional

from repro.ltl.formulas import (
    Atom,
    Eventually,
    FALSE,
    Formula,
    Globally,
    Next,
    Release,
    TRUE,
    Until,
    WeakUntil,
    implies,
    land,
    lnot,
    lor,
)


class LtlParseError(ValueError):
    """Raised on malformed LTL text, with position information."""

    def __init__(self, message: str, position: int, text: str):
        super().__init__(f"{message} at position {position}: {text!r}")
        self.position = position
        self.text = text


_TOKEN = re.compile(
    r"\s*(?:(?P<op>->|\(|\)|!|&|\|)|(?P<word>[A-Za-z_][A-Za-z0-9_.]*))"
)

_UNARY_KEYWORDS = {"X", "F", "G"}
_BINARY_KEYWORDS = {"U", "W", "R"}
_CONSTANTS = {"true": TRUE, "false": FALSE}


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.tokens: List[tuple] = []  # (kind, value, position)
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise LtlParseError("unexpected character", position, text)
            if match.group("op"):
                self.tokens.append(("op", match.group("op"), match.start()))
            else:
                self.tokens.append(("word", match.group("word"), match.start()))
            position = match.end()
        self.index = 0

    def peek(self) -> Optional[tuple]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> tuple:
        token = self.peek()
        if token is None:
            raise LtlParseError("unexpected end of input",
                                len(self.text), self.text)
        self.index += 1
        return token

    def accept(self, kind: str, value: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == kind and token[1] == value:
            self.index += 1
            return True
        return False


def parse_ltl(text: str) -> Formula:
    """Parse *text* into a :class:`~repro.ltl.formulas.Formula`."""
    tokens = _Tokens(text)
    formula = _parse_implication(tokens)
    leftover = tokens.peek()
    if leftover is not None:
        raise LtlParseError(f"trailing input {leftover[1]!r}",
                            leftover[2], text)
    return formula


def _parse_implication(tokens: _Tokens) -> Formula:
    left = _parse_until(tokens)
    if tokens.accept("op", "->"):
        right = _parse_implication(tokens)
        return implies(left, right)
    return left


def _parse_until(tokens: _Tokens) -> Formula:
    left = _parse_disjunction(tokens)
    token = tokens.peek()
    if token is not None and token[0] == "word" and token[1] in _BINARY_KEYWORDS:
        operator = tokens.advance()[1]
        right = _parse_until(tokens)
        if operator == "U":
            return Until(left, right)
        if operator == "W":
            return WeakUntil(left, right)
        return Release(left, right)
    return left


def _parse_disjunction(tokens: _Tokens) -> Formula:
    left = _parse_conjunction(tokens)
    while tokens.accept("op", "|"):
        left = lor(left, _parse_conjunction(tokens))
    return left


def _parse_conjunction(tokens: _Tokens) -> Formula:
    left = _parse_unary(tokens)
    while tokens.accept("op", "&"):
        left = land(left, _parse_unary(tokens))
    return left


def _parse_unary(tokens: _Tokens) -> Formula:
    token = tokens.peek()
    if token is None:
        raise LtlParseError("unexpected end of input",
                            len(tokens.text), tokens.text)
    kind, value, position = token
    if kind == "op" and value == "!":
        tokens.advance()
        return lnot(_parse_unary(tokens))
    if kind == "word" and value in _UNARY_KEYWORDS:
        tokens.advance()
        operand = _parse_unary(tokens)
        if value == "X":
            return Next(operand)
        if value == "F":
            return Eventually(operand)
        return Globally(operand)
    return _parse_primary(tokens)


def _parse_primary(tokens: _Tokens) -> Formula:
    kind, value, position = tokens.advance()
    if kind == "op" and value == "(":
        formula = _parse_implication(tokens)
        if not tokens.accept("op", ")"):
            raise LtlParseError("missing closing parenthesis",
                                position, tokens.text)
        return formula
    if kind == "word":
        if value in _CONSTANTS:
            return _CONSTANTS[value]
        if value in _UNARY_KEYWORDS or value in _BINARY_KEYWORDS:
            raise LtlParseError(f"operator {value!r} where atom expected",
                                position, tokens.text)
        return Atom(value)
    raise LtlParseError(f"unexpected token {value!r}", position, tokens.text)
