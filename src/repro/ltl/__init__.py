"""LTL over finite traces: AST, parser, and a 3-valued runtime monitor.

This is the runtime-verification substrate behind the operations-time
protection loop (WP3) and the event-driven alternative to RQCODE's
polling :class:`~repro.rqcode.temporal.MonitoringLoop` (ablation in
experiment E2).

* :mod:`repro.ltl.formulas` — immutable formula AST with constant-
  folding constructors.
* :mod:`repro.ltl.parser` — text syntax (``G (p -> F q)``, ``p U q``).
* :mod:`repro.ltl.monitor` — progression-based impartial monitor with
  TRUE / FALSE / INCONCLUSIVE verdicts, plus exact LTLf evaluation on
  completed traces.
* :mod:`repro.ltl.compile` — the compiled engine: hash-consed
  obligations, shared per-formula transition tables, and
  :class:`CompiledMonitor`, whose warmed ``observe()`` is a dict
  lookup instead of a recursive rewrite.
"""

from repro.ltl.compile import (
    CompiledMonitor,
    TransitionTable,
    empty_step_stable,
    step_monitors,
    transition_table,
)
from repro.ltl.formulas import (
    And,
    Atom,
    Eventually,
    FALSE,
    Formula,
    Globally,
    Implies,
    Next,
    Not,
    Or,
    Release,
    TRUE,
    Until,
    WeakUntil,
)
from repro.ltl.monitor import LtlMonitor, Verdict, evaluate_ltlf
from repro.ltl.parser import LtlParseError, parse_ltl

__all__ = [
    "And",
    "Atom",
    "CompiledMonitor",
    "Eventually",
    "FALSE",
    "Formula",
    "Globally",
    "Implies",
    "LtlMonitor",
    "LtlParseError",
    "Next",
    "Not",
    "Or",
    "Release",
    "TRUE",
    "TransitionTable",
    "Until",
    "Verdict",
    "WeakUntil",
    "empty_step_stable",
    "evaluate_ltlf",
    "parse_ltl",
    "step_monitors",
    "transition_table",
]
