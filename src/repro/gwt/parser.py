"""Gherkin-style parser for GWT feature text.

Supported subset::

    Feature: Account lockout
      Locks accounts after repeated failures.

      @security @logon
      Scenario: lock after three failures
        Given the account "alice" is active
        When 3 consecutive logons fail
        Then the account is locked
        And an "account.locked" event is emitted within 5 seconds

Numeric tokens and quoted strings in step text become bindings:
numbers bind as ``param1``, ``param2``, ... and quoted strings as
``name1``, ... so mapping rules can reference them positionally.
"""

import re
from typing import List, Optional

from repro.gwt.model import GwtFeature, GwtScenario, GwtStep, KEYWORDS


class GherkinParseError(ValueError):
    """Malformed feature text, with line number."""

    def __init__(self, message: str, line_number: int):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_NUMBER = re.compile(r"(?<![\w.])(\d+(?:\.\d+)?)(?![\w.])")
_QUOTED = re.compile(r'"([^"]*)"')


def _extract_bindings(text: str) -> dict:
    bindings = {}
    for index, match in enumerate(_NUMBER.finditer(text), start=1):
        bindings[f"param{index}"] = float(match.group(1))
    for index, match in enumerate(_QUOTED.finditer(text), start=1):
        # Quoted strings are kept by hash for equality checks; mapping
        # rules that need the literal text read it from the step.
        bindings[f"name{index}"] = float(abs(hash(match.group(1))) % 10**6)
    return bindings


def parse_feature(text: str) -> GwtFeature:
    """Parse one feature file's text."""
    feature: Optional[GwtFeature] = None
    scenario: Optional[GwtScenario] = None
    pending_tags: List[str] = []
    description_lines: List[str] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("@"):
            pending_tags = [tag.lstrip("@") for tag in line.split()]
            continue
        if line.startswith("Feature:"):
            if feature is not None:
                raise GherkinParseError("duplicate Feature header",
                                        line_number)
            feature = GwtFeature(name=line[len("Feature:"):].strip())
            continue
        if line.startswith("Scenario:"):
            if feature is None:
                raise GherkinParseError("Scenario before Feature",
                                        line_number)
            scenario = GwtScenario(name=line[len("Scenario:"):].strip(),
                                   tags=pending_tags)
            pending_tags = []
            feature.scenarios.append(scenario)
            continue
        keyword = next((k for k in KEYWORDS if line.startswith(k + " ")),
                       None)
        if keyword is not None:
            if scenario is None:
                raise GherkinParseError(f"{keyword} step outside a Scenario",
                                        line_number)
            step_text = line[len(keyword):].strip()
            scenario.steps.append(GwtStep(
                keyword=keyword,
                text=step_text,
                bindings=_extract_bindings(step_text),
            ))
            continue
        if feature is not None and not feature.scenarios:
            description_lines.append(line)
            continue
        raise GherkinParseError(f"unrecognized line: {line!r}", line_number)

    if feature is None:
        raise GherkinParseError("no Feature header found", 0)
    feature.description = " ".join(description_lines)
    _validate(feature)
    return feature


def _validate(feature: GwtFeature) -> None:
    for scenario in feature.scenarios:
        if not scenario.steps:
            raise GherkinParseError(
                f"scenario {scenario.name!r} has no steps", 0)
        first = scenario.steps[0].keyword
        if first in ("And", "But"):
            raise GherkinParseError(
                f"scenario {scenario.name!r} starts with {first}", 0)
