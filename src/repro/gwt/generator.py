"""Concretization: mapping rules, TestGenerator, ScriptCreator.

The TIGER flow D2.7 describes: ``JsonReading`` deserializes abstract
test cases into ``DataModel`` objects; ``xmlReader`` loads ``Signal``
definitions; "Mapping Rules are defined in the 'TestGenerator' class
which are used to concretize the abstract test cases [and] generate the
scripts using 'ScriptCreator'".

A :class:`MappingRule` translates one abstract action label into
concrete script lines, with ``{placeholders}`` filled from the step's
bindings and the signal table.  :class:`ScriptCreator` assembles the
concrete steps into a runnable pytest-style script ("a customised class
can be added to generate test scripts of your own choice" — subclass
and override :meth:`ScriptCreator.render`).
"""

import json
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.gwt.model import DataModel, Signal


def read_signals_xml(text: str) -> List[Signal]:
    """Parse the signal-definition XML (the ``xmlReader`` role)::

        <signals>
          <signal name="speed" kind="input" type="float"
                  min="0" max="250" unit="km/h"/>
        </signals>
    """
    root = ET.fromstring(text)
    signals = []
    for element in root.findall("signal"):
        signals.append(Signal(
            name=element.attrib["name"],
            kind=element.attrib.get("kind", "input"),
            data_type=element.attrib.get("type", "float"),
            minimum=float(element.attrib.get("min", 0.0)),
            maximum=float(element.attrib.get("max", 1.0)),
            unit=element.attrib.get("unit", ""),
        ))
    return signals


def read_datamodels_json(text: str) -> List[DataModel]:
    """Parse abstract test cases from JSON (the ``JsonReading`` role)."""
    payload = json.loads(text)
    items = payload if isinstance(payload, list) else payload.get("tests", [])
    return [DataModel.from_json_obj(item) for item in items]


@dataclass(frozen=True)
class MappingRule:
    """One abstract-action -> concrete-lines translation.

    ``template_lines`` may reference ``{param1}``-style binding names
    and ``{signal:NAME}`` to splice a signal's declared attributes
    (rendered as ``name``); unknown placeholders raise at generation
    time so silent half-concretized scripts cannot ship.
    """

    action: str
    template_lines: Sequence[str]
    description: str = ""

    def render(self, bindings: Dict[str, float],
               signals: Dict[str, Signal]) -> List[str]:
        rendered = []
        for line in self.template_lines:
            rendered.append(_fill(line, bindings, signals, self.action))
        return rendered


def _fill(line: str, bindings: Dict[str, float],
          signals: Dict[str, Signal], action: str) -> str:
    out = []
    index = 0
    while index < len(line):
        char = line[index]
        if char != "{":
            out.append(char)
            index += 1
            continue
        closing = line.find("}", index)
        if closing < 0:
            raise ValueError(f"unclosed placeholder in rule for {action!r}")
        token = line[index + 1:closing]
        if token.startswith("signal:"):
            name = token[len("signal:"):]
            if name not in signals:
                raise KeyError(
                    f"rule for {action!r} references unknown signal "
                    f"{name!r}")
            out.append(signals[name].name)
        elif token in bindings:
            value = bindings[token]
            out.append(f"{value:g}")
        else:
            raise KeyError(
                f"rule for {action!r} references unbound placeholder "
                f"{token!r}")
        index = closing + 1
    return "".join(out)


@dataclass
class ConcreteTest:
    """One concretized test: id, title, and executable lines."""

    test_id: str
    name: str
    lines: List[str] = field(default_factory=list)


class TestGenerator:
    """Concretizes abstract test cases using mapping rules and signals."""

    def __init__(self, rules: Sequence[MappingRule],
                 signals: Sequence[Signal] = ()):
        self._rules: Dict[str, MappingRule] = {}
        for rule in rules:
            if rule.action in self._rules:
                raise ValueError(f"duplicate rule for action {rule.action!r}")
            self._rules[rule.action] = rule
        self._signals = {signal.name: signal for signal in signals}

    @property
    def actions(self) -> List[str]:
        return sorted(self._rules)

    def concretize(self, case: DataModel) -> ConcreteTest:
        """Translate one abstract case; unmapped actions raise KeyError."""
        lines: List[str] = []
        for step in case.steps:
            rule = self._rules.get(step.action)
            if rule is None:
                raise KeyError(
                    f"no mapping rule for abstract action {step.action!r}")
            lines.extend(rule.render(step.bindings, self._signals))
        return ConcreteTest(test_id=case.test_id, name=case.name,
                            lines=lines)

    def concretize_all(self, cases: Sequence[DataModel]
                       ) -> List[ConcreteTest]:
        return [self.concretize(case) for case in cases]


class ScriptCreator:
    """Renders concrete tests into one executable script text.

    The default output is a pytest module driving a ``system`` fixture;
    subclasses override :meth:`render` (or just :meth:`header` /
    :meth:`footer`) for other script dialects.
    """

    def header(self) -> List[str]:
        return [
            '"""Generated by repro.gwt (TIGER-style concretization)."""',
            "",
            "import pytest",
            "",
        ]

    def footer(self) -> List[str]:
        return []

    def render_test(self, test: ConcreteTest) -> List[str]:
        safe_name = "".join(
            c if c.isalnum() else "_" for c in test.test_id).strip("_")
        lines = [f"def test_{safe_name}(system):"]
        lines.append(f'    """{test.name}"""')
        for line in test.lines:
            lines.append(f"    {line}")
        if not test.lines:
            lines.append("    pass")
        lines.append("")
        return lines

    def render(self, tests: Sequence[ConcreteTest]) -> str:
        lines = self.header()
        for test in tests:
            lines.extend(self.render_test(test))
        lines.extend(self.footer())
        return "\n".join(lines)
