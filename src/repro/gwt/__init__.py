"""GWT — Given-When-Then patterns and TIGER-style test generation.

D2.7 §2.2.1 describes the TIGER tool chain: graph models (JSON or
GraphML, as GraphWalker consumes) produce *abstract* test cases; mapping
rules concretize them against signal definitions; a script creator emits
executable test scripts.  The Given-When-Then semi-structured syntax
(Dan North's BDD) is the requirement-facing notation.

* :mod:`repro.gwt.model` — GWT features/scenarios, ``Signal`` and
  ``DataModel`` records (the classes D2.7 names).
* :mod:`repro.gwt.parser` — Gherkin-style text parser.
* :mod:`repro.gwt.graph` — graph models + abstract test generation
  (random walk, edge coverage, vertex coverage, shortest path).
* :mod:`repro.gwt.generator` — mapping rules, ``TestGenerator``,
  ``ScriptCreator``, and the signal XML reader.
"""

from repro.gwt.model import (
    AbstractStep,
    DataModel,
    GwtFeature,
    GwtScenario,
    Signal,
)
from repro.gwt.parser import GherkinParseError, parse_feature
from repro.gwt.graph import (
    GraphModel,
    edge_coverage_paths,
    random_walk,
    shortest_path_to,
    vertex_coverage_paths,
)
from repro.gwt.generator import (
    MappingRule,
    ScriptCreator,
    TestGenerator,
    read_signals_xml,
)
from repro.gwt.dsl import GeneratorDslError, generate, parse_generator

__all__ = [
    "AbstractStep",
    "DataModel",
    "GherkinParseError",
    "GraphModel",
    "GwtFeature",
    "GwtScenario",
    "MappingRule",
    "ScriptCreator",
    "Signal",
    "TestGenerator",
    "GeneratorDslError",
    "edge_coverage_paths",
    "generate",
    "parse_feature",
    "parse_generator",
    "random_walk",
    "read_signals_xml",
    "shortest_path_to",
    "vertex_coverage_paths",
]
