"""GraphWalker generator/stop-condition DSL.

GraphWalker configures test generation with expressions like
``random(edge_coverage(100))`` — a path generator wrapping a stop
condition.  TIGER passes these through to GraphWalker; this module
parses the common subset and dispatches onto this package's
generators:

===============================  =====================================
expression                        dispatch
===============================  =====================================
``random(edge_coverage(N))``      :func:`~repro.gwt.graph.random_walk`
                                  until N% of edges are covered
``random(vertex_coverage(N))``    random walk until N% of vertices
                                  are visited
``random(length(N))``             random walk of exactly <= N steps
``weighted_random(...)``          alias of ``random`` (weights are a
                                  GraphWalker scheduling detail)
``a_star(reached_vertex(V))``     shortest path to state V
``directed(edge_coverage(100))``  deterministic full edge coverage
``directed(vertex_coverage(100))``  deterministic full vertex coverage
===============================  =====================================
"""

import random as random_module
import re
from dataclasses import dataclass
from typing import Optional

from repro.gwt.graph import (
    GraphModel,
    edge_coverage_paths,
    edge_coverage_suite,
    random_walk,
    shortest_path_to,
    vertex_coverage_paths,
)
from repro.gwt.model import AbstractStep, DataModel


class GeneratorDslError(ValueError):
    """Unparseable or unsupported generator expression."""


@dataclass(frozen=True)
class GeneratorSpec:
    """A parsed generator expression."""

    generator: str       # "random" | "a_star" | "directed"
    condition: str       # "edge_coverage" | "vertex_coverage" |
    #                      "length" | "reached_vertex"
    argument: str        # percentage / length / vertex name

    def __str__(self) -> str:
        return f"{self.generator}({self.condition}({self.argument}))"


_EXPRESSION = re.compile(
    r"^\s*(?P<generator>[a-z_]+)\s*\(\s*(?P<condition>[a-z_]+)\s*"
    r"\(\s*(?P<argument>[A-Za-z0-9_.]+)\s*\)\s*\)\s*$"
)

_GENERATOR_ALIASES = {"weighted_random": "random",
                      "quick_random": "random"}
_SUPPORTED = {
    ("random", "edge_coverage"),
    ("random", "vertex_coverage"),
    ("random", "length"),
    ("a_star", "reached_vertex"),
    ("directed", "edge_coverage"),
    ("directed", "vertex_coverage"),
}


def parse_generator(expression: str) -> GeneratorSpec:
    """Parse one generator expression into a :class:`GeneratorSpec`."""
    match = _EXPRESSION.match(expression)
    if match is None:
        raise GeneratorDslError(
            f"unparseable generator expression: {expression!r}")
    generator = match.group("generator")
    generator = _GENERATOR_ALIASES.get(generator, generator)
    condition = match.group("condition")
    if (generator, condition) not in _SUPPORTED:
        raise GeneratorDslError(
            f"unsupported combination {generator}({condition}(...))")
    return GeneratorSpec(generator=generator, condition=condition,
                         argument=match.group("argument"))


def generate(model: GraphModel, expression: str, seed: int = 0,
             max_steps: int = 10_000,
             test_id: Optional[str] = None) -> DataModel:
    """Run the generator *expression* against *model*."""
    spec = parse_generator(expression)
    test_id = test_id if test_id is not None else str(spec)

    if spec.generator == "directed":
        if spec.condition == "edge_coverage":
            case = edge_coverage_paths(model, test_id=test_id)
        else:
            case = vertex_coverage_paths(model, test_id=test_id)
        _require_full_coverage(spec)
        return case

    if spec.generator == "a_star":
        return shortest_path_to(model, spec.argument, test_id=test_id)

    # random(...)
    if spec.condition == "length":
        case = random_walk(model, seed=seed,
                           max_steps=int(spec.argument),
                           test_id=test_id)
        case.name = str(spec)
        return case
    percentage = float(spec.argument) / 100.0
    if not 0.0 < percentage <= 1.0:
        raise GeneratorDslError(
            f"coverage percentage out of range: {spec.argument}")
    if spec.condition == "edge_coverage":
        case = random_walk(model, seed=seed, max_steps=max_steps,
                           edge_coverage=percentage, test_id=test_id)
        case.name = str(spec)
        return case
    return _random_until_vertex_coverage(model, percentage, seed,
                                         max_steps, test_id, spec)


def generate_suite(model: GraphModel, expression: str, seed: int = 0,
                   max_steps: int = 10_000) -> list:
    """Like :func:`generate`, but may return several abstract cases.

    ``directed(edge_coverage(100))`` on models with dead-end states
    (prefix-tree models from :mod:`repro.gwt.scenario_model`) needs
    restarts from the start state; this entry point returns one
    :class:`~repro.gwt.model.DataModel` per walk.  Every other
    expression yields a single-element list.
    """
    spec = parse_generator(expression)
    if spec.generator == "directed" and spec.condition == "edge_coverage":
        _require_full_coverage(spec)
        return edge_coverage_suite(model)
    return [generate(model, expression, seed=seed, max_steps=max_steps)]


def _require_full_coverage(spec: GeneratorSpec) -> None:
    if float(spec.argument) != 100.0:
        raise GeneratorDslError(
            "directed generators support only 100% coverage "
            f"(got {spec.argument})")


def _random_until_vertex_coverage(model: GraphModel, percentage: float,
                                  seed: int, max_steps: int,
                                  test_id: str,
                                  spec: GeneratorSpec) -> DataModel:
    """Random walk until the vertex-coverage fraction is reached."""
    rng = random_module.Random(seed)
    total = model.graph.number_of_nodes()
    visited = {model.start}
    steps = []
    current = model.start
    for _ in range(max_steps):
        if total and len(visited) / total >= percentage:
            break
        out_edges = list(model.graph.out_edges(current, keys=True,
                                               data=True))
        if not out_edges:
            break
        _, target, _, data = out_edges[rng.randrange(len(out_edges))]
        steps.append(AbstractStep(action=data["action"],
                                  bindings=dict(data.get("bindings", {}))))
        visited.add(target)
        current = target
    return DataModel(test_id=test_id, name=str(spec), steps=steps)
