"""Synthesize a graph model from Given-When-Then scenarios.

TIGER's flow assumes a hand-built graph model; this module closes the
gap from the requirement side: a :class:`~repro.gwt.model.GwtFeature`
becomes a :class:`~repro.gwt.graph.GraphModel` by treating each
scenario as a path and merging scenarios on their shared step prefixes
(a prefix tree whose edges are the When/Then actions).

* All ``Given`` steps fold into the start state — they are setup, not
  transitions.
* Each ``When``/``Then`` step (with ``And``/``But`` resolved) becomes
  an edge labelled with a sanitized action name; numeric bindings ride
  along.
* Scenarios sharing a step prefix share the corresponding states, so a
  feature with variant endings becomes a branching model rather than
  disjoint chains.

The synthesized model feeds the standard generators — so the path from
a BDD feature file to executable coverage-guided tests is fully
automatic (feature -> model -> abstract tests -> mapping rules ->
script).
"""

import re
from typing import Dict, List, Tuple

from repro.gwt.graph import GraphModel
from repro.gwt.model import GwtFeature, GwtScenario, GwtStep


def action_name(step_text: str) -> str:
    """Sanitize step text into an action identifier."""
    words = re.findall(r"[a-z0-9]+", step_text.lower())
    name = "_".join(words) or "step"
    if name[0].isdigit():
        name = f"a_{name}"
    return name


def _transition_steps(scenario: GwtScenario) -> List[GwtStep]:
    """The steps that become edges: everything that is not a Given."""
    transitions = []
    current = None
    for step in scenario.steps:
        primary = (step.keyword if step.keyword in ("Given", "When", "Then")
                   else current)
        current = primary
        if primary != "Given":
            transitions.append(step)
    return transitions


def model_from_feature(feature: GwtFeature,
                       name: str = None) -> GraphModel:
    """Build the prefix-tree model of *feature*'s scenarios."""
    model = GraphModel(name or action_name(feature.name), "start")
    # State keyed by the tuple of action names leading to it.
    states: Dict[Tuple[str, ...], str] = {(): "start"}
    counter = 0
    for scenario in feature.scenarios:
        prefix: Tuple[str, ...] = ()
        for step in _transition_steps(scenario):
            action = action_name(step.text)
            next_prefix = prefix + (action,)
            if next_prefix not in states:
                counter += 1
                state = f"s{counter}"
                model.add_state(state)
                states[next_prefix] = state
                model.add_action(states[prefix], state, action,
                                 **step.bindings)
            prefix = next_prefix
    model.validate()
    return model
