"""GWT domain model.

The record types mirror the classes D2.7 names in the TIGER repository:
``Signal`` ("the model for storing information about the signals"),
``DataModel`` ("a List of DataModel class objects" deserialized from the
abstract test cases), plus the Given-When-Then scenario structures the
parser produces.
"""

from dataclasses import dataclass, field
from typing import Dict, List

#: The GWT step keywords in canonical order.
KEYWORDS = ("Given", "When", "Then", "And", "But")


@dataclass(frozen=True)
class Signal:
    """A system signal a concrete test can read or write.

    Attributes:
        name: Signal identifier used by mapping rules.
        kind: ``"input"`` or ``"output"``.
        data_type: ``"bool"``, ``"int"`` or ``"float"``.
        minimum, maximum: Valid range for generated stimulus values.
        unit: Free-form engineering unit for reports.
    """

    name: str
    kind: str = "input"
    data_type: str = "float"
    minimum: float = 0.0
    maximum: float = 1.0
    unit: str = ""

    def __post_init__(self):
        if self.kind not in ("input", "output"):
            raise ValueError(f"signal kind must be input/output: {self.kind!r}")
        if self.data_type not in ("bool", "int", "float"):
            raise ValueError(f"unsupported data type: {self.data_type!r}")
        if self.minimum > self.maximum:
            raise ValueError("signal minimum exceeds maximum")

    def clamp(self, value: float) -> float:
        """Clamp *value* into the signal's declared range."""
        return max(self.minimum, min(self.maximum, value))


@dataclass
class GwtStep:
    """One scenario step: keyword + text, with any parsed parameters."""

    keyword: str
    text: str
    #: ``signal=value`` bindings extracted from quoted/numeric tokens.
    bindings: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.keyword} {self.text}"


@dataclass
class GwtScenario:
    """One Given-When-Then scenario."""

    name: str
    steps: List[GwtStep] = field(default_factory=list)
    tags: List[str] = field(default_factory=list)

    def steps_for(self, keyword: str) -> List[GwtStep]:
        """Steps of one keyword, with ``And``/``But`` resolved to the
        preceding primary keyword."""
        resolved: List[GwtStep] = []
        current = None
        for step in self.steps:
            primary = step.keyword if step.keyword in ("Given", "When",
                                                       "Then") else current
            current = primary
            if primary == keyword:
                resolved.append(step)
        return resolved


@dataclass
class GwtFeature:
    """A feature file: name, description, scenarios."""

    name: str
    description: str = ""
    scenarios: List[GwtScenario] = field(default_factory=list)

    def scenario(self, name: str) -> GwtScenario:
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(f"no scenario named {name!r}")


@dataclass
class AbstractStep:
    """One step of an abstract test case: an action label plus optional
    signal bindings carried over from the model edge."""

    action: str
    bindings: Dict[str, float] = field(default_factory=dict)


@dataclass
class DataModel:
    """One abstract test case, as TIGER's JSON deserialization yields.

    Attributes:
        test_id: Stable identifier.
        name: Human-readable title (often the generator + stop rule).
        steps: Ordered abstract steps.
    """

    test_id: str
    name: str
    steps: List[AbstractStep] = field(default_factory=list)

    @property
    def actions(self) -> List[str]:
        return [step.action for step in self.steps]

    @classmethod
    def from_json_obj(cls, obj: dict) -> "DataModel":
        """Build from the JSON shape ``{"id", "name", "steps": [...]}``
        (the 'JsonReading' path in TIGER)."""
        steps = [
            AbstractStep(
                action=item["action"],
                bindings={k: float(v)
                          for k, v in item.get("bindings", {}).items()},
            )
            for item in obj.get("steps", [])
        ]
        return cls(test_id=str(obj["id"]), name=obj.get("name", ""),
                   steps=steps)

    def to_json_obj(self) -> dict:
        return {
            "id": self.test_id,
            "name": self.name,
            "steps": [
                {"action": step.action, "bindings": step.bindings}
                for step in self.steps
            ],
        }
