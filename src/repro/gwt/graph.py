"""Graph models and abstract test generation (GraphWalker work-alike).

A :class:`GraphModel` is a directed graph whose vertices are system
states and whose edges are actions; it loads from the two formats
GraphWalker supports — a JSON shape (``{"vertices": [...], "edges":
[...]}``) and GraphML — and generates *abstract test cases*
(:class:`~repro.gwt.model.DataModel`) under a stop condition:

* :func:`random_walk` — random traversal until a step budget or an
  edge-coverage percentage is reached;
* :func:`edge_coverage_paths` — deterministic coverage-guided
  generation: repeatedly extend toward the nearest unvisited edge until
  100% edge coverage;
* :func:`vertex_coverage_paths` — the vertex-coverage analogue;
* :func:`shortest_path_to` — a single path to a target state.
"""

import json
import random
from typing import List, Optional, Tuple

import networkx as nx

from repro.gwt.model import AbstractStep, DataModel


class GraphModel:
    """A test model: directed multigraph with named action edges."""

    def __init__(self, name: str, start: str):
        self.name = name
        self.start = start
        self.graph = nx.MultiDiGraph()
        self.graph.add_node(start)

    # -- construction -----------------------------------------------------------

    def add_state(self, name: str) -> "GraphModel":
        self.graph.add_node(name)
        return self

    def add_action(self, source: str, target: str, action: str,
                   **bindings: float) -> "GraphModel":
        """Add an action edge; *bindings* ride into abstract steps."""
        self.graph.add_edge(source, target, action=action,
                            bindings=dict(bindings))
        return self

    @property
    def states(self) -> List[str]:
        return sorted(self.graph.nodes)

    @property
    def actions(self) -> List[Tuple[str, str, str]]:
        """(source, target, action) triples, sorted."""
        return sorted(
            (u, v, data["action"])
            for u, v, data in self.graph.edges(data=True)
        )

    def validate(self) -> None:
        """Every state must be reachable from the start state."""
        reachable = nx.descendants(self.graph, self.start) | {self.start}
        unreachable = set(self.graph.nodes) - reachable
        if unreachable:
            raise ValueError(
                f"states unreachable from {self.start!r}: "
                f"{sorted(unreachable)}"
            )

    # -- GraphWalker formats -------------------------------------------------------

    @classmethod
    def from_json(cls, text: str) -> "GraphModel":
        """Load the JSON model format::

            {"name": "...", "start": "s0",
             "vertices": [{"id": "s0"}, ...],
             "edges": [{"source": "s0", "target": "s1",
                        "action": "login", "bindings": {"param1": 3}}]}
        """
        obj = json.loads(text)
        model = cls(name=obj.get("name", "model"), start=obj["start"])
        for vertex in obj.get("vertices", []):
            model.add_state(vertex["id"])
        for edge in obj.get("edges", []):
            model.add_action(
                edge["source"], edge["target"], edge["action"],
                **{k: float(v)
                   for k, v in edge.get("bindings", {}).items()},
            )
        model.validate()
        return model

    def to_json(self) -> str:
        return json.dumps({
            "name": self.name,
            "start": self.start,
            "vertices": [{"id": node} for node in self.states],
            "edges": [
                {"source": u, "target": v, "action": data["action"],
                 "bindings": data.get("bindings", {})}
                for u, v, data in self.graph.edges(data=True)
            ],
        }, indent=2)

    @classmethod
    def from_graphml(cls, text: str, name: str = "model",
                     start: Optional[str] = None) -> "GraphModel":
        """Load a GraphML document; edge attribute ``action`` (or the
        edge id) labels the action.  The start state is *start* or the
        lexicographically first node."""
        import io

        parsed = nx.read_graphml(io.StringIO(text))
        nodes = sorted(parsed.nodes)
        if not nodes:
            raise ValueError("GraphML model has no nodes")
        model = cls(name=name, start=start or nodes[0])
        for node in nodes:
            model.add_state(str(node))
        for u, v, data in parsed.edges(data=True):
            action = str(data.get("action", data.get("id", f"{u}->{v}")))
            model.add_action(str(u), str(v), action)
        model.validate()
        return model


# -- generation ---------------------------------------------------------------------

def _edge_key(u: str, v: str, k: int) -> Tuple[str, str, int]:
    return (u, v, k)


def random_walk(model: GraphModel, seed: int = 0,
                max_steps: int = 200,
                edge_coverage: Optional[float] = None,
                test_id: str = "rw-0") -> DataModel:
    """Random traversal from the start state.

    Stops at *max_steps*, or earlier once *edge_coverage* (a fraction)
    of distinct edges has been traversed.
    """
    rng = random.Random(seed)
    total_edges = model.graph.number_of_edges()
    visited = set()
    steps: List[AbstractStep] = []
    current = model.start
    for _ in range(max_steps):
        if edge_coverage is not None and total_edges:
            if len(visited) / total_edges >= edge_coverage:
                break
        out_edges = list(model.graph.out_edges(current, keys=True,
                                               data=True))
        if not out_edges:
            break
        u, v, k, data = out_edges[rng.randrange(len(out_edges))]
        visited.add(_edge_key(u, v, k))
        steps.append(AbstractStep(action=data["action"],
                                  bindings=dict(data.get("bindings", {}))))
        current = v
    return DataModel(test_id=test_id,
                     name=f"random walk (seed={seed})", steps=steps)


def edge_coverage_paths(model: GraphModel, test_id: str = "ec-0"
                        ) -> DataModel:
    """Deterministic walk achieving 100% edge coverage.

    Greedy nearest-unvisited-edge strategy: from the current state,
    take the shortest path (on the underlying simple digraph) to the
    source of the closest unvisited edge, traverse it, repeat.  The
    model must be start-connected (``validate``); edges whose source is
    unreachable raise.
    """
    model.validate()
    simple = nx.DiGraph(model.graph)
    unvisited = {
        _edge_key(u, v, k)
        for u, v, k in model.graph.edges(keys=True)
    }
    steps: List[AbstractStep] = []
    current = model.start
    while unvisited:
        local = [key for key in unvisited if key[0] == current]
        if local:
            u, v, k = min(local, key=lambda key: model.graph
                          [key[0]][key[1]][key[2]]["action"])
        else:
            # Shortest hop to any unvisited edge's source.
            lengths = nx.single_source_shortest_path_length(simple, current)
            candidates = [key for key in unvisited if key[0] in lengths]
            if not candidates:
                raise ValueError(
                    f"edges unreachable from {current!r}: "
                    f"{sorted(unvisited)[:3]}..."
                )
            u, v, k = min(candidates,
                          key=lambda key: (lengths[key[0]], key))
            path = nx.shortest_path(simple, current, u)
            for a, b in zip(path, path[1:]):
                key = _pick_edge(model, a, b)
                data = model.graph[a][b][key[2]]
                unvisited.discard(key)
                steps.append(AbstractStep(
                    action=data["action"],
                    bindings=dict(data.get("bindings", {}))))
            current = u
            continue
        data = model.graph[u][v][k]
        unvisited.discard((u, v, k))
        steps.append(AbstractStep(action=data["action"],
                                  bindings=dict(data.get("bindings", {}))))
        current = v
    return DataModel(test_id=test_id, name="edge coverage", steps=steps)


def _pick_edge(model: GraphModel, u: str, v: str) -> Tuple[str, str, int]:
    keys = sorted(model.graph[u][v])
    return (u, v, keys[0])


def edge_coverage_suite(model: GraphModel, prefix: str = "ec"
                        ) -> List[DataModel]:
    """Full edge coverage as a *suite* of paths from the start state.

    :func:`edge_coverage_paths` needs every uncovered edge to stay
    reachable from wherever the walk currently is, which fails on
    tree/DAG models with dead-end leaves.  This variant restarts from
    the start state whenever the walk gets stuck (GraphWalker's
    multiple-test-case behaviour), emitting one abstract case per walk.
    """
    model.validate()
    simple = nx.DiGraph(model.graph)
    unvisited = {
        _edge_key(u, v, k)
        for u, v, k in model.graph.edges(keys=True)
    }
    cases: List[DataModel] = []
    while unvisited:
        steps: List[AbstractStep] = []
        current = model.start
        while True:
            local = [key for key in unvisited if key[0] == current]
            if local:
                u, v, k = min(local, key=lambda key: model.graph
                              [key[0]][key[1]][key[2]]["action"])
                data = model.graph[u][v][k]
                unvisited.discard((u, v, k))
                steps.append(AbstractStep(
                    action=data["action"],
                    bindings=dict(data.get("bindings", {}))))
                current = v
                continue
            lengths = nx.single_source_shortest_path_length(simple,
                                                            current)
            candidates = [key for key in unvisited if key[0] in lengths]
            if not candidates:
                break  # nothing more reachable on this walk: restart
            u, v, k = min(candidates,
                          key=lambda key: (lengths[key[0]], key))
            path = nx.shortest_path(simple, current, u)
            for a, b in zip(path, path[1:]):
                key = _pick_edge(model, a, b)
                data = model.graph[a][b][key[2]]
                unvisited.discard(key)
                steps.append(AbstractStep(
                    action=data["action"],
                    bindings=dict(data.get("bindings", {}))))
            current = u
        if not steps:
            raise ValueError(
                f"edges unreachable from start: {sorted(unvisited)[:3]}")
        cases.append(DataModel(
            test_id=f"{prefix}-{len(cases)}",
            name="edge coverage (suite)", steps=steps))
    return cases


def vertex_coverage_paths(model: GraphModel, test_id: str = "vc-0"
                          ) -> DataModel:
    """Deterministic walk visiting every state at least once."""
    model.validate()
    simple = nx.DiGraph(model.graph)
    unvisited = set(model.graph.nodes)
    steps: List[AbstractStep] = []
    current = model.start
    unvisited.discard(current)
    while unvisited:
        lengths = nx.single_source_shortest_path_length(simple, current)
        candidates = [node for node in unvisited if node in lengths]
        if not candidates:
            raise ValueError(
                f"states unreachable from {current!r}: {sorted(unvisited)}")
        target = min(candidates, key=lambda node: (lengths[node], node))
        path = nx.shortest_path(simple, current, target)
        for a, b in zip(path, path[1:]):
            key = _pick_edge(model, a, b)
            data = model.graph[a][b][key[2]]
            steps.append(AbstractStep(action=data["action"],
                                      bindings=dict(data.get("bindings", {}))))
            unvisited.discard(b)
        current = target
    return DataModel(test_id=test_id, name="vertex coverage", steps=steps)


def shortest_path_to(model: GraphModel, target: str,
                     test_id: str = "sp-0") -> DataModel:
    """A single shortest abstract test reaching *target*."""
    simple = nx.DiGraph(model.graph)
    path = nx.shortest_path(simple, model.start, target)
    steps = []
    for a, b in zip(path, path[1:]):
        key = _pick_edge(model, a, b)
        data = model.graph[a][b][key[2]]
        steps.append(AbstractStep(action=data["action"],
                                  bindings=dict(data.get("bindings", {}))))
    return DataModel(test_id=test_id, name=f"shortest path to {target}",
                     steps=steps)


def edge_coverage_of(model: GraphModel, cases: List[DataModel]) -> float:
    """Fraction of distinct model actions exercised by *cases*.

    Measured on action labels (what a tester sees in the report), not
    raw edge keys, so parallel edges with the same action count once.
    """
    all_actions = {action for _, _, action in model.actions}
    if not all_actions:
        return 1.0
    covered = set()
    for case in cases:
        covered.update(step.action for step in case.steps)
    return len(covered & all_actions) / len(all_actions)
