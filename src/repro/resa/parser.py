"""RESA document parsing and validation.

A RESA document is a plain-text file, one requirement per line::

    REQ-1: The authentication service shall lock the account.
    REQ-2: When 3 consecutive failures occur, the session manager
           shall alert the operator within 5 seconds.

The file extension picks the EAST-ADL abstraction level: ``.resa``
generic, ``.vl`` vehicle level, ``.al`` analysis level, ``.dl`` design
level (D2.7 §2.2.3).  Parsing produces structured requirements plus
:class:`Diagnostic` records for statements that match no boilerplate or
use terms outside the ontology.
"""

import enum
import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.resa.boilerplates import (
    BoilerplateMatchError,
    StructuredRequirement,
    boilerplate_by_id,
    match_boilerplate,
)
from repro.resa.ontology import Ontology, default_ontology


class EastAdlLevel(enum.Enum):
    """EAST-ADL abstraction levels, keyed by file extension."""

    GENERIC = "resa"
    VEHICLE = "vl"
    ANALYSIS = "al"
    DESIGN = "dl"


def level_for_extension(filename: str) -> EastAdlLevel:
    """Pick the level from a file name's extension."""
    extension = filename.rsplit(".", 1)[-1].lower()
    for level in EastAdlLevel:
        if level.value == extension:
            return level
    raise ValueError(
        f"unknown RESA extension {extension!r} "
        f"(expected .resa, .vl, .al or .dl)"
    )


@dataclass
class Diagnostic:
    """One validation finding."""

    req_id: str
    severity: str  # "error" | "warning"
    message: str


@dataclass
class ResaDocument:
    """A parsed document: requirements plus diagnostics."""

    level: EastAdlLevel
    requirements: List[StructuredRequirement] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def valid(self) -> bool:
        return not self.errors

    def requirement(self, req_id: str) -> StructuredRequirement:
        for requirement in self.requirements:
            if requirement.req_id == req_id:
                return requirement
        raise KeyError(f"no requirement {req_id!r}")


_LINE = re.compile(r"^\s*(?P<id>[A-Za-z][\w-]*)\s*:\s*(?P<text>.+)$")


def parse_document(text: str, level: EastAdlLevel = EastAdlLevel.GENERIC,
                   ontology: Optional[Ontology] = None) -> ResaDocument:
    """Parse and validate one document's text.

    Statements may wrap across lines; a new requirement starts at a
    ``ID:`` prefix.  Unmatched statements yield *error* diagnostics;
    slot fillers outside the ontology yield *warnings* (the statement
    structure is sound, the vocabulary needs review).
    """
    ontology = ontology if ontology is not None else default_ontology()
    document = ResaDocument(level=level)
    pending: Optional[List[str]] = None
    pending_id = ""

    def flush() -> None:
        if pending is None:
            return
        statement = " ".join(" ".join(pending).split())
        try:
            requirement = match_boilerplate(pending_id, statement)
        except BoilerplateMatchError:
            document.diagnostics.append(Diagnostic(
                req_id=pending_id, severity="error",
                message=f"matches no boilerplate: {statement!r}",
            ))
            return
        document.requirements.append(requirement)
        _validate_slots(requirement, ontology, document.diagnostics)

    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if not line.strip() or line.strip().startswith("#"):
            continue
        match = _LINE.match(line)
        if match and not line.startswith((" ", "\t")):
            flush()
            pending = [match.group("text")]
            pending_id = match.group("id")
        elif pending is not None:
            pending.append(line.strip())
        else:
            document.diagnostics.append(Diagnostic(
                req_id="-", severity="error",
                message=f"text before any requirement id: {line.strip()!r}",
            ))
    flush()
    return document


def _validate_slots(requirement: StructuredRequirement, ontology: Ontology,
                    diagnostics: List[Diagnostic]) -> None:
    boilerplate = boilerplate_by_id(requirement.boilerplate_id)
    for slot, category in boilerplate.slot_categories.items():
        value = requirement.slots.get(slot)
        if value is None:
            continue
        if not ontology.knows(category, value):
            diagnostics.append(Diagnostic(
                req_id=requirement.req_id, severity="warning",
                message=(
                    f"slot {slot!r} value {value!r} has terms outside "
                    f"the {category!r} ontology"
                ),
            ))
