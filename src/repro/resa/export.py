"""Export: structured RESA requirements -> specification patterns.

The bridge from constrained natural language into PROPAS formalization.
The mapping is syntactic and total over the boilerplate catalogue:

====  ==========================================================
B1    ``The S shall A.``            -> Existence(A) — the behaviour
      must be exhibited (verified as reachability / test obligation).
B2    ``... within N U.``           -> TimedResponse(trigger=S-request,
      response=A, bound=N) with the unit normalized to seconds.
B3    ``When C, ... shall A.``      -> Response(p=C, s=A).
B4    ``When C, ... within N U.``   -> TimedResponse(p=C, s=A, bound=N).
B5    ``... shall not A.``          -> Absence(A).
B6    ``While C, ... shall A.``     -> Universality(A) scoped
      after C until not-C (rendered here as the AfterQUntilR scope).
====  ==========================================================

Events are slot texts normalized to snake_case identifiers, which is
what the observer builder and LTL atoms expect.
"""

import re
from typing import Tuple

from repro.resa.boilerplates import StructuredRequirement
from repro.specpatterns.patterns import (
    Absence,
    Existence,
    Pattern,
    Response,
    TimedResponse,
    Universality,
)
from repro.specpatterns.scopes import AfterQUntilR, Globally, Scope

#: Unit name -> seconds multiplier.
_UNIT_SECONDS = {
    "ms": 0.001, "millisecond": 0.001, "milliseconds": 0.001,
    "second": 1.0, "seconds": 1.0,
    "minute": 60.0, "minutes": 60.0,
    "hour": 3600.0, "hours": 3600.0,
}


def event_name(slot_text: str) -> str:
    """Normalize a slot's text into an event identifier.

    Identifiers must be valid LTL atoms: no hyphens, never starting
    with a digit (``3 failures`` -> ``e_3_failures``).
    """
    words = re.findall(r"[a-z0-9]+", slot_text.lower())
    name = "_".join(words) or "event"
    if name[0].isdigit():
        name = f"e_{name}"
    return name


def bound_in_seconds(number: str, unit: str) -> int:
    """Normalize ``(number, unit)`` to integer seconds (ceil, min 1)."""
    multiplier = _UNIT_SECONDS.get(unit.lower())
    if multiplier is None:
        raise ValueError(f"unknown time unit {unit!r}")
    seconds = float(number) * multiplier
    return max(1, int(seconds + 0.999999))


def to_pattern(requirement: StructuredRequirement
               ) -> Tuple[Pattern, Scope]:
    """Map one structured requirement to (pattern, scope)."""
    slots = requirement.slots
    boilerplate = requirement.boilerplate_id
    if boilerplate == "B1":
        return Existence(p=event_name(slots["action"])), Globally()
    if boilerplate == "B2":
        return TimedResponse(
            p=f"{event_name(slots['system'])}_request",
            s=event_name(slots["action"]),
            bound=bound_in_seconds(slots["number"], slots["unit"]),
        ), Globally()
    if boilerplate == "B3":
        return Response(
            p=event_name(slots["condition"]),
            s=event_name(slots["action"]),
        ), Globally()
    if boilerplate == "B4":
        return TimedResponse(
            p=event_name(slots["condition"]),
            s=event_name(slots["action"]),
            bound=bound_in_seconds(slots["number"], slots["unit"]),
        ), Globally()
    if boilerplate == "B5":
        return Absence(p=event_name(slots["action"])), Globally()
    if boilerplate == "B6":
        condition = event_name(slots["condition"])
        return Universality(p=event_name(slots["action"])), AfterQUntilR(
            q=condition, r=f"not_{condition}")
    raise ValueError(f"unknown boilerplate {boilerplate!r}")
