"""Ontology: the controlled vocabulary behind RESA slots.

Each boilerplate slot draws from a category of terms; validation flags
slot fillers outside the ontology so requirements stay within the
reviewed vocabulary ("renders natural language terms ... which gives
readability of requirements specification").
"""

from typing import Dict, Iterable, List, Set


class Ontology:
    """Category -> term set, with case-insensitive membership."""

    def __init__(self, terms: Dict[str, Iterable[str]] = None):
        self._terms: Dict[str, Set[str]] = {}
        if terms:
            for category, values in terms.items():
                self._terms[category] = {v.lower() for v in values}

    def categories(self) -> List[str]:
        return sorted(self._terms)

    def terms(self, category: str) -> List[str]:
        return sorted(self._terms.get(category, ()))

    def add(self, category: str, term: str) -> None:
        self._terms.setdefault(category, set()).add(term.lower())

    def knows(self, category: str, term: str) -> bool:
        """Membership; multi-word fillers match when every content word
        or the full phrase is known."""
        vocabulary = self._terms.get(category)
        if vocabulary is None:
            return False
        lowered = term.lower().strip()
        if lowered in vocabulary:
            return True
        words = [w for w in lowered.split()
                 if w not in _STOPWORDS and not w.isdigit()]
        return bool(words) and all(word in vocabulary for word in words)

    def extend(self, category: str, terms: Iterable[str]) -> None:
        for term in terms:
            self.add(category, term)


_STOPWORDS = {"the", "a", "an", "of", "to", "for", "with", "all", "any",
              "every", "its", "be", "is", "are"}


def default_ontology() -> Ontology:
    """The bundled security-flavoured automotive ontology."""
    return Ontology({
        "system": (
            "authentication service", "access-control module",
            "audit subsystem", "session manager", "gateway",
            "update client", "key-management service", "brake controller",
            "engine controller", "door controller", "telematics unit",
            "intrusion-detection component", "logging pipeline",
            "configuration agent",
        ),
        "action": (
            "lock", "unlock", "record", "log", "encrypt", "decrypt",
            "reject", "accept", "terminate", "alert", "notify", "verify",
            "validate", "rotate", "enforce", "disable", "enable",
            "authenticate", "authorize", "revoke", "store", "transmit",
            "account", "credentials", "session", "sessions", "event",
            "events", "operation", "operations", "message", "messages",
            "key", "keys", "access", "request", "requests", "password",
            "passwords", "configuration", "baseline", "attempt",
            "attempts", "failed", "privileged", "idle", "operator",
            "audit", "trail", "stored", "approved", "algorithm",
            "security", "invalid", "certificate", "certificates",
        ),
        "condition": (
            "ignition", "on", "off", "failure", "failures", "detected",
            "occurs", "received", "exceeds", "threshold", "consecutive",
            "logon", "violation", "policy", "intrusion", "tamper", "occur",
            "vehicle", "moving", "stationary", "session", "idle",
            "attempt", "attempts", "invalid", "three", "repeated",
            "request", "unauthorized", "access",
        ),
        "unit": (
            "millisecond", "milliseconds", "ms", "second", "seconds",
            "minute", "minutes", "hour", "hours",
        ),
    })
