"""RESA — boilerplate-constrained requirements specification.

RESA "is focusing on requirements specification in constrained natural
language ... renders natural language terms (words, phrases), and
syntax ... [and] uses boilerplates to structure the construction of
requirements specification" (D2.7 §2.2.1).  Documents live at one of
the EAST-ADL abstraction levels, selected by file extension: ``.resa``
(generic), ``.vl`` (vehicle), ``.al`` (analysis), ``.dl`` (design).

* :mod:`repro.resa.ontology` — term store per slot category, with the
  bundled security/automotive ontology.
* :mod:`repro.resa.boilerplates` — the boilerplate grammar and the
  structured-requirement records it produces.
* :mod:`repro.resa.parser` — document parsing, level handling,
  ontology validation diagnostics.
* :mod:`repro.resa.export` — structured requirement -> specification
  pattern (the bridge into PROPAS formalization).
"""

from repro.resa.boilerplates import (
    BOILERPLATES,
    Boilerplate,
    BoilerplateMatchError,
    StructuredRequirement,
    match_boilerplate,
)
from repro.resa.ontology import Ontology, default_ontology
from repro.resa.parser import (
    Diagnostic,
    EastAdlLevel,
    ResaDocument,
    level_for_extension,
    parse_document,
)
from repro.resa.export import to_pattern

__all__ = [
    "BOILERPLATES",
    "Boilerplate",
    "BoilerplateMatchError",
    "Diagnostic",
    "EastAdlLevel",
    "Ontology",
    "ResaDocument",
    "StructuredRequirement",
    "default_ontology",
    "level_for_extension",
    "match_boilerplate",
    "parse_document",
    "to_pattern",
]
