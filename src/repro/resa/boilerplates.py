"""RESA boilerplates: the constrained-sentence grammar.

Each boilerplate is a sentence template with named slots; a requirement
statement must match exactly one boilerplate.  The bundled set covers
the shapes the VeriDevOps security requirements use:

====  ==========================================================
id    template
====  ==========================================================
B1    The <system> shall <action>.
B2    The <system> shall <action> within <number> <unit>.
B3    When <condition>, the <system> shall <action>.
B4    When <condition>, the <system> shall <action> within
      <number> <unit>.
B5    The <system> shall not <action>.
B6    While <condition>, the <system> shall <action>.
====  ==========================================================

Matching is most-specific-first (B4 before B3 before B1), so a timed
conditional never degrades into an untimed match.
"""

import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Boilerplate:
    """One sentence template.

    ``pattern`` is a compiled regex with named groups for each slot;
    ``slot_categories`` maps slot name -> ontology category checked by
    the validator (``number`` slots are unchecked).
    """

    boilerplate_id: str
    description: str
    pattern: "re.Pattern"
    slot_categories: Dict[str, str]


@dataclass
class StructuredRequirement:
    """A statement decomposed against its boilerplate."""

    req_id: str
    text: str
    boilerplate_id: str
    slots: Dict[str, str] = field(default_factory=dict)

    def slot(self, name: str) -> Optional[str]:
        return self.slots.get(name)


class BoilerplateMatchError(ValueError):
    """The statement matches no boilerplate in the catalogue."""

    def __init__(self, text: str):
        super().__init__(
            f"statement matches no RESA boilerplate: {text!r}")
        self.text = text


def _compile(template: str) -> "re.Pattern":
    return re.compile(template, re.IGNORECASE)


BOILERPLATES: Tuple[Boilerplate, ...] = (
    Boilerplate(
        "B4",
        "When <condition>, the <system> shall <action> within "
        "<number> <unit>.",
        _compile(
            r"^When (?P<condition>.+?), the (?P<system>.+?) shall "
            r"(?P<action>.+?) within (?P<number>\d+(?:\.\d+)?) "
            r"(?P<unit>\w+)\.$"
        ),
        {"condition": "condition", "system": "system",
         "action": "action", "unit": "unit"},
    ),
    Boilerplate(
        "B3",
        "When <condition>, the <system> shall <action>.",
        _compile(
            r"^When (?P<condition>.+?), the (?P<system>.+?) shall "
            r"(?P<action>.+?)\.$"
        ),
        {"condition": "condition", "system": "system", "action": "action"},
    ),
    Boilerplate(
        "B6",
        "While <condition>, the <system> shall <action>.",
        _compile(
            r"^While (?P<condition>.+?), the (?P<system>.+?) shall "
            r"(?P<action>.+?)\.$"
        ),
        {"condition": "condition", "system": "system", "action": "action"},
    ),
    Boilerplate(
        "B2",
        "The <system> shall <action> within <number> <unit>.",
        _compile(
            r"^The (?P<system>.+?) shall (?P<action>.+?) within "
            r"(?P<number>\d+(?:\.\d+)?) (?P<unit>\w+)\.$"
        ),
        {"system": "system", "action": "action", "unit": "unit"},
    ),
    Boilerplate(
        "B5",
        "The <system> shall not <action>.",
        _compile(
            r"^The (?P<system>.+?) shall not (?P<action>.+?)\.$"
        ),
        {"system": "system", "action": "action"},
    ),
    Boilerplate(
        "B1",
        "The <system> shall <action>.",
        _compile(
            r"^The (?P<system>.+?) shall (?P<action>.+?)\.$"
        ),
        {"system": "system", "action": "action"},
    ),
)


def match_boilerplate(req_id: str, text: str) -> StructuredRequirement:
    """Match *text* against the catalogue (most specific first)."""
    stripped = " ".join(text.split())
    for boilerplate in BOILERPLATES:
        match = boilerplate.pattern.match(stripped)
        if match is None:
            continue
        slots = {name: value.strip()
                 for name, value in match.groupdict().items()}
        return StructuredRequirement(
            req_id=req_id,
            text=stripped,
            boilerplate_id=boilerplate.boilerplate_id,
            slots=slots,
        )
    raise BoilerplateMatchError(stripped)


def boilerplate_by_id(boilerplate_id: str) -> Boilerplate:
    for boilerplate in BOILERPLATES:
        if boilerplate.boilerplate_id == boilerplate_id:
            return boilerplate
    raise KeyError(f"unknown boilerplate: {boilerplate_id!r}")
