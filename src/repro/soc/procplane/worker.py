"""Worker-process entry point: one shard's monitor bank, shared-nothing.

A worker process owns everything its shard needs and nothing else: the
monitor banks of the hosts placed on it (rebuilt locally from the
manifest — formula *text* is the wire format, interning re-canonicalizes
on parse), the routing index, the seen-sets, and local counters.  The
only shared state is the two rings: ingress in, merge out.

Degradation contract (mirrors :class:`~repro.soc.workers.ShardWorker`):

* **No event is lost to a worker failure.**  The ingress head advances
  only after a record is terminally handled (processed, struck-and-
  redelivered, or dead-lettered), so a crashed worker's replacement
  resumes at exactly the record its predecessor died on.  Delivery is
  therefore at-least-once across crashes; per-host order is the ring's
  FIFO order throughout.
* **Poison events quarantine instead of wedging the shard.**  Strike
  counts are *published to the parent* (STRIKE records) before the
  worker dies and handed back in the replacement's manifest, so a
  crash loop terminates at ``max_deliveries`` exactly like the thread
  backend's shard-owned :class:`~repro.soc.quarantine.Quarantine`.
* **Session failures stay inside the worker**: a monitor bank that
  raises on an event (genuine or injected) rolls back that event's
  obligation updates, strikes the event, and retries it in place —
  the process survives, and the budget bounds the retries.

Chaos: the fault plan travels to the worker as JSON and a local
:class:`~repro.chaos.controller.ChaosController` is rebuilt from it.
Decisions are pure in ``(seed, site, key)`` with keys built from
``host:time:strikes`` — all of which cross the codec intact — so a
process-backend run draws byte-identical worker faults to a thread
run of the same plan.
"""

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.environment.events import Event
from repro.ltl.compile import (
    CompiledMonitor,
    empty_step_stable,
    obligation_id,
    parse_formula_text,
)
from repro.ltl.monitor import Verdict
from repro.soc.procplane.codec import (
    EventCodec,
    MergeCodec,
    REASON_CODES,
    Tag,
)
from repro.soc.procplane.rings import SpscRing

#: Exit codes the supervisor distinguishes.
EXIT_CLEAN = 0
EXIT_CRASH = 3


@dataclass
class WorkerSpec:
    """Everything a worker process needs, as plain picklable data."""

    index: int
    generation: int
    ingress_name: str
    merge_name: str
    capacity: int
    merge_capacity: int
    slot: int
    atoms: List[str]
    #: host_id -> host name (only this shard's hosts).
    hosts: Dict[int, str]
    #: (monitor_id, host_id, req_id, formula_text), sorted by
    #: (host_id, req_id) — the order sessions step monitors in.
    monitors: List[Tuple[int, int, str, str]]
    max_deliveries: int = 3
    batch: int = 64
    #: Strike ledger carried over from dead predecessors:
    #: (host_id, time, kind_id) -> strikes.
    strikes: List[Tuple[int, int, int, int]] = field(default_factory=list)
    chaos_plan_json: Optional[str] = None
    #: Seen-sets are only paid for when ingress can duplicate (chaos).
    track_seen: bool = False
    #: Vocabulary capacity the slots were sized for (>= len(atoms));
    #: the worker's codec must compute the same word count as the
    #: parent's or slot layouts disagree.
    reserve_atoms: int = 0
    #: Highest re-arm generation already folded into this manifest.
    #: A replayed REARM record at or below it is skipped: the
    #: replacement worker's banks already contain that delta.
    rearm_generation: int = 0


class HostBank:
    """One host's monitors with the session's sound selective routing.

    The routing index mirrors :class:`~repro.soc.sessions.MonitorSession`
    exactly (same skippability criterion, same sorted stepping order),
    so thread and process backends produce identical detection
    sequences for identical ingress.
    """

    __slots__ = ("host_id", "monitors", "order", "_watch", "_always",
                 "_route_memo", "seen", "events_seen", "stepped")

    def __init__(self, host_id: int,
                 monitors: List[Tuple[int, str, CompiledMonitor]]):
        self.host_id = host_id
        #: monitor_id -> (req_id, monitor)
        self.monitors: Dict[int, Tuple[str, CompiledMonitor]] = {
            mon_id: (req_id, monitor)
            for mon_id, req_id, monitor in monitors}
        #: req_id sort order decides stepping order (as sessions do).
        self.order: Dict[int, str] = {mon_id: req_id
                                      for mon_id, req_id, _ in monitors}
        self._watch: Dict[str, Set[int]] = {}
        self._always: Set[int] = set()
        #: bits -> tuple of monitor ids to step, invalidated whenever
        #: any obligation reclassifies.  Benign traffic resolves its
        #: routing in one dict probe.
        self._route_memo: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        self.seen: Set[int] = set()
        self.events_seen = 0
        self.stepped = 0
        for mon_id in self.monitors:
            self._classify(mon_id)

    def _classify(self, mon_id: int) -> None:
        obligation = self.monitors[mon_id][1].obligation
        self._always.discard(mon_id)
        for watchers in self._watch.values():
            watchers.discard(mon_id)
        if empty_step_stable(obligation):
            for atom in obligation.atoms():
                self._watch.setdefault(atom, set()).add(mon_id)
        else:
            self._always.add(mon_id)
        self._route_memo.clear()

    def patch(self, add: List[Tuple[int, str, CompiledMonitor]],
              remove: List[int]) -> None:
        """Apply one re-arm delta in stream order (between two events).

        Removed monitors leave every index; added monitors enter fresh.
        Untouched monitors keep their obligation state — that is the
        whole point of live re-arming.
        """
        for mon_id in remove:
            if self.monitors.pop(mon_id, None) is None:
                continue
            self.order.pop(mon_id, None)
            self._always.discard(mon_id)
            for watchers in self._watch.values():
                watchers.discard(mon_id)
        self._route_memo.clear()
        for mon_id, req_id, monitor in add:
            self.monitors[mon_id] = (req_id, monitor)
            self.order[mon_id] = req_id
            self._classify(mon_id)

    def route(self, bits: Tuple[int, ...],
              step: FrozenSet[str]) -> Tuple[int, ...]:
        relevant = self._route_memo.get(bits)
        if relevant is None:
            ids = set(self._always)
            for atom in step:
                ids.update(self._watch.get(atom, ()))
            relevant = tuple(sorted(ids, key=self.order.__getitem__))
            self._route_memo[bits] = relevant
        return relevant


# Seen-set pruning mirrors MonitorSession's constants.
_SEEN_LIMIT = 4096
_SEEN_KEEP = 1024


def build_banks(spec: WorkerSpec) -> Dict[int, HostBank]:
    """Rebuild this shard's monitor banks from the manifest."""
    per_host: Dict[int, List[Tuple[int, str, CompiledMonitor]]] = {
        host_id: [] for host_id in spec.hosts}
    for mon_id, host_id, req_id, text in spec.monitors:
        per_host[host_id].append(
            (mon_id, req_id, CompiledMonitor(parse_formula_text(text))))
    return {host_id: HostBank(host_id, monitors)
            for host_id, monitors in per_host.items()}


def worker_main(spec: WorkerSpec) -> None:
    """Drain the ingress ring until STOP; publish onto the merge ring."""
    ingress = SpscRing(spec.capacity, spec.slot, name=spec.ingress_name)
    merge = SpscRing(spec.merge_capacity, spec.slot, name=spec.merge_name)
    ingress.sync_consumer()
    merge.sync_producer()
    codec = EventCodec(spec.atoms, reserve=spec.reserve_atoms)
    banks = build_banks(spec)
    strikes: Dict[Tuple[int, int, int], int] = {
        (host_id, time_, kind_id): count
        for host_id, time_, kind_id, count in spec.strikes}
    chaos = None
    if spec.chaos_plan_json is not None:
        from repro.chaos.controller import ChaosController
        from repro.chaos.plan import FaultPlan
        chaos = ChaosController(FaultPlan.from_json(spec.chaos_plan_json))
    host_names = spec.hosts
    max_deliveries = spec.max_deliveries
    track_seen = spec.track_seen or chaos is not None
    parent = os.getppid()

    # Local counter deltas, flushed as one PROGRESS record per batch.
    processed = stepped = duplicates = session_errors = 0

    def flush_progress():
        nonlocal processed, stepped, duplicates, session_errors
        if not (processed or stepped or duplicates or session_errors):
            return
        p, s, d, e = processed, stepped, duplicates, session_errors
        merge.push_blocking(
            lambda buf, off: MergeCodec.pack_progress(buf, off, p, s, d, e))
        processed = stepped = duplicates = session_errors = 0

    def observe(bank: HostBank, bits, step, host_id, kind_id, etime):
        """Step one event through one bank, transactionally.

        Returns the number of monitor steps performed; detections are
        published inline.  On an exception every advanced obligation is
        rolled back before re-raising (the retry must not double-step).
        """
        undo = []
        steps = 0
        try:
            for mon_id in bank.route(bits, step):
                req_id, monitor = bank.monitors[mon_id]
                before = monitor.obligation
                undo.append((mon_id, monitor, before,
                             monitor.steps_observed))
                verdict = monitor.observe(step)
                steps += 1
                if verdict is Verdict.FALSE:
                    merge.push_blocking(
                        lambda buf, off, m=mon_id:
                        MergeCodec.pack_detection(buf, off, host_id, m,
                                                  kind_id, etime))
                    monitor.reset()
                if monitor.obligation is not before:
                    bank._classify(mon_id)
        except Exception:
            for mon_id, monitor, obligation, count in reversed(undo):
                monitor.obligation = obligation
                monitor.steps_observed = count
                bank._classify(mon_id)
            raise
        return steps

    # Hot-path locals: the batch loop below runs once per event, and
    # attribute lookups are a measurable fraction of per-event cost.
    ibuf = ingress.buf
    poll = ingress.poll
    peek = ingress.peek_offset
    advance = ingress.advance_local
    commit = ingress.commit_head
    unpack = codec.unpack_event
    step_memo = codec._step_memo
    unproject = codec.unproject
    batch_cap = spec.batch
    sleep = time.sleep
    EVENT = int(Tag.EVENT)
    REARM = int(Tag.REARM)

    # Live re-arm accumulation: chunks of one generation arrive
    # contiguously (single producer); the head is NOT committed while a
    # generation is partially accumulated, so a crash mid-delta replays
    # the whole delta to the replacement instead of a torn tail.
    rearm_chunks: Dict[int, List[Optional[bytes]]] = {}
    rearm_pending = False
    rearm_done = spec.rearm_generation

    # Idle strategy for oversubscribed cores: an empty poll sleeps
    # *immediately* with exponential backoff instead of busy-spinning —
    # with shards > cores, N-1 workers are idle at any instant and
    # every spin they burn is stolen from the producer.
    idle_spins = 0
    idle_sleep = 0.0002
    while True:
        available = poll()
        if not available:
            flush_progress()
            idle_spins += 1
            # Orphan guard: a parent that died without STOP would leave
            # us sleeping forever on a dead ring.
            if idle_spins % 256 == 0 and os.getppid() != parent:
                break
            sleep(idle_sleep)
            if idle_sleep < 0.004:
                idle_sleep *= 2
            continue
        idle_spins = 0
        idle_sleep = 0.0002
        # No low-depth batch cap here (contrast ShardWorker.LOW_WATER):
        # worker processes don't share a GIL, so a long batch never
        # starves another shard, and every extra wake costs a context
        # switch — take everything available.
        take = available if available < batch_cap else batch_cap
        stopping = False
        for _ in range(take):
            offset = peek()
            tag = ibuf[offset]
            if tag == EVENT:
                host_id, kind_id, etime, bits = unpack(ibuf, offset)
                bank = banks[host_id]
                if track_seen:
                    if etime in bank.seen:
                        duplicates += 1
                        processed += 1
                        advance()
                        continue
                if strikes:
                    strike_key = (host_id, etime, kind_id)
                    strike_count = strikes.get(strike_key, 0)
                else:
                    strike_key = None
                    strike_count = 0
                if strike_count >= max_deliveries:
                    merge.push_blocking(
                        lambda buf, off: MergeCodec.pack_strike(
                            buf, off, Tag.DEAD_LETTER, host_id, kind_id,
                            strike_count, etime,
                            REASON_CODES["delivery budget exhausted"]))
                    strikes.pop(strike_key, None)
                    processed += 1
                    advance()
                    continue
                fault = None
                if chaos is not None:
                    fault = chaos.worker_fault(
                        host_names[host_id],
                        Event(time=etime, kind=""), strike_count)
                if fault is not None and fault.value == "hang":
                    chaos.hang()
                if fault is not None and fault.value == "crash":
                    # Publish the strike so it survives us, then die
                    # without advancing the head: the replacement
                    # redelivers this very record with the strike
                    # visible in its manifest.
                    strike_count += 1
                    parked = strike_count >= max_deliveries
                    merge.push_blocking(
                        lambda buf, off: MergeCodec.pack_strike(
                            buf, off,
                            Tag.DEAD_LETTER if parked else Tag.STRIKE,
                            host_id, kind_id, strike_count, etime,
                            REASON_CODES["worker crash loop"]))
                    if parked:
                        processed += 1
                        advance()
                    flush_progress()
                    if not rearm_pending:
                        commit()
                    os._exit(EXIT_CRASH)
                step = step_memo.get(bits)
                if step is None:
                    step = unproject(bits)
                bank.events_seen += 1
                try:
                    if fault is not None and fault.value == "session-error":
                        from repro.chaos.controller import \
                            InjectedSessionError
                        raise InjectedSessionError(
                            f"{host_names[host_id]}@{etime}")
                    stepped += observe(bank, bits, step, host_id,
                                       kind_id, etime)
                except Exception:
                    session_errors += 1
                    strike_count += 1
                    parked = strike_count >= max_deliveries
                    merge.push_blocking(
                        lambda buf, off: MergeCodec.pack_strike(
                            buf, off,
                            Tag.DEAD_LETTER if parked else Tag.STRIKE,
                            host_id, kind_id, strike_count, etime,
                            REASON_CODES["session error"]))
                    if parked:
                        strikes.pop(strike_key, None)
                        processed += 1
                        advance()
                    else:
                        # Retry in place on redelivery: leave the head
                        # where it is and come back to this record.
                        strikes[strike_key] = strike_count
                        break
                    continue
                if strike_count:
                    strikes.pop(strike_key, None)
                if track_seen:
                    bank.seen.add(etime)
                    if len(bank.seen) > _SEEN_LIMIT:
                        horizon = max(bank.seen) - _SEEN_KEEP
                        bank.seen = {t for t in bank.seen if t >= horizon}
                processed += 1
                advance()
            elif tag == REARM:
                generation, seq, total, payload = \
                    MergeCodec.unpack_rearm_chunk(ibuf, offset)
                advance()
                if generation <= rearm_done:
                    # Replay of a delta already folded into this
                    # worker's manifest (crash after echo): skip.
                    continue
                chunks = rearm_chunks.setdefault(generation,
                                                 [None] * max(1, total))
                chunks[seq] = payload
                rearm_pending = any(part is None for part in chunks)
                if rearm_pending:
                    continue
                delta = json.loads(b"".join(chunks).decode("utf-8"))
                del rearm_chunks[generation]
                if delta.get("atoms"):
                    # Append-only: assigned bits never move, so
                    # in-flight events decode unchanged.
                    codec.extend(delta["atoms"])
                for host_id, adds, removes in delta.get("hosts", ()):
                    bank = banks.get(host_id)
                    if bank is None:
                        continue
                    bank.patch(
                        [(mon_id, req_id,
                          CompiledMonitor(parse_formula_text(text)))
                         for mon_id, req_id, text in adds],
                        removes)
                rearm_done = generation
                flush_progress()
                # Echo before committing the head: if we die between
                # the two, the parent has folded the delta into the
                # replacement's manifest AND the ring replays the
                # REARM records, which the replacement skips by
                # generation — the delta is never lost.
                merge.push_blocking(
                    lambda buf, off, g=generation:
                    MergeCodec.pack_rearmed(buf, off, g))
                commit()
            elif tag == Tag.FLUSH:
                token = MergeCodec.unpack_flushed(ibuf, offset)
                flush_progress()
                # The barrier echo implies everything before it is
                # terminally handled — publish the head first.
                if not rearm_pending:
                    commit()
                merge.push_blocking(
                    lambda buf, off: MergeCodec.pack_flushed(buf, off,
                                                             token))
                advance()
            elif tag == Tag.STOP:
                stopping = True
                advance()
                break
            else:                          # unknown tag: drop defensively
                advance()
        flush_progress()
        # One shared-memory head publish per batch, not per record.
        # Deliberate exits (crash fault, STOP) commit before leaving, so
        # at-least-once redelivery only coarsens for hard kills.  While
        # a re-arm delta is partially accumulated the head is held back,
        # so a crash replays the delta whole.
        if not rearm_pending:
            commit()
        if stopping:
            break

    # Finalize: publish every monitor's terminal state for the
    # equivalence surface, then sign off.
    for bank in banks.values():
        for mon_id in sorted(bank.monitors, key=bank.order.__getitem__):
            _req_id, monitor = bank.monitors[mon_id]
            digest = obligation_id(monitor.obligation)
            verdict = monitor.verdict.value
            merge.push_blocking(
                lambda buf, off, m=mon_id, v=verdict, d=digest:
                MergeCodec.pack_verdict(buf, off, m, v, d))
    merge.push_blocking(lambda buf, off: MergeCodec.pack_bye(buf, off))
    ingress.detach()
    merge.detach()
