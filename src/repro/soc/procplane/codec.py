"""Fixed-width binary codec for the SOC's cross-process event plane.

The compiled-LTL engine steps a monitor on ``step & obligation.atoms()``
— only atoms that occur in some armed formula can ever matter.  The
codec exploits that: the parent enumerates the fleet's **atom
vocabulary** once (union of every armed formula's atoms, sorted), gives
each atom a bit, and an event crossing the process boundary is just

    host id (u32) · kind id (u32) · logical time (u64) · atom bits (u64 x W)

where ``W = ceil(len(vocabulary) / 64)`` words cover the vocabulary.
Everything else about the event (its kind string, its payload) stays in
the parent; workers never need it — kind ids are echoed back opaquely
on detection records so the parent can stamp incidents.

Both planes use one fixed slot size so a ring is an array of equal
cells:

* **ingress** records (parent -> worker): tagged EVENT / FLUSH / STOP;
* **merge** records (worker -> parent): DETECTION / PROGRESS / STRIKE /
  DEAD_LETTER / VERDICT / FLUSHED / BYE.

All integers are little-endian.  Encoding is symmetric and total: every
record a producer can emit, the consumer can decode — property-tested
for round-trip identity in ``tests/test_soc_procplane.py``.
"""

import enum
import struct
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple


class Tag(enum.IntEnum):
    """First byte of every slot on either plane."""

    # ingress plane (parent -> worker)
    EVENT = 1
    FLUSH = 2          # barrier probe: echo the token back when reached
    STOP = 3           # finalize: emit VERDICT records, then BYE, then exit
    REARM = 4          # manifest-delta chunk (live re-arm, JSON payload)

    # merge plane (worker -> parent)
    DETECTION = 16     # one monitor went FALSE on one event
    PROGRESS = 17      # per-batch counter deltas
    STRIKE = 18        # poison bookkeeping that must survive a restart
    DEAD_LETTER = 19   # delivery budget exhausted; parent parks it
    VERDICT = 20       # final monitor state (on STOP)
    FLUSHED = 21       # barrier echo
    BYE = 22           # clean worker exit
    REARMED = 23       # re-arm generation applied (echo)


# Ingress EVENT: tag, host_id, kind_id, time  (+ atom-bit words appended).
_EVENT_HEAD = struct.Struct("<BIIQ")
# FLUSH / FLUSHED: tag, token.
_FLUSH = struct.Struct("<BQ")
# DETECTION: tag, host_id, monitor_id, kind_id, time.
_DETECTION = struct.Struct("<BIIIQ")
# PROGRESS: tag, processed, stepped, duplicates, session_errors.
_PROGRESS = struct.Struct("<BQQQQ")
# STRIKE / DEAD_LETTER: tag, host_id, kind_id, strikes, time, reason.
_STRIKE = struct.Struct("<BIIIQB")
# VERDICT: tag, monitor_id, verdict code (+ 16-byte obligation id).
_VERDICT = struct.Struct("<BIB")
# STOP / BYE: tag, code.
_CODE = struct.Struct("<BB")
# REARM chunk header: tag, generation, seq, total, payload length
# (payload bytes follow inside the same slot).
_REARM = struct.Struct("<BIIIH")

#: Dead-letter reason codes (mirror the thread backend's reason strings).
REASONS = (
    "delivery budget exhausted",
    "worker crash loop",
    "session error",
    "hang while deposed",
)
REASON_CODES = {reason: code for code, reason in enumerate(REASONS)}

_VERDICT_CODES = {"TRUE": 0, "FALSE": 1, "INCONCLUSIVE": 2}
_VERDICT_NAMES = {code: name for name, code in _VERDICT_CODES.items()}


def slot_size(words: int) -> int:
    """One slot fits the largest record of either plane.

    EVENT needs ``17 + 8 * words``; VERDICT needs 22 (6 + 16-byte
    obligation id); DETECTION and PROGRESS stay under EVENT for any
    ``words >= 1``.  Rounded up to an 8-byte multiple so slots stay
    aligned in the ring.
    """
    need = max(_EVENT_HEAD.size + 8 * words,
               _VERDICT.size + 16,
               _PROGRESS.size,
               _STRIKE.size)
    return (need + 7) & ~7


class EventCodec:
    """Encode/decode ingress-plane records against one atom vocabulary.

    Built once per service from the fleet's armed formulas; the worker
    side is rebuilt in each process from the manifest's atom list, so
    bit assignments agree by construction (the list *is* the wire
    order).
    """

    def __init__(self, atoms: Sequence[str], reserve: int = 0):
        self.atoms: List[str] = list(atoms)
        if len(set(self.atoms)) != len(self.atoms):
            raise ValueError("duplicate atoms in vocabulary")
        self.bit: Dict[str, int] = {atom: index
                                    for index, atom in enumerate(self.atoms)}
        # ``reserve`` sizes the bit words for a vocabulary that may
        # *grow* (live re-arming adds formulas with new atoms): slots
        # are fixed at ring creation, so spare bits must be provisioned
        # up front.  :meth:`extend` appends within this capacity.
        self.words = max(1, (max(len(self.atoms), reserve) + 63) // 64)
        self.slot = slot_size(self.words)
        self._word_struct = struct.Struct("<" + "Q" * self.words)
        # One struct for the whole EVENT record: a single pack/unpack
        # call per event on both sides of the plane.
        self._event_struct = struct.Struct("<BIIQ" + "Q" * self.words)
        #: step frozenset -> packed bit words, memoized (event kinds are
        #: a small closed vocabulary, so this hits ~always).
        self._bits_memo: Dict[FrozenSet[str], Tuple[int, ...]] = {}
        #: packed bit words -> step frozenset (worker-side memo).
        self._step_memo: Dict[Tuple[int, ...], FrozenSet[str]] = {}

    @classmethod
    def for_formulas(cls, formulas: Iterable, spare: int = 0) -> "EventCodec":
        """Codec over the formulas' atom union, with *spare* extra
        atom slots of growth headroom for live re-arming."""
        atoms = set()
        for formula in formulas:
            atoms |= formula.atoms()
        return cls(sorted(atoms), reserve=len(atoms) + spare)

    @property
    def capacity(self) -> int:
        """How many atoms the provisioned bit words can carry."""
        return self.words * 64

    def extend(self, new_atoms: Sequence[str]) -> List[str]:
        """Append atoms to the vocabulary, preserving existing bits.

        Appending never moves an assigned bit, so records packed
        against the old vocabulary decode identically — worker-side
        ``_step_memo`` entries stay valid (old bit patterns cannot have
        new-atom bits set).  The parent-side ``_bits_memo`` *is*
        cleared: a step containing a newly-vocabularized atom must
        re-project to pick up its bit.  Raises ``ValueError`` past the
        provisioned capacity (callers fall back to a full restart).
        Returns the atoms actually appended.
        """
        appended = [atom for atom in dict.fromkeys(new_atoms)
                    if atom not in self.bit]
        if not appended:
            return []
        if len(self.atoms) + len(appended) > self.capacity:
            raise ValueError(
                f"atom vocabulary overflow: {len(self.atoms)} armed + "
                f"{len(appended)} new > capacity {self.capacity}")
        for atom in appended:
            self.bit[atom] = len(self.atoms)
            self.atoms.append(atom)
        self._bits_memo.clear()
        return appended

    # -- step <-> bits ------------------------------------------------------

    def project(self, step: FrozenSet[str]) -> Tuple[int, ...]:
        """The step's vocabulary projection as packed bit words."""
        bits = self._bits_memo.get(step)
        if bits is None:
            words = [0] * self.words
            bit = self.bit
            for atom in step:
                index = bit.get(atom)
                if index is not None:
                    words[index >> 6] |= 1 << (index & 63)
            bits = self._bits_memo.setdefault(step, tuple(words))
        return bits

    def unproject(self, bits: Tuple[int, ...]) -> FrozenSet[str]:
        """Packed bit words back to the projected step."""
        step = self._step_memo.get(bits)
        if step is None:
            atoms = []
            for word_index, word in enumerate(bits):
                base = word_index << 6
                while word:
                    low = word & -word
                    atoms.append(self.atoms[base + low.bit_length() - 1])
                    word ^= low
            step = self._step_memo.setdefault(bits, frozenset(atoms))
        return step

    # -- records ------------------------------------------------------------

    def pack_event(self, buffer, offset: int, host_id: int, kind_id: int,
                   time: int, bits: Tuple[int, ...]) -> None:
        self._event_struct.pack_into(buffer, offset, Tag.EVENT, host_id,
                                     kind_id, time, *bits)

    def unpack_event(self, buffer, offset: int):
        record = self._event_struct.unpack_from(buffer, offset)
        return record[1], record[2], record[3], record[4:]


class MergeCodec:
    """Encode/decode both planes' control and merge records.

    Stateless (no vocabulary): everything here is fixed-layout.  Kept
    separate from :class:`EventCodec` so the merge loop and the worker
    share one tiny, obviously-symmetric codec object.
    """

    # -- control (ingress plane) --------------------------------------------

    @staticmethod
    def pack_flush(buffer, offset: int, token: int) -> None:
        _FLUSH.pack_into(buffer, offset, Tag.FLUSH, token)

    @staticmethod
    def pack_stop(buffer, offset: int) -> None:
        _CODE.pack_into(buffer, offset, Tag.STOP, 0)

    @staticmethod
    def rearm_payload_capacity(slot: int) -> int:
        """Payload bytes one REARM chunk slot can carry."""
        return slot - _REARM.size

    @staticmethod
    def pack_rearm_chunk(buffer, offset: int, generation: int, seq: int,
                         total: int, payload: bytes) -> None:
        _REARM.pack_into(buffer, offset, Tag.REARM, generation, seq,
                         total, len(payload))
        start = offset + _REARM.size
        buffer[start:start + len(payload)] = payload

    @staticmethod
    def unpack_rearm_chunk(buffer, offset: int):
        _, generation, seq, total, length = _REARM.unpack_from(buffer,
                                                               offset)
        start = offset + _REARM.size
        return generation, seq, total, bytes(buffer[start:start + length])

    # -- merge records ------------------------------------------------------

    @staticmethod
    def pack_detection(buffer, offset: int, host_id: int, monitor_id: int,
                       kind_id: int, time: int) -> None:
        _DETECTION.pack_into(buffer, offset, Tag.DETECTION, host_id,
                             monitor_id, kind_id, time)

    @staticmethod
    def unpack_detection(buffer, offset: int):
        _, host_id, monitor_id, kind_id, time = _DETECTION.unpack_from(
            buffer, offset)
        return host_id, monitor_id, kind_id, time

    @staticmethod
    def pack_progress(buffer, offset: int, processed: int, stepped: int,
                      duplicates: int, session_errors: int) -> None:
        _PROGRESS.pack_into(buffer, offset, Tag.PROGRESS, processed,
                            stepped, duplicates, session_errors)

    @staticmethod
    def unpack_progress(buffer, offset: int):
        return _PROGRESS.unpack_from(buffer, offset)[1:]

    @staticmethod
    def pack_strike(buffer, offset: int, tag: int, host_id: int,
                    kind_id: int, strikes: int, time: int,
                    reason_code: int) -> None:
        _STRIKE.pack_into(buffer, offset, tag, host_id, kind_id, strikes,
                          time, reason_code)

    @staticmethod
    def unpack_strike(buffer, offset: int):
        _, host_id, kind_id, strikes, time, reason = _STRIKE.unpack_from(
            buffer, offset)
        return host_id, kind_id, strikes, time, reason

    @staticmethod
    def pack_verdict(buffer, offset: int, monitor_id: int, verdict: str,
                     obligation_digest: bytes) -> None:
        _VERDICT.pack_into(buffer, offset, Tag.VERDICT, monitor_id,
                           _VERDICT_CODES[verdict])
        end = offset + _VERDICT.size
        buffer[end:end + 16] = obligation_digest

    @staticmethod
    def unpack_verdict(buffer, offset: int):
        _, monitor_id, code = _VERDICT.unpack_from(buffer, offset)
        end = offset + _VERDICT.size
        return monitor_id, _VERDICT_NAMES[code], bytes(buffer[end:end + 16])

    @staticmethod
    def pack_flushed(buffer, offset: int, token: int) -> None:
        _FLUSH.pack_into(buffer, offset, Tag.FLUSHED, token)

    @staticmethod
    def unpack_flushed(buffer, offset: int) -> int:
        return _FLUSH.unpack_from(buffer, offset)[1]

    @staticmethod
    def pack_bye(buffer, offset: int, code: int = 0) -> None:
        _CODE.pack_into(buffer, offset, Tag.BYE, code)

    @staticmethod
    def pack_rearmed(buffer, offset: int, generation: int) -> None:
        _FLUSH.pack_into(buffer, offset, Tag.REARMED, generation)

    @staticmethod
    def unpack_rearmed(buffer, offset: int) -> int:
        return _FLUSH.unpack_from(buffer, offset)[1]


def tag_of(buffer, offset: int) -> int:
    return buffer[offset]
