"""ProcessBackend: shard execution on worker processes.

The pluggable counterpart of the in-process thread path in
:class:`~repro.soc.service.SocService`.  Responsibilities:

* build the **manifest** once: host ids, the atom vocabulary, and the
  per-shard monitor lists (req id + canonical formula text + bindings)
  that worker processes rebuild their banks from;
* create one ingress and one merge :class:`SpscRing` per shard and
  spawn the workers (``fork`` start method where available — the
  manifest makes workers correct under ``spawn`` too, fork merely
  skips the interpreter warm-up);
* encode ingress events (:class:`EventCodec`) under the service's
  backpressure policy (``block`` and ``reject``; ``drop-oldest`` has
  no safe SPSC producer-side analogue and is refused up front);
* run the merge plane and the process supervisor: a worker that died
  is restarted with its predecessor's published strike ledger, so
  poison quarantine converges across restarts exactly like the thread
  backend's shard-owned quarantine;
* provide the flush barrier ``drain()`` (token echo through both
  rings — exact, and tolerant of workers dying mid-barrier) and the
  finalize path that collects every monitor's terminal verdict for
  the cross-backend equivalence surface.

Worker crashes make delivery at-least-once (a restarted bank has no
seen-set and redelivers the record its predecessor died on); repairs
are idempotent and the reconcile sweep stays the last rung, so the
degradation ladder carries over intact.
"""

import json
import multiprocessing
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.protection import event_step
from repro.ltl.compile import formula_text, obligation_id
from repro.soc.procplane.codec import EventCodec, MergeCodec
from repro.soc.procplane.merge import MergePlane
from repro.soc.procplane.rings import RingFull, SpscRing
from repro.soc.procplane.worker import EXIT_CRASH, WorkerSpec, worker_main
from repro.soc.queues import Backpressure, PutResult, QueueClosed

#: Default merge-ring capacity: detections are far sparser than events,
#: but verdict dumps at stop scale with monitors, so keep headroom.
MERGE_CAPACITY = 4096

#: Spare atom slots provisioned in the codec vocabulary for live
#: re-arming: slots are fixed at ring creation, so formulas added later
#: must fit in pre-reserved bit words (one extra word by default).
ATOM_HEADROOM = 64


def _start_method() -> str:
    preferred = os.environ.get("REPRO_SOC_MP_START")
    methods = multiprocessing.get_all_start_methods()
    if preferred:
        if preferred not in methods:
            raise ValueError(
                f"REPRO_SOC_MP_START={preferred!r} not available "
                f"(have: {methods})")
        return preferred
    return "fork" if "fork" in methods else "spawn"


class ProcessBackend:
    """Shard execution over worker processes + the binary event plane."""

    def __init__(self, service, queue_capacity: int,
                 policy: Backpressure,
                 max_deliveries: int = 3,
                 chaos_plan_json: Optional[str] = None,
                 supervisor_interval: float = 0.02,
                 merge_capacity: int = MERGE_CAPACITY):
        if policy is Backpressure.DROP_OLDEST:
            raise ValueError(
                "process backend supports backpressure policies "
                "'block' and 'reject'; drop-oldest would require the "
                "producer to evict from the consumer end of an SPSC "
                "ring (use the thread backend for drop-oldest)")
        self.service = service
        self.policy = policy
        self.capacity = queue_capacity
        self.merge_capacity = merge_capacity
        self.max_deliveries = max_deliveries
        self.chaos_plan_json = chaos_plan_json
        self.supervisor_interval = supervisor_interval
        self._ctx = multiprocessing.get_context(_start_method())

        # -- manifest -----------------------------------------------------
        self.host_names: List[str] = sorted(service.hosts)
        self._host_id: Dict[str, int] = {
            name: index for index, name in enumerate(self.host_names)}
        formulas = []
        self.monitor_host: List[str] = []
        self.monitor_req: List[str] = []
        self.monitor_bindings: List[List[str]] = []
        self.monitor_text: List[str] = []
        #: shard -> [(mon_id, host_id, req_id, formula_text)]
        self._shard_monitors: Dict[int, List[Tuple[int, int, str, str]]] = {
            index: [] for index in range(service.shards)}
        #: shard -> {host_id: host_name}
        self._shard_hosts: Dict[int, Dict[int, str]] = {
            index: {} for index in range(service.shards)}
        #: (host_name, req_id) -> live monitor id (re-arm bookkeeping).
        self._mon_id: Dict[Tuple[str, str], int] = {}
        for name in self.host_names:
            monitors, bindings = service.plans[name]
            shard = service._placement[name]
            host_id = self._host_id[name]
            self._shard_hosts[shard][host_id] = name
            for req_id in sorted(monitors):
                monitor = monitors[req_id]
                mon_id = len(self.monitor_req)
                self.monitor_host.append(name)
                self.monitor_req.append(req_id)
                self.monitor_bindings.append(
                    list(bindings.get(req_id, [])))
                text = formula_text(monitor.formula)
                self.monitor_text.append(text)
                formulas.append(monitor.formula)
                self._shard_monitors[shard].append(
                    (mon_id, host_id, req_id, text))
                self._mon_id[(name, req_id)] = mon_id
        self.codec = EventCodec.for_formulas(formulas, spare=ATOM_HEADROOM)

        # -- live re-arm state (see :meth:`rearm`) ------------------------
        #: shard -> generation -> (manifest add tuples, removed mon ids),
        #: folded into ``_shard_monitors`` when the worker echoes.
        self._pending_rearms: Dict[int, Dict[int,
                                             Tuple[list, list]]] = {}
        self._rearm_gen = [0] * service.shards
        self._rearm_counter = 0
        #: Guards the manifest arrays against the merge thread's fold;
        #: innermost lock — never held while taking ``_lock`` or a
        #: merge-ring lock.
        self._manifest_lock = threading.Lock()

        #: Open kind vocabulary, parent-side only (workers echo ids).
        self._kind_ids: Dict[str, int] = {}
        self.kind_names: List[str] = []
        self._kind_lock = threading.Lock()
        #: kind -> packed vocabulary bits (projection memo).
        self._kind_bits: Dict[str, Tuple[int, ...]] = {}

        self.ingress: List[SpscRing] = []
        self.merge_rings: List[SpscRing] = []
        self.processes: List[Optional[multiprocessing.process.BaseProcess]] \
            = [None] * service.shards
        self.generations = [0] * service.shards
        self.peaks = [0] * service.shards
        self.rejected = [0] * service.shards
        self.merge: Optional[MergePlane] = None
        self._flush_token = 0
        self._lock = threading.Lock()
        self._stopping = False
        self._started = False
        self._supervisor: Optional[threading.Thread] = None
        self._supervisor_stop = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        slot = self.codec.slot
        for _ in range(self.service.shards):
            self.ingress.append(
                SpscRing(self.capacity, slot, create=True))
            self.merge_rings.append(
                SpscRing(self.merge_capacity, slot, create=True))
        self.merge = MergePlane(
            self.service, self.merge_rings, self.host_names,
            self.kind_names, self.monitor_host, self.monitor_req,
            self.monitor_bindings)
        self.merge.on_rearmed = self._fold_rearm
        self.merge.start()
        for index in range(self.service.shards):
            self._spawn(index)
        self._supervisor = threading.Thread(
            target=self._supervise, name="soc-proc-supervisor", daemon=True)
        self._supervisor.start()
        self._started = True

    def _spec(self, index: int) -> WorkerSpec:
        state = self.merge.shards[index]
        with self._manifest_lock:
            atoms = list(self.codec.atoms)
            monitors = list(self._shard_monitors[index])
            rearm_generation = self._rearm_gen[index]
        return WorkerSpec(
            index=index,
            generation=self.generations[index],
            ingress_name=self.ingress[index].name,
            merge_name=self.merge_rings[index].name,
            capacity=self.capacity,
            merge_capacity=self.merge_capacity,
            slot=self.codec.slot,
            atoms=atoms,
            hosts=dict(self._shard_hosts[index]),
            monitors=monitors,
            max_deliveries=self.max_deliveries,
            strikes=[(h, t, k, n)
                     for (h, t, k), n in sorted(state.strikes.items())],
            chaos_plan_json=self.chaos_plan_json,
            reserve_atoms=self.codec.capacity,
            rearm_generation=rearm_generation,
        )

    def _spawn(self, index: int) -> None:
        process = self._ctx.Process(
            target=worker_main, args=(self._spec(index),),
            name=f"soc-proc-shard-{index}.g{self.generations[index]}",
            daemon=True)
        process.start()
        self.processes[index] = process

    # -- ingress ------------------------------------------------------------

    def _kind_id(self, kind: str) -> int:
        kind_id = self._kind_ids.get(kind)
        if kind_id is None:
            with self._kind_lock:
                kind_id = self._kind_ids.get(kind)
                if kind_id is None:
                    self.kind_names.append(kind)
                    kind_id = len(self.kind_names) - 1
                    self._kind_ids[kind] = kind_id
        return kind_id

    def putter(self, host_name: str) -> Callable:
        """A per-host enqueue closure (the ingress hot path).

        Resolves host id, shard, and ring once; per event the closure
        costs two memoized lookups (kind id, projected bits), one pack
        into shared memory, and a cursor publish.
        """
        host_id = self._host_id[host_name]
        shard = self.service._placement[host_name]
        ring = self.ingress[shard]
        codec = self.codec
        pack = codec.pack_event
        project = codec.project
        kind_bits = self._kind_bits
        kind_ids = self._kind_ids
        blocking = self.policy is Backpressure.BLOCK
        peaks = self.peaks

        def put(event) -> PutResult:
            kind = event.kind
            kind_id = kind_ids.get(kind)
            if kind_id is None:
                kind_id = self._kind_id(kind)
            bits = kind_bits.get(kind)
            if bits is None:
                bits = kind_bits.setdefault(kind,
                                            project(event_step(event)))
            while True:
                if ring.closed:
                    raise QueueClosed("put into closed ring")
                try:
                    offset = ring.reserve()
                    break
                except RingFull:
                    if not blocking:
                        self.rejected[shard] += 1
                        return PutResult.REJECTED
                    time.sleep(0.0002)
            pack(ring.buf, offset, host_id, kind_id, event.time, bits)
            ring.publish()
            depth = ring._cached_tail - ring._cached_head
            if depth > peaks[shard]:
                peaks[shard] = depth
            return PutResult.ACCEPTED

        return put

    # -- supervision --------------------------------------------------------

    def _supervise(self) -> None:
        while not self._supervisor_stop.wait(self.supervisor_interval):
            self.ensure_alive()

    def ensure_alive(self) -> int:
        """Restart dead workers (strike ledger carried over)."""
        restarted = 0
        with self._lock:
            if self._stopping or not self.service.accepts_restarts:
                return 0
            for index, process in enumerate(self.processes):
                if process is None or process.exitcode is None:
                    continue
                exitcode = process.exitcode
                # Fold the dead worker's final records (strikes, dead
                # letters, progress) before building the replacement's
                # manifest — the ledger is the restart contract.
                self.merge.pump(index, limit=1 << 30)
                process.join()
                metrics = self.service.metrics
                if exitcode == EXIT_CRASH:
                    metrics.counter("soc.worker.crashes").inc()
                metrics.counter("soc.worker.restarts").inc()
                self.generations[index] += 1
                self._spawn(index)
                restarted += 1
        return restarted

    # -- barriers and lifecycle --------------------------------------------

    def drain(self, timeout: float = 60.0) -> None:
        """Token flush barrier: every accepted event fully processed.

        Pushes a FLUSH token behind all accepted events on every
        ingress ring and waits for each worker's echo to come back
        through the merge plane — at which point every earlier record
        on every ring has been consumed *and* merged (both rings are
        FIFO).  Workers dying mid-barrier are restarted by the ticked
        :meth:`ensure_alive`; the unconsumed token survives in the
        ring, so the replacement echoes it.
        """
        with self._lock:
            self._flush_token += 1
            token = self._flush_token
        deadline = time.monotonic() + timeout
        for ring in self.ingress:
            if ring.closed:
                continue
            if not ring.push_blocking(
                    lambda buf, off: MergeCodec.pack_flush(buf, off, token),
                    deadline=deadline):
                raise TimeoutError("drain: ingress ring stayed full")
        ok = self.merge.wait(
            lambda: all(state.flushed_token >= token
                        for state in self.merge.shards),
            timeout=max(0.0, deadline - time.monotonic()),
            tick=self.ensure_alive)
        if not ok:
            raise TimeoutError("drain: flush token never echoed")
        self.merge.update_depth_gauges(self.ingress)

    # -- live re-arming -----------------------------------------------------

    def _fold_rearm(self, index: int, generation: int) -> None:
        """Fold an echoed delta into the restart manifest.

        Called from the merge pump the moment a worker acknowledges a
        generation: the worker committed its head *after* applying the
        delta, so from here on any replacement for this shard must be
        built with the delta included (and told to skip the replayed
        REARM records via ``rearm_generation``).
        """
        with self._manifest_lock:
            pending = self._pending_rearms.get(index, {}).pop(
                generation, None)
            if generation > self._rearm_gen[index]:
                self._rearm_gen[index] = generation
            if not pending:
                return
            added, removed = pending
            if removed:
                gone = set(removed)
                self._shard_monitors[index] = [
                    entry for entry in self._shard_monitors[index]
                    if entry[0] not in gone]
            self._shard_monitors[index].extend(added)

    def rearm(self, adds=(), removes=(), rebinds=(),
              timeout: float = 30.0) -> int:
        """Ship a manifest delta over the event plane — no restarts.

        * *adds*: ``(host_name, req_id, monitor, bindings)`` — arms a
          fresh monitor; an already-armed ``req_id`` on that host is
          replaced (its obligation state is dropped — that is what
          "the formula changed" means).
        * *removes*: ``(host_name, req_id)`` — disarms.
        * *rebinds*: ``(host_name, req_id, bindings)`` — enforcement
          bindings live parent-side (the merge plane resolves them per
          detection), so a bindings-only change never crosses the
          plane at all; the monitor keeps its obligation state.

        The delta rides the ingress rings as chunked REARM records, so
        application is totally ordered against in-flight events: no
        event is dropped or double-processed across the re-arm.  New
        formulas may introduce new atoms; they are appended to the
        codec vocabulary within the pre-reserved capacity (the append
        is broadcast to *every* shard so projections stay decodable
        fleet-wide) — past capacity, ``ValueError``: tear down and
        re-arm cold.  Like :meth:`drain`, this shares the producer
        side of the rings: callers must not race concurrent event
        emission from other threads.  Blocks until every affected
        worker acknowledges; returns the generation.
        """
        shard_ops: Dict[int, Dict[int, Tuple[list, list]]] = {}

        def ops_for(shard: int, host_id: int) -> Tuple[list, list]:
            return shard_ops.setdefault(shard, {}).setdefault(
                host_id, ([], []))

        with self._manifest_lock:
            self._rearm_counter += 1
            generation = self._rearm_counter
            new_atoms = set()
            for _host, _req, monitor, _bindings in adds:
                new_atoms |= monitor.formula.atoms()
            appended = self.codec.extend(sorted(new_atoms))
            if appended:
                with self._kind_lock:
                    self._kind_bits.clear()
            pend: Dict[int, Tuple[list, list]] = {}
            for host_name, req_id in removes:
                mon_id = self._mon_id.pop((host_name, req_id), None)
                if mon_id is None:
                    continue
                shard = self.service._placement[host_name]
                ops_for(shard, self._host_id[host_name])[1].append(mon_id)
                pend.setdefault(shard, ([], []))[1].append(mon_id)
            for host_name, req_id, monitor, bindings in adds:
                shard = self.service._placement[host_name]
                host_id = self._host_id[host_name]
                old_id = self._mon_id.pop((host_name, req_id), None)
                if old_id is not None:
                    ops_for(shard, host_id)[1].append(old_id)
                    pend.setdefault(shard, ([], []))[1].append(old_id)
                mon_id = len(self.monitor_req)
                self.monitor_host.append(host_name)
                self.monitor_req.append(req_id)
                self.monitor_bindings.append(list(bindings))
                text = formula_text(monitor.formula)
                self.monitor_text.append(text)
                self._mon_id[(host_name, req_id)] = mon_id
                ops_for(shard, host_id)[0].append((mon_id, req_id, text))
                pend.setdefault(shard, ([], []))[0].append(
                    (mon_id, host_id, req_id, text))
            for host_name, req_id, bindings in rebinds:
                mon_id = self._mon_id.get((host_name, req_id))
                if mon_id is not None:
                    self.monitor_bindings[mon_id] = list(bindings)
            # A vocabulary append must reach shards with no monitor
            # changes too: their workers still decode fleet-wide
            # projections.
            if appended:
                for shard in range(self.service.shards):
                    shard_ops.setdefault(shard, {})
            for shard in shard_ops:
                self._pending_rearms.setdefault(shard, {})[generation] = \
                    pend.get(shard, ([], []))

        affected = sorted(shard_ops)
        if not affected:
            return generation
        capacity = MergeCodec.rearm_payload_capacity(self.codec.slot)
        deadline = time.monotonic() + timeout
        for shard in affected:
            hosts_payload = [
                [host_id, host_adds, host_removes]
                for host_id, (host_adds, host_removes)
                in sorted(shard_ops[shard].items())]
            payload = json.dumps(
                {"atoms": appended, "hosts": hosts_payload},
                separators=(",", ":")).encode("utf-8")
            chunks = [payload[start:start + capacity]
                      for start in range(0, len(payload), capacity)]
            total = len(chunks)
            ring = self.ingress[shard]
            for seq, chunk in enumerate(chunks):
                if not ring.push_blocking(
                        lambda buf, off, s=seq, c=chunk:
                        MergeCodec.pack_rearm_chunk(buf, off, generation,
                                                    s, total, c),
                        deadline=deadline):
                    raise TimeoutError("rearm: ingress ring stayed full")
        ok = self.merge.wait(
            lambda: all(self.merge.shards[s].rearmed_gen >= generation
                        for s in affected),
            timeout=max(0.0, deadline - time.monotonic()),
            tick=self.ensure_alive)
        if not ok:
            raise TimeoutError("rearm: delta never acknowledged")
        return generation

    def stop(self, timeout: float = 30.0) -> None:
        """Finalize workers, collect verdicts, tear the plane down."""
        if not self._started or self._stopping:
            return
        # Give every shard a live worker for the finalize handshake.
        self.ensure_alive()
        with self._lock:
            self._stopping = True
        self._supervisor_stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        deadline = time.monotonic() + timeout
        for index, ring in enumerate(self.ingress):
            process = self.processes[index]
            if process is None or process.exitcode is not None:
                continue
            ring.push_blocking(
                lambda buf, off: MergeCodec.pack_stop(buf, off),
                deadline=deadline)
            ring.close_producer()
        self.merge.wait(
            lambda: all(
                state.bye or self.processes[state.index] is None
                or self.processes[state.index].exitcode is not None
                for state in self.merge.shards),
            timeout=max(0.0, deadline - time.monotonic()))
        for process in self.processes:
            if process is not None:
                process.join(timeout=max(0.0,
                                         deadline - time.monotonic()))
                if process.exitcode is None:
                    process.terminate()
                    process.join(timeout=2.0)
        # Late records (verdicts pushed just before BYE) may still sit
        # in the merge rings after the thread saw the BYE flag.
        for index in range(len(self.merge_rings)):
            self.merge.pump(index, limit=1 << 30)
        self.merge.stop()
        for ring in self.ingress + self.merge_rings:
            ring.destroy()

    # -- results ------------------------------------------------------------

    def queue_stats(self) -> List[Dict[str, object]]:
        stats = []
        for index, ring in enumerate(self.ingress):
            try:
                depth = ring.depth
            except (TypeError, ValueError):   # destroyed
                depth = 0
            stats.append({"shard": index, "depth": depth,
                          "peak_depth": self.peaks[index], "dropped": 0,
                          "rejected": self.rejected[index]})
        return stats

    def final_verdicts(self) -> Dict[Tuple[str, str], Tuple[str, str]]:
        """(host, req_id) -> (verdict, obligation id hex), post-stop."""
        verdicts: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for state in self.merge.shards:
            for mon_id, (verdict, digest) in state.verdicts.items():
                verdicts[(self.monitor_host[mon_id],
                          self.monitor_req[mon_id])] = (verdict, digest)
        return verdicts
