"""Parent-side merge loop: fold worker records into the SOC surfaces.

One thread drains every shard's merge ring and translates binary
records back into the service's existing vocabulary:

* DETECTION -> :meth:`IncidentPipeline.handle` (repairs run here, on
  the merge thread, with repair-echo suppression armed exactly as on
  a thread-backend shard worker) + the detection-lag histogram;
* PROGRESS -> ``soc.shard.N.processed`` and friends;
* STRIKE / DEAD_LETTER -> the parent's per-shard strike ledgers (the
  restart carryover) and the shared
  :class:`~repro.soc.quarantine.DeadLetterQueue`;
* FLUSHED / VERDICT / BYE -> barrier, equivalence, and lifecycle
  bookkeeping consumed by :class:`~repro.soc.procplane.backend.
  ProcessBackend`.

The merge thread is the *only* consumer of merge rings in steady
state; the backend's supervisor borrows the pump under a per-shard
lock when it must fold a dead worker's last records synchronously
before building the replacement's manifest.
"""

import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.environment.events import Event
from repro.soc.procplane.codec import MergeCodec, REASONS, Tag
from repro.soc.procplane.rings import SpscRing
from repro.soc.sessions import Detection


class ShardMergeState:
    """Per-shard merge bookkeeping (owned by the parent)."""

    def __init__(self, index: int):
        self.index = index
        self.flushed_token = 0
        self.rearmed_gen = 0
        self.bye = False
        #: (host_id, time, kind_id) -> strikes, for restart manifests.
        self.strikes: Dict[Tuple[int, int, int], int] = {}
        #: monitor_id -> (verdict, obligation id hex).
        self.verdicts: Dict[int, Tuple[str, str]] = {}


class MergePlane:
    """Drains merge rings; folds records into pipeline + metrics."""

    def __init__(self, service, rings: List[SpscRing],
                 host_names: List[str], kind_names: List[str],
                 monitor_host: List[str], monitor_req: List[str],
                 monitor_bindings: List[List[str]]):
        self.service = service
        self.rings = rings
        self.host_names = host_names
        self.kind_names = kind_names
        self.monitor_host = monitor_host
        self.monitor_req = monitor_req
        self.monitor_bindings = monitor_bindings
        self.shards = [ShardMergeState(index)
                       for index in range(len(rings))]
        self.locks = [threading.Lock() for _ in rings]
        #: Optional ``(shard_index, generation)`` callback invoked when
        #: a worker echoes a re-arm generation — the backend folds the
        #: delta into its restart manifest here (see
        #: :meth:`ProcessBackend.rearm`).
        self.on_rearmed: Optional[Callable[[int, int], None]] = None
        self._stop = threading.Event()
        self._progress = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        metrics = service.metrics
        self._lag = metrics.histogram("soc.detection_lag_events")
        self._dead_lettered = metrics.counter("soc.events.dead_lettered")
        self._duplicates = metrics.counter(
            "soc.events.duplicates_suppressed")
        self._session_errors = metrics.counter("soc.session.errors")
        self._processed = [metrics.counter(f"soc.shard.{index}.processed")
                           for index in range(len(rings))]
        self._depth_gauges = [
            metrics.gauge(f"soc.shard.{index}.queue_depth")
            for index in range(len(rings))]

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "MergePlane":
        if self._thread is None:
            self._thread = threading.Thread(target=self._run,
                                            name="soc-merge", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            self._thread = None

    def _run(self) -> None:
        idle = 0
        while not self._stop.is_set():
            moved = 0
            for index in range(len(self.rings)):
                moved += self.pump(index)
            if moved:
                idle = 0
                with self._progress:
                    self._progress.notify_all()
            else:
                idle += 1
                if idle > 16:
                    self._stop.wait(0.0005 if idle < 256 else 0.005)

    # -- the pump -----------------------------------------------------------

    def pump(self, index: int, limit: int = 256) -> int:
        """Drain up to *limit* records from one shard's merge ring.

        Thread-safe per shard; callable from the merge thread and from
        the backend's supervisor (pre-restart synchronous fold).
        """
        ring = self.rings[index]
        state = self.shards[index]
        with self.locks[index]:
            handled = 0
            while handled < limit:
                if not ring.poll():
                    break
                offset = ring.peek_offset()
                tag = ring.buf[offset]
                if tag == Tag.DETECTION:
                    self._detection(ring.buf, offset)
                elif tag == Tag.PROGRESS:
                    processed, stepped, duplicates, errors = \
                        MergeCodec.unpack_progress(ring.buf, offset)
                    if processed:
                        self._processed[index].inc(processed)
                    if duplicates:
                        self._duplicates.inc(duplicates)
                    if errors:
                        self._session_errors.inc(errors)
                elif tag in (Tag.STRIKE, Tag.DEAD_LETTER):
                    self._strike(state, tag, ring.buf, offset)
                elif tag == Tag.VERDICT:
                    mon_id, verdict, digest = MergeCodec.unpack_verdict(
                        ring.buf, offset)
                    state.verdicts[mon_id] = (verdict, digest.hex())
                elif tag == Tag.FLUSHED:
                    token = MergeCodec.unpack_flushed(ring.buf, offset)
                    if token > state.flushed_token:
                        state.flushed_token = token
                elif tag == Tag.REARMED:
                    generation = MergeCodec.unpack_rearmed(ring.buf,
                                                           offset)
                    if generation > state.rearmed_gen:
                        state.rearmed_gen = generation
                        if self.on_rearmed is not None:
                            self.on_rearmed(index, generation)
                elif tag == Tag.BYE:
                    state.bye = True
                ring.advance()
                handled += 1
        if handled:
            with self._progress:
                self._progress.notify_all()
        return handled

    def _detection(self, buf, offset) -> None:
        host_id, mon_id, kind_id, etime = MergeCodec.unpack_detection(
            buf, offset)
        host = self.service.hosts[self.host_names[host_id]]
        detection = Detection(
            req_id=self.monitor_req[mon_id],
            event=Event(time=etime, kind=self.kind_names[kind_id]))
        self._lag.observe(max(0, host.events.clock - 1 - etime))
        self.service.pipeline.handle(host, detection,
                                     self.monitor_bindings[mon_id])

    def _strike(self, state: ShardMergeState, tag, buf, offset) -> None:
        host_id, kind_id, strikes, etime, reason = MergeCodec.unpack_strike(
            buf, offset)
        key = (host_id, etime, kind_id)
        if tag == Tag.STRIKE:
            state.strikes[key] = strikes
            return
        state.strikes.pop(key, None)
        self.service.dead_letters.park(
            self.host_names[host_id],
            Event(time=etime, kind=self.kind_names[kind_id]),
            REASONS[reason], strikes)
        self._dead_lettered.inc()

    # -- barriers -----------------------------------------------------------

    def wait(self, predicate: Callable[[], bool], timeout: float,
             tick: Optional[Callable[[], None]] = None) -> bool:
        """Wait until *predicate* holds, pumping liveness via *tick*."""
        import time as _time
        deadline = _time.monotonic() + timeout
        with self._progress:
            while not predicate():
                if _time.monotonic() > deadline:
                    return False
                self._progress.wait(0.02)
                if tick is not None:
                    with_progress = self._progress
                    with_progress.release()
                    try:
                        tick()
                    finally:
                        with_progress.acquire()
        return True

    def update_depth_gauges(self, ingress_rings: List[SpscRing]) -> None:
        for gauge, ring in zip(self._depth_gauges, ingress_rings):
            gauge.set(ring.depth)
