"""The binary event plane: process-parallel SOC shard execution.

The thread backend tops out against the GIL — eight shard workers are
eight threads taking turns on one interpreter lock.  This package moves
shard execution into worker *processes* connected by a compact binary
event plane:

* :mod:`repro.soc.procplane.codec` — fixed-width binary encoding of
  normalized event steps.  The compiled-LTL engine already reduces a
  step to (obligation, projected atom set); the codec assigns every
  atom a bit and every record packs to a few dozen bytes.
* :mod:`repro.soc.procplane.rings` — SPSC ring buffers over
  ``multiprocessing.shared_memory``: one ingress ring (parent ->
  worker) and one merge ring (worker -> parent) per shard.
* :mod:`repro.soc.procplane.worker` — the worker-process entry point:
  rebuilds its shard's monitor bank from the manifest (formula text is
  the wire format; interning makes the rebuild canonical), drains the
  ingress ring, steps monitors, and publishes detections / counters /
  strikes on the merge ring.
* :mod:`repro.soc.procplane.merge` — the parent-side merge loop:
  folds per-shard records back into the existing ``soc.metrics`` and
  incident-pipeline surfaces, so every consumer of
  :class:`~repro.soc.service.SocService` sees one coherent runtime
  regardless of backend.
* :mod:`repro.soc.procplane.backend` — :class:`ProcessBackend`: the
  pluggable shard-execution backend (spawn/supervise/restart workers,
  ingress puts, flush barriers, verdict collection).

Select it with ``SocService(..., backend="process")``, the
``repro soc --backend process`` CLI flag, or ``REPRO_SOC_BACKEND=process``.
"""

from repro.soc.procplane.backend import ProcessBackend
from repro.soc.procplane.codec import EventCodec, MergeCodec, Tag
from repro.soc.procplane.rings import RingFull, SpscRing

__all__ = [
    "EventCodec",
    "MergeCodec",
    "ProcessBackend",
    "RingFull",
    "SpscRing",
    "Tag",
]
