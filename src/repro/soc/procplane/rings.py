"""SPSC ring buffers over ``multiprocessing.shared_memory``.

One producer process, one consumer process, fixed-width slots — the
minimal structure that makes the cross-process hot path cheap:

* head (consumer cursor) and tail (producer cursor) are free-running
  u64 counters at fixed offsets in the segment; ``tail - head`` is the
  depth, ``index % capacity`` the slot.
* the producer writes the slot body *then* publishes the new tail; the
  consumer reads records strictly below tail and advances head only
  after a record is fully processed.  A worker that dies mid-record
  therefore leaves it (and everything after it) in the ring for its
  replacement — the process backend's no-event-lost clause is this one
  line of protocol.
* no locks, no condition variables: each side spins briefly then backs
  off with short sleeps.  Cross-process wakeups via futexes would save
  microseconds at the cost of portability; at SOC batch sizes the poll
  loop is off the hot path (the consumer only waits when there is no
  work).

The parent creates segments and unlinks them at stop; workers attach
by name.  Attach-side ``resource_tracker`` registration is suppressed
(CPython < 3.13 tracks segments it only attached to — the well-known
bpo-38119 behaviour — and with forked workers the tracker process is
*shared*, so an attach-side register/unregister pair would clobber
the parent's own registration).
"""

import struct
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

_HEAD = 0           # u64: consumer cursor (free-running)
_TAIL = 8           # u64: producer cursor (free-running)
_CLOSED = 16        # u8: producer hung up
_HEADER = 64        # slot array starts here (cache-line away from cursors)

_U64 = struct.Struct("<Q")


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource tracking.

    Only the creating process owns the segment's lifetime; attaching
    must not register it (``SharedMemory(track=False)`` exists from
    3.13 — this is the portable equivalent).
    """
    original = resource_tracker.register
    try:
        resource_tracker.register = (
            lambda n, rtype: None if rtype == "shared_memory"
            else original(n, rtype))
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class RingFull(RuntimeError):
    """Raised by :meth:`SpscRing.push` when the ring is at capacity."""


class SpscRing:
    """Single-producer single-consumer ring of fixed-width slots."""

    def __init__(self, capacity: int, slot: int,
                 name: Optional[str] = None, create: bool = False):
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self.capacity = capacity
        self.slot = slot
        size = _HEADER + capacity * slot
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=size)
            self._shm.buf[:_HEADER] = bytes(_HEADER)
        else:
            self._shm = _attach_untracked(name)
        self.buf = self._shm.buf
        #: Producer-side cache of the consumer cursor (refreshed only
        #: when the ring looks full) and consumer-side cache of the
        #: producer cursor (refreshed only when the ring looks empty):
        #: the common-case push/pop touches one shared cursor, not two.
        self._cached_head = 0
        self._cached_tail = 0

    @property
    def name(self) -> str:
        return self._shm.name

    # -- cursors ------------------------------------------------------------

    @property
    def head(self) -> int:
        return _U64.unpack_from(self.buf, _HEAD)[0]

    @property
    def tail(self) -> int:
        return _U64.unpack_from(self.buf, _TAIL)[0]

    @property
    def depth(self) -> int:
        return self.tail - self.head

    @property
    def closed(self) -> bool:
        return self.buf[_CLOSED] != 0

    def close_producer(self) -> None:
        self.buf[_CLOSED] = 1

    # -- producer side ------------------------------------------------------

    def reserve(self) -> int:
        """Byte offset of the next free slot, or raise :class:`RingFull`.

        The caller packs the record at the returned offset and then
        calls :meth:`publish`.  Split so codecs can pack straight into
        shared memory without an intermediate bytes object.
        """
        tail = self._cached_tail
        if tail - self._cached_head >= self.capacity:
            self._cached_head = _U64.unpack_from(self.buf, _HEAD)[0]
            if tail - self._cached_head >= self.capacity:
                raise RingFull(self.name)
        return _HEADER + (tail % self.capacity) * self.slot

    def publish(self) -> None:
        """Make the record packed after :meth:`reserve` visible."""
        self._cached_tail += 1
        _U64.pack_into(self.buf, _TAIL, self._cached_tail)

    def push_blocking(self, pack, deadline: Optional[float] = None,
                      poll: float = 0.0002) -> bool:
        """Pack-and-publish via *pack(buf, offset)*, waiting for space.

        Returns False when *deadline* (monotonic) passes first.
        """
        while True:
            try:
                offset = self.reserve()
            except RingFull:
                if deadline is not None and time.monotonic() > deadline:
                    return False
                time.sleep(poll)
                continue
            pack(self.buf, offset)
            self.publish()
            return True

    # -- consumer side ------------------------------------------------------

    def poll(self) -> int:
        """Records currently available to the consumer."""
        available = self._cached_tail - self._cached_head
        if available <= 0:
            self._cached_tail = _U64.unpack_from(self.buf, _TAIL)[0]
            available = self._cached_tail - self._cached_head
        return available

    def peek_offset(self, index: int = 0) -> int:
        """Byte offset of the index-th unconsumed record (no advance)."""
        return _HEADER + ((self._cached_head + index) % self.capacity) \
            * self.slot

    def advance(self, count: int = 1) -> None:
        """Mark *count* records fully processed (publishes head)."""
        self._cached_head += count
        _U64.pack_into(self.buf, _HEAD, self._cached_head)

    def advance_local(self) -> None:
        """Consume one record *without* publishing the shared head.

        Pair with :meth:`commit_head` at a batch boundary: the publish
        is one shared-memory write per batch instead of per record.
        Crash redelivery granularity coarsens from one record to one
        batch (still at-least-once; the consumer must commit before
        any deliberate exit).
        """
        self._cached_head += 1

    def commit_head(self) -> None:
        """Publish local head advances to the shared cursor."""
        _U64.pack_into(self.buf, _HEAD, self._cached_head)

    def sync_consumer(self) -> None:
        """Re-read the shared head (after taking over a dead consumer)."""
        self._cached_head = _U64.unpack_from(self.buf, _HEAD)[0]
        self._cached_tail = _U64.unpack_from(self.buf, _TAIL)[0]

    def sync_producer(self) -> None:
        """Re-read the shared tail (after taking over a dead producer).

        A restarted worker resumes the merge ring exactly where its
        predecessor's last *published* record ended; a partially packed
        but unpublished slot is simply overwritten.
        """
        self._cached_tail = _U64.unpack_from(self.buf, _TAIL)[0]
        self._cached_head = _U64.unpack_from(self.buf, _HEAD)[0]

    # -- lifecycle ----------------------------------------------------------

    def detach(self) -> None:
        self.buf = None
        self._shm.close()

    def destroy(self) -> None:
        """Close and unlink (creator side)."""
        self.buf = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
