"""SOC metrics: counters, gauges, and latency histograms.

The runtime is observable by construction: every shard, queue, and
enforcement path reports into one :class:`MetricsRegistry`, and the
whole registry snapshots to plain dicts so reports, tests, and the
benchmark JSON writers consume the same numbers.  All metric types are
thread-safe; the registry hands out one instance per name so concurrent
workers share a metric by naming it.
"""

import threading
from typing import Dict, List, Optional, Sequence

#: Default histogram buckets, in host logical events (detection lag) or
#: attempts (repair effort).  The last bucket is unbounded.
DEFAULT_BUCKETS = (0, 1, 2, 5, 10, 20, 50, 100, 250)


class Counter:
    """Monotonically increasing count."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, breaker states)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    Buckets are cumulative upper bounds (``value <= bound``); anything
    above the last bound lands in the implicit ``+Inf`` bucket.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.bounds: List[float] = sorted(buckets)
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    return
            self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            buckets = {}
            cumulative = 0
            for bound, n in zip(self.bounds, self._bucket_counts):
                cumulative += n
                buckets[f"le_{bound:g}"] = cumulative
            buckets["le_inf"] = cumulative + self._bucket_counts[-1]
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count if self._count else 0.0,
                "buckets": buckets,
            }


class MetricsRegistry:
    """Named metrics, created on first use and shared thereafter."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # Lookups are hot (every fault site, every credit): the common
    # already-exists case is a plain GIL-atomic dict read with no lock
    # and no speculative metric construction; only first use of a name
    # takes the slow double-checked path.

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter())
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge())
        return gauge

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(buckets))
        return histogram

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The whole registry as plain dicts (JSON-serializable)."""
        with self._lock:
            return {
                "counters": {name: c.value
                             for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value
                           for name, g in sorted(self._gauges.items())},
                "histograms": {name: h.snapshot()
                               for name, h in sorted(self._histograms.items())},
            }
