"""The worker supervisor: detect dead or hung shard workers, restart them.

First rung of the SOC's degradation ladder (supervisor → circuit
breaker → dead-letter queue → reconcile sweep).  The supervisor owns
worker *liveness*; it never touches events — a failed worker's
unprocessed batch suffix is already back at its queue's head (see
:class:`~repro.soc.workers.ShardWorker`), so a restart resumes the
shard with zero loss and preserved per-host order.

Two detection paths:

* **Dead workers** — a worker thread that exited with its ``crashed``
  flag set is replaced with a fresh worker (same queue, same sessions,
  bumped generation).  Checked by the background monitor thread *and*
  synchronously from :meth:`SocService.drain`'s barrier loop, so a
  crash discovered mid-drain restarts instead of deadlocking the
  flush.
* **Hung workers** — a worker stuck inside an injected hang longer
  than the fault plan's ``hang_timeout`` is *deposed*: flagged out of
  rotation and replaced immediately.  The deposed worker requeues its
  unfinished work when it wakes and exits.  Deposition trades strict
  per-host ordering for shard liveness, which is why it is opt-in
  (``hang_timeout`` unset = never depose; legitimate slow repairs are
  never deposed because only injected hangs set ``in_hang``).
"""

import threading
from typing import Optional


class WorkerSupervisor:
    """Watches a service's shard workers; restarts the dead, deposes
    the hung."""

    def __init__(self, service, interval: float = 0.02,
                 hang_timeout: Optional[float] = None):
        self.service = service
        self.interval = interval
        self.hang_timeout = hang_timeout
        self._stop = threading.Event()
        self._poke = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    def poke(self) -> None:
        """Wake the monitor immediately instead of waiting out the
        poll interval."""
        self._poke.set()

    #: Carried-restart chain length at which the handover falls back to
    #: a real thread spawn, unwinding the accumulated carry stack.
    MAX_CARRY_DEPTH = 32

    def note_death(self, worker):
        """A worker announcing its own crash on the way out.

        Replaces exactly *worker* synchronously from the dying thread
        (targeted — no full fleet scan — so concurrently dying workers
        on different shards don't serialize behind each other's
        restarts).  The monitor is woken only when this call *declines*
        to replace — a successful handover needs no second opinion, and
        waking the monitor 40+ times per crash storm just steals GIL
        slices from the workers doing the recovering.

        Usually returns the successor for the dying thread to *carry*:
        running the replacement's loop in the predecessor's stack makes
        a restart cost a method call instead of an OS thread spawn.
        Every :data:`MAX_CARRY_DEPTH` generations the successor is
        spawned as a real thread instead (returning ``None``), which
        unwinds the carry stack so an unbounded crash loop cannot
        overflow it.
        """
        index = worker.index             # roster position == shard index
        with self._lock:
            # Only the authorization handshake needs the lock: claim
            # the replacement before a concurrent monitor pass can.
            workers = self.service.workers
            if index >= len(workers) or workers[index] is not worker \
                    or not worker.needs_replacement \
                    or not self.service.accepts_restarts:
                self._poke.set()         # someone else's problem now
                return None
            worker.mark_replaced()
        successor = self.service._make_worker(
            index, generation=worker.generation + 1)
        carry_depth = worker.carry_depth + 1
        if carry_depth < self.MAX_CARRY_DEPTH:
            successor.mark_carried(carry_depth)
        # A plain list-slot store is atomic; the old worker is already
        # marked replaced, so a racing monitor pass skips this shard.
        self.service.workers[index] = successor
        self.service.metrics.counter("soc.worker.restarts").inc()
        if successor.carried:
            return successor
        successor.start()
        return None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "WorkerSupervisor":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._monitor, name="soc-supervisor", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._poke.set()            # wake a monitor mid-wait
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _monitor(self) -> None:
        while True:
            self._poke.wait(self.interval)
            if self._stop.is_set():
                return
            self._poke.clear()
            self.ensure_alive()

    # -- detection + repair ---------------------------------------------------

    def ensure_alive(self) -> int:
        """One supervision pass; returns how many workers were replaced.

        Safe to call from any thread (the drain barrier calls it
        synchronously); the lock serializes passes so the monitor
        thread and a draining caller never double-replace a worker.
        """
        started = []
        with self._lock:
            workers = self.service.workers
            for index, worker in enumerate(list(workers)):
                successor = None
                if worker.needs_replacement:
                    successor = self._register(index, worker)
                elif (self.hang_timeout is not None
                        and worker.is_alive()
                        and worker.in_hang
                        and worker.beat_age > self.hang_timeout):
                    worker.deposed = True
                    self.service.metrics.counter(
                        "soc.worker.deposed").inc()
                    successor = self._register(index, worker)
                if successor is not None:
                    started.append(successor)
        # Thread spawn is the expensive half of a restart; do it after
        # releasing the lock so restarts on different shards overlap.
        for successor in started:
            successor.start()
        return len(started)

    def _register(self, index: int, worker, carry_depth=None):
        """Build and install a successor (lock held); caller runs it.

        Installing before starting is safe: an installed-but-unstarted
        successor just looks like a healthy worker to concurrent
        passes, and its run loop handles a queue closed in the gap.
        With *carry_depth* the successor is flagged to run on its
        predecessor's thread (flagged before installation, so its
        liveness is carried-aware from the first visible moment).
        """
        if not self.service.accepts_restarts:
            return None
        worker.mark_replaced()
        successor = self.service._make_worker(
            worker.index, generation=worker.generation + 1)
        if carry_depth is not None:
            successor.mark_carried(carry_depth)
        self.service.workers[index] = successor
        self.service.metrics.counter("soc.worker.restarts").inc()
        return successor
