"""Security Operations Center runtime (operations-time, fleet-scale).

The paper's WP3 — reactive protection at operations — reproduced as a
long-running concurrent service instead of a synchronous per-host loop:

* :mod:`repro.soc.sharding` — consistent hashing of hosts onto shards;
* :mod:`repro.soc.queues` — bounded shard queues with backpressure
  (block / drop-oldest / reject);
* :mod:`repro.soc.sessions` — per-host monitor state, progressed off
  the emitting thread with sound atom-indexed routing;
* :mod:`repro.soc.incidents` — the incident pipeline: retry with
  exponential backoff + jitter, per-finding circuit breakers;
* :mod:`repro.soc.breaker` — the three-state breaker itself;
* :mod:`repro.soc.metrics` — counters / gauges / histograms,
  snapshotable as plain dicts;
* :mod:`repro.soc.workers` — the shard worker threads;
* :mod:`repro.soc.supervisor` — restarts dead workers, deposes hung
  ones, without losing queued events;
* :mod:`repro.soc.quarantine` — poison-event strikes and the bounded
  dead-letter queue;
* :mod:`repro.soc.service` — :class:`SocService`: ingress, lifecycle
  (start / drain / stop), reconcile sweep, results;
* :mod:`repro.soc.report` — human-readable and JSON run reports.

Entry points: ``Fleet.arm_soc(...)`` from :mod:`repro.core.fleet`, the
``repro soc`` CLI subcommand, and benchmark E12.
"""

from repro.soc.breaker import BreakerState, CircuitBreaker
from repro.soc.incidents import IncidentPipeline, RetryPolicy
from repro.soc.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.soc.quarantine import DeadLetter, DeadLetterQueue, Quarantine
from repro.soc.queues import Backpressure, PutResult, QueueClosed, ShardQueue
from repro.soc.report import render_json, render_report, run_summary
from repro.soc.service import SocService, arm_soc
from repro.soc.sessions import Detection, MonitorSession
from repro.soc.sharding import HashRing, stable_hash
from repro.soc.supervisor import WorkerSupervisor
from repro.soc.workers import ShardWorker

__all__ = [
    "Backpressure",
    "BreakerState",
    "CircuitBreaker",
    "Counter",
    "DeadLetter",
    "DeadLetterQueue",
    "Detection",
    "Gauge",
    "HashRing",
    "Histogram",
    "IncidentPipeline",
    "MetricsRegistry",
    "MonitorSession",
    "PutResult",
    "Quarantine",
    "QueueClosed",
    "RetryPolicy",
    "ShardQueue",
    "ShardWorker",
    "SocService",
    "WorkerSupervisor",
    "arm_soc",
    "render_json",
    "render_report",
    "run_summary",
    "stable_hash",
]
