"""Shard workers: the threads that drain shard queues.

One :class:`ShardWorker` per shard.  A worker owns the monitor sessions
of every host placed on its shard, so all per-host state it touches is
single-threaded and lock-free; cross-shard state (metrics, breakers)
is thread-safe by construction.
"""

import threading
from typing import Dict

from repro.soc.incidents import IncidentPipeline
from repro.soc.metrics import MetricsRegistry
from repro.soc.queues import ShardQueue
from repro.soc.sessions import MonitorSession


class ShardWorker(threading.Thread):
    """Drains one shard queue: progress monitors, run the pipeline."""

    #: Max events pulled per lock round; also the metrics flush grain.
    BATCH = 64

    def __init__(self, index: int, queue: ShardQueue,
                 sessions: Dict[str, MonitorSession],
                 pipeline: IncidentPipeline,
                 metrics: MetricsRegistry):
        super().__init__(name=f"soc-shard-{index}", daemon=True)
        self.index = index
        self.queue = queue
        self.sessions = sessions
        self.pipeline = pipeline
        self.metrics = metrics
        self.processed = 0

    def run(self) -> None:
        processed_counter = self.metrics.counter(
            f"soc.shard.{self.index}.processed")
        depth_gauge = self.metrics.gauge(
            f"soc.shard.{self.index}.queue_depth")
        lag_histogram = self.metrics.histogram("soc.detection_lag_events")
        while True:
            batch = self.queue.get_batch(self.BATCH)
            if batch is None:       # queue closed and fully drained
                break
            try:
                for host_name, event in batch:
                    session = self.sessions[host_name]
                    detections = session.observe(event)
                    for detection in detections:
                        # Lag: host events emitted between this event and
                        # the worker getting to it — the queue's price.
                        lag_histogram.observe(max(
                            0, session.host.events.clock - 1 - event.time))
                        self.pipeline.handle(
                            session.host, detection,
                            session.bindings.get(detection.req_id, []))
            finally:
                # task_done only after processing, so join() stays a
                # true drain barrier; one lock round per batch.  Every
                # dequeued item is credited even on an exception — no
                # other worker can ever finish it.
                self.processed += len(batch)
                processed_counter.inc(len(batch))
                depth_gauge.set(self.queue.depth)
                self.queue.task_done_many(len(batch))
