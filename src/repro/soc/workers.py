"""Shard workers: the threads that drain shard queues.

One :class:`ShardWorker` per shard.  A worker owns the monitor sessions
of every host placed on its shard, so all per-host state it touches is
single-threaded and lock-free; cross-shard state (metrics, breakers)
is thread-safe by construction.
"""

import threading
from typing import Dict

from repro.soc.incidents import IncidentPipeline
from repro.soc.metrics import MetricsRegistry
from repro.soc.queues import ShardQueue
from repro.soc.sessions import MonitorSession


class ShardWorker(threading.Thread):
    """Drains one shard queue: progress monitors, run the pipeline."""

    def __init__(self, index: int, queue: ShardQueue,
                 sessions: Dict[str, MonitorSession],
                 pipeline: IncidentPipeline,
                 metrics: MetricsRegistry):
        super().__init__(name=f"soc-shard-{index}", daemon=True)
        self.index = index
        self.queue = queue
        self.sessions = sessions
        self.pipeline = pipeline
        self.metrics = metrics
        self.processed = 0

    def run(self) -> None:
        processed_counter = self.metrics.counter(
            f"soc.shard.{self.index}.processed")
        depth_gauge = self.metrics.gauge(
            f"soc.shard.{self.index}.queue_depth")
        lag_histogram = self.metrics.histogram("soc.detection_lag_events")
        while True:
            item = self.queue.get()
            if item is None:        # queue closed and fully drained
                break
            host_name, event = item
            try:
                session = self.sessions[host_name]
                detections = session.observe(event)
                for detection in detections:
                    # Lag: host events emitted between this event and the
                    # worker getting to it — the price of the queue.
                    lag_histogram.observe(
                        max(0, session.host.events.clock - 1 - event.time))
                    self.pipeline.handle(
                        session.host, detection,
                        session.bindings.get(detection.req_id, []))
            finally:
                self.processed += 1
                processed_counter.inc()
                depth_gauge.set(self.queue.depth)
                self.queue.task_done()
