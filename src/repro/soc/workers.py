"""Shard workers: the threads that drain shard queues.

One :class:`ShardWorker` per shard.  A worker owns the monitor sessions
of every host placed on its shard, so all per-host state it touches is
single-threaded and lock-free; cross-shard state (metrics, breakers,
the dead-letter queue) is thread-safe by construction.

Degradation contract (the chaos plane leans on every clause):

* **No event is lost to a worker failure.**  An event is credited to
  the queue (``task_done``) only once it is terminally handled —
  processed or dead-lettered.  A worker that crashes, is deposed, or
  gives up on an event requeues the unprocessed suffix of its batch at
  the queue head, in order, before exiting, so a replacement worker
  resumes exactly where it stopped and per-host ordering holds.
* **Delivery is idempotent.**  Ingress is at-least-once under chaos
  (duplicated events, redelivered batches); a worker consults its
  session's seen-set before paying for a delivery, so a duplicate is
  suppressed (and counted) instead of re-running monitors, re-raising
  its original's fault, or repairing the same drift twice.
* **Poison events quarantine instead of wedging the shard.**  An event
  whose processing keeps failing collects strikes in the shard's
  :class:`~repro.soc.quarantine.Quarantine`; at ``max_deliveries``
  strikes it is parked in the bounded dead-letter queue and counted.
* **Session failures stay inside the worker.**  An exception out of
  ``session.observe`` (genuine or injected) is caught, rolled back by
  the session, struck, and retried — the worker thread survives, and
  only the failing host's events are deferred back to the queue; the
  rest of the batch keeps flowing (per-host ordering, not per-shard,
  is the contract).
"""

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.soc.incidents import IncidentPipeline
from repro.soc.metrics import MetricsRegistry
from repro.soc.quarantine import DeadLetterQueue, Quarantine
from repro.soc.queues import ShardQueue
from repro.soc.sessions import MonitorSession, SessionPatch


class ShardWorker:
    """Drains one shard queue: progress monitors, run the pipeline.

    Not a ``Thread`` subclass: a worker is a unit of *roster state*
    that usually runs on a thread of its own (:meth:`start`) but, after
    a crash, may instead run on its dead predecessor's thread
    (:meth:`carry`).  Keeping the thread an implementation detail also
    keeps restart construction cheap — a crash storm builds one worker
    per crash, and ``Thread.__init__`` is pure waste for the carried
    majority of them.
    """

    #: Max events pulled per lock round; also the metrics flush grain.
    BATCH = 64
    #: Backlog at or below which the worker caps its dequeue at
    #: :data:`LOW_BATCH`.  A big batch only amortizes lock traffic when
    #: there is a real backlog; on a shallow queue it just widens the
    #: window in which this worker runs a long uninterrupted stretch
    #: while every other shard's queued events age — the detection-lag
    #: regression at high shard counts.  Small batches at low depth
    #: interleave shards finely; the full batch size kicks back in
    #: exactly when the backlog (and so the amortization win) is real.
    LOW_WATER = 16
    LOW_BATCH = 8

    def __init__(self, index: int, queue: ShardQueue,
                 sessions: Dict[str, MonitorSession],
                 pipeline: IncidentPipeline,
                 metrics: MetricsRegistry,
                 chaos=None,
                 quarantine: Optional[Quarantine] = None,
                 dead_letters: Optional[DeadLetterQueue] = None,
                 generation: int = 0,
                 on_death=None):
        self.name = f"soc-shard-{index}.g{generation}"
        self.index = index
        self.generation = generation
        self.queue = queue
        self.sessions = sessions
        self.pipeline = pipeline
        self.metrics = metrics
        self.chaos = chaos
        self.quarantine = quarantine
        self.dead_letters = dead_letters
        self.processed = 0
        #: Set when the worker died to an (injected) crash — the
        #: supervisor's restart trigger.
        self.crashed = False
        #: Set by the supervisor to take a hung worker out of rotation;
        #: the worker requeues its remaining work and exits on wake.
        self.deposed = False
        #: True while serving an injected hang (depose eligibility).
        self.in_hang = False
        #: Wall-clock of the last liveness beat (monotonic seconds).
        self.last_beat = time.monotonic()
        self._replaced = False
        #: Called after a crash so the supervisor replaces this worker
        #: immediately instead of waiting out its poll interval.  May
        #: return a successor for the dying thread to carry in place.
        self._on_death = on_death
        #: The OS thread backing this worker when spawned (None until
        #: :meth:`start`, and forever for carried workers).
        self._thread: Optional[threading.Thread] = None
        self._carried = False
        self._finished = threading.Event()
        #: Carried-restart chain length; bounds handover stack depth.
        self.carry_depth = 0

    # -- supervisor interface ------------------------------------------------

    def beat(self) -> None:
        self.last_beat = time.monotonic()

    @property
    def beat_age(self) -> float:
        return time.monotonic() - self.last_beat

    @property
    def needs_replacement(self) -> bool:
        """Worker is out of rotation and nobody covers its queue yet.

        ``crashed`` is only set *after* the batch's finally block has
        requeued the unprocessed suffix, so the moment the flag is
        visible the shard is safe to hand to a successor — no need to
        wait for the crashed thread itself to finish dying.
        """
        if self._replaced:
            return False
        return self.deposed or self.crashed

    def mark_replaced(self) -> None:
        self._replaced = True

    # -- carried restarts ----------------------------------------------------

    def mark_carried(self, depth: int) -> None:
        """Flag this worker to run on its predecessor's thread.

        Must be called before the worker is installed in the service's
        roster so :meth:`is_alive` is carried-aware from the first
        moment any other thread can see it.
        """
        self._carried = True
        self.carry_depth = depth

    @property
    def carried(self) -> bool:
        return self._carried

    def carry(self) -> None:
        """Run this worker's loop on the calling thread.

        The calling thread is a crashed predecessor on its way out:
        its batch suffix is already requeued, so handing the shard
        over in-stack makes crash-to-restart latency a method call
        instead of an OS thread spawn (which costs around a
        millisecond under GIL contention — the dominant cost of a
        crash storm otherwise).  :meth:`start` uses the same entry
        point: a spawned worker is simply carried by a new thread.
        """
        try:
            self.run()
        finally:
            self._finished.set()

    # -- thread facade -------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(target=self.carry,
                                        name=self.name, daemon=True)
        self._thread.start()

    def is_alive(self) -> bool:
        """Running (spawned or carried) and not yet finished."""
        return (self._carried or self._thread is not None) \
            and not self._finished.is_set()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)
            return
        self._finished.wait(timeout)

    # -- the drain loop ------------------------------------------------------

    def run(self) -> None:
        processed_counter = self.metrics.counter(
            f"soc.shard.{self.index}.processed")
        depth_gauge = self.metrics.gauge(
            f"soc.shard.{self.index}.queue_depth")
        lag_histogram = self.metrics.histogram("soc.detection_lag_events")
        while not self.deposed:
            depth = self.queue.depth
            cap = self.BATCH if depth > self.LOW_WATER else self.LOW_BATCH
            depth_gauge.set(depth)
            batch = self.queue.get_batch(cap)
            if batch is None:       # queue closed and fully drained
                break
            credited = 0
            requeue: List[Tuple[str, object]] = []
            #: Events of hosts whose session failed earlier in this
            #: batch: deferred for redelivery (at the queue head, in
            #: order) instead of breaking the whole batch — per-host
            #: ordering is preserved, other hosts keep flowing.
            deferred: List[Tuple[str, object]] = []
            blocked: set = set()
            crashed = False
            try:
                for position, (host_name, event) in enumerate(batch):
                    self.beat()
                    if self.deposed:
                        requeue = batch[position:]
                        break
                    if host_name in blocked:
                        deferred.append((host_name, event))
                        continue
                    session = self.sessions[host_name]
                    if type(event) is SessionPatch:
                        # Live re-arm: the patch rode the queue behind
                        # the events it must not affect, so applying it
                        # here is exact — no chaos draw, no strikes, no
                        # seen-set (tokens make redelivery idempotent).
                        if session.apply_patch(event):
                            self.metrics.counter(
                                "soc.rearm.patches_applied").inc()
                        else:
                            self.metrics.counter(
                                "soc.rearm.patches_suppressed").inc()
                        credited += 1
                        continue
                    if session.already_observed(event):
                        # At-least-once ingress (chaos duplicates) made
                        # delivery redundant; the session's seen-set
                        # makes it idempotent.  Suppressed before the
                        # fault draw: a duplicate shares its original's
                        # decision key and would replay its fault.
                        self.metrics.counter(
                            "soc.events.duplicates_suppressed").inc()
                        credited += 1
                        continue
                    fault = None
                    strikes = 0
                    if self.quarantine is not None:
                        strikes = self.quarantine.strikes(host_name, event)
                        if strikes >= self.quarantine.max_deliveries:
                            self._park(host_name, event,
                                       "delivery budget exhausted",
                                       strikes)
                            credited += 1
                            continue
                    if self.chaos is not None:
                        fault = self.chaos.worker_fault(
                            host_name, event, strikes)
                    if fault is not None \
                            and fault.value == "hang":
                        self.in_hang = True
                        try:
                            self.chaos.hang()
                        finally:
                            self.in_hang = False
                        self.metrics.counter("soc.worker.hangs").inc()
                        if self.deposed:
                            # Deposed mid-hang: this delivery is a strike
                            # (the event wedged the shard), then hand
                            # everything unfinished back.
                            parked = self._strike_or_park(
                                host_name, event, "hang while deposed")
                            credited += parked
                            retry = batch[position:]
                            if parked:
                                retry = retry[1:]
                            requeue = retry
                            break
                    if fault is not None and fault.value == "crash":
                        parked = self._strike_or_park(
                            host_name, event, "worker crash loop")
                        credited += parked
                        retry = batch[position:]
                        if parked:
                            retry = retry[1:]
                        requeue = retry
                        crashed = True
                        break
                    try:
                        if fault is not None \
                                and fault.value == "session-error":
                            from repro.chaos.controller import \
                                InjectedSessionError
                            raise InjectedSessionError(
                                f"{host_name}@{event.time}")
                        detections = session.observe(event)
                    except Exception:
                        self.metrics.counter("soc.session.errors").inc()
                        parked = self._strike_or_park(
                            host_name, event, "session error")
                        credited += parked
                        if not parked:
                            deferred.append((host_name, event))
                        blocked.add(host_name)
                        continue
                    for detection in detections:
                        # Lag: host events emitted between this event and
                        # the worker getting to it — the queue's price.
                        lag_histogram.observe(max(
                            0, session.host.events.clock - 1 - event.time))
                        self.pipeline.handle(
                            session.host, detection,
                            session.bindings.get(detection.req_id, []))
                    if self.quarantine is not None and strikes:
                        self.quarantine.clear(host_name, event)
                    credited += 1
            finally:
                # task_done only for terminally-handled events, so
                # join() stays a true drain barrier; everything else
                # goes back to the queue head in order — no event is
                # ever lost to a worker failure.  Deferred events came
                # earlier in the batch than any crash/deposal suffix,
                # so they requeue ahead of it (per-host order holds).
                if deferred or requeue:
                    self.queue.requeue_front(deferred + requeue)
                self.processed += credited
                if credited:
                    processed_counter.inc(credited)
                    self.queue.task_done_many(credited)
                depth_gauge.set(self.queue.depth)
            if crashed:
                self.crashed = True
                self.metrics.counter("soc.worker.crashes").inc()
                successor = None
                if self._on_death is not None:
                    successor = self._on_death(self)
                if successor is not None:
                    # Hand the shard over in-stack: this thread is dead
                    # as far as the roster is concerned, but it can
                    # still do the successor's work for free.
                    successor.carry()
                break

    def _strike_or_park(self, host_name: str, event, reason: str) -> int:
        """Strike the event; park it when the budget is gone.

        Returns 1 when the event was parked (terminally handled, must
        be credited) and 0 when it stays in flight for a retry.
        """
        if self.quarantine is None:
            return 0
        strikes = self.quarantine.strike(host_name, event)
        if strikes >= self.quarantine.max_deliveries:
            self._park(host_name, event, reason, strikes)
            return 1
        return 0

    def _park(self, host_name: str, event, reason: str,
              strikes: int) -> None:
        if self.dead_letters is not None:
            self.dead_letters.park(host_name, event, reason, strikes)
        if self.quarantine is not None:
            self.quarantine.clear(host_name, event)
        self.metrics.counter("soc.events.dead_lettered").inc()
