"""Bounded shard queues with selectable backpressure.

Every shard owns one :class:`ShardQueue`.  Ingress threads (host event
emitters) ``put``; the shard's worker ``get``s.  When the queue is full
the configured :class:`Backpressure` policy decides what gives:

* ``BLOCK`` — the emitter waits until the worker frees a slot (lossless,
  propagates pressure to the event source);
* ``DROP_OLDEST`` — the oldest queued item is evicted to admit the new
  one (bounded staleness, favours fresh events);
* ``REJECT`` — the new item is refused (bounded work, favours the
  backlog already accepted).

The queue tracks unfinished work like :class:`queue.Queue` so
``join()`` gives the SOC a deterministic drain barrier.
"""

import enum
import threading
from collections import deque
from typing import Any, List, Optional, Sequence


class Backpressure(enum.Enum):
    """What a full queue does to the *next* put."""

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    REJECT = "reject"


class PutResult(enum.Enum):
    """Outcome of one :meth:`ShardQueue.put`."""

    ACCEPTED = "accepted"
    DISPLACED = "displaced"   # accepted, but evicted the oldest item
    REJECTED = "rejected"


class QueueClosed(RuntimeError):
    """Raised when putting into a closed queue."""


class ShardQueue:
    """Bounded FIFO with backpressure policy and drain support."""

    def __init__(self, capacity: int = 256,
                 policy: Backpressure = Backpressure.BLOCK):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.policy = policy
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._all_done = threading.Condition(self._lock)
        self._unfinished = 0
        self._closed = False
        #: Items evicted by DROP_OLDEST (monotonic).
        self.dropped = 0
        #: Puts refused by REJECT (monotonic).
        self.rejected = 0
        #: High-water mark of queue depth.
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def unfinished(self) -> int:
        """Accepted items not yet credited via ``task_done``."""
        return self._unfinished

    # -- producer side -----------------------------------------------------------

    def put(self, item: Any) -> PutResult:
        """Enqueue *item* under the configured backpressure policy."""
        with self._lock:
            if self._closed:
                raise QueueClosed("put into closed queue")
            if len(self._items) >= self.capacity:
                if self.policy is Backpressure.BLOCK:
                    while len(self._items) >= self.capacity \
                            and not self._closed:
                        self._not_full.wait()
                    if self._closed:
                        raise QueueClosed("queue closed while blocked")
                elif self.policy is Backpressure.DROP_OLDEST:
                    self._items.popleft()
                    self.dropped += 1
                    self._task_done_locked()
                    self._append(item)
                    return PutResult.DISPLACED
                else:  # REJECT
                    self.rejected += 1
                    return PutResult.REJECTED
            self._append(item)
            return PutResult.ACCEPTED

    def _append(self, item: Any) -> None:
        self._items.append(item)
        self._unfinished += 1
        self.peak_depth = max(self.peak_depth, len(self._items))
        self._not_empty.notify()

    # -- consumer side -----------------------------------------------------------

    def get(self) -> Optional[Any]:
        """Blocking dequeue; ``None`` once the queue is closed and empty."""
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                self._not_empty.wait()
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def get_batch(self, max_items: int) -> Optional[List[Any]]:
        """Blocking dequeue of up to *max_items* under one lock round.

        Blocks like :meth:`get` until at least one item is available,
        then drains whatever is queued (capped at *max_items*) so the
        worker pays the condition-variable handshake once per batch
        instead of once per event.  ``None`` once closed and empty.
        """
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                self._not_empty.wait()
            take = min(max_items, len(self._items))
            batch = [self._items.popleft() for _ in range(take)]
            self._not_full.notify(take)
            return batch

    def requeue_front(self, items: Sequence[Any]) -> None:
        """Return dequeued-but-unprocessed *items* to the head.

        The crash/retry path: a worker that dies (or gives up on) part
        of a batch puts the unprocessed suffix back, in order, so a
        replacement worker picks up exactly where it left off.  The
        items are still accounted as unfinished (they were never
        ``task_done``'d), so ``join()`` keeps waiting for them; the
        capacity bound is deliberately ignored — these items were
        already admitted once and dropping them here would silently
        break event conservation.
        """
        if not items:
            return
        with self._lock:
            self._items.extendleft(reversed(list(items)))
            self._not_empty.notify(len(items))

    def task_done(self) -> None:
        """Mark one dequeued item fully processed (for :meth:`join`)."""
        with self._lock:
            self._task_done_locked()

    def task_done_many(self, count: int) -> None:
        """Mark *count* dequeued items processed in one lock round."""
        with self._lock:
            for _ in range(count):
                self._task_done_locked()

    def _task_done_locked(self) -> None:
        if self._unfinished <= 0:
            raise ValueError("task_done() called too many times")
        self._unfinished -= 1
        if self._unfinished == 0:
            self._all_done.notify_all()

    # -- lifecycle ---------------------------------------------------------------

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted item has been processed.

        With a *timeout* (seconds) the wait is bounded and the return
        value reports whether the queue actually drained — the hook
        that lets :meth:`SocService.drain` interleave dead-worker
        detection with the flush barrier instead of deadlocking on a
        crashed shard.
        """
        with self._lock:
            if timeout is None:
                while self._unfinished:
                    self._all_done.wait()
                return True
            deadline = threading.TIMEOUT_MAX if timeout <= 0 else timeout
            if self._unfinished:
                self._all_done.wait(deadline)
            return self._unfinished == 0

    def close(self) -> None:
        """Stop accepting puts and wake every blocked thread."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
