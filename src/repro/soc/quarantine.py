"""Poison-event quarantine and the bounded dead-letter queue.

An event that keeps crashing its monitor session (or keeps taking its
worker down) must not wedge the shard: after ``max_deliveries``
strikes the event is *parked* — removed from the processing path,
recorded with its reason and strike count, and reported — instead of
being retried forever.  The dead-letter queue is bounded; overflow
evicts the oldest parked entry (counted, never silent), so a poison
storm cannot grow memory without bound either.

One :class:`Quarantine` per shard (strike counts are touched only by
that shard's worker — its successors after a restart included — so a
plain dict under the queue's ordering discipline would do, but a lock
keeps the depose path honest).  One :class:`DeadLetterQueue` per
service, shared by every shard.
"""

import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.environment.events import Event


@dataclass(frozen=True)
class DeadLetter:
    """One parked event and why it was given up on."""

    host: str
    event: Event
    reason: str
    strikes: int

    def row(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "time": self.event.time,
            "kind": self.event.kind,
            "reason": self.reason,
            "strikes": self.strikes,
        }


class Quarantine:
    """Per-shard strike ledger for events that keep failing."""

    def __init__(self, max_deliveries: int = 3):
        if max_deliveries < 1:
            raise ValueError("max_deliveries must be >= 1")
        self.max_deliveries = max_deliveries
        self._strikes: Dict[Tuple[str, int, str], int] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(host_name: str, event: Event) -> Tuple[str, int, str]:
        return (host_name, event.time, event.kind)

    def strikes(self, host_name: str, event: Event) -> int:
        with self._lock:
            return self._strikes.get(self._key(host_name, event), 0)

    def strike(self, host_name: str, event: Event) -> int:
        """Record one failure against the event; returns the new count."""
        with self._lock:
            key = self._key(host_name, event)
            count = self._strikes.get(key, 0) + 1
            self._strikes[key] = count
            return count

    def poisoned(self, host_name: str, event: Event) -> bool:
        """True once the event has exhausted its delivery budget."""
        return self.strikes(host_name, event) >= self.max_deliveries

    def clear(self, host_name: str, event: Event) -> None:
        """Forget an event that finally processed cleanly."""
        with self._lock:
            self._strikes.pop(self._key(host_name, event), None)

    def pending(self) -> int:
        """Events currently carrying at least one strike."""
        with self._lock:
            return len(self._strikes)


class DeadLetterQueue:
    """Bounded store of parked events, oldest evicted on overflow."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._letters: List[DeadLetter] = []
        self._lock = threading.Lock()
        #: Every park ever (monotonic; survives eviction).
        self.parked_total = 0
        #: Letters evicted to stay within capacity (monotonic).
        self.evicted = 0

    def park(self, host_name: str, event: Event, reason: str,
             strikes: int) -> DeadLetter:
        letter = DeadLetter(host=host_name, event=event, reason=reason,
                            strikes=strikes)
        with self._lock:
            self.parked_total += 1
            self._letters.append(letter)
            while len(self._letters) > self.capacity:
                self._letters.pop(0)
                self.evicted += 1
        return letter

    def __len__(self) -> int:
        with self._lock:
            return len(self._letters)

    def letters(self) -> List[DeadLetter]:
        with self._lock:
            return list(self._letters)

    def rows(self) -> List[Dict[str, object]]:
        """Plain-data view for reports (sorted: host, then time)."""
        return [letter.row() for letter in
                sorted(self.letters(),
                       key=lambda l: (l.host, l.event.time, l.event.kind))]
