"""The SOC incident pipeline: detect -> enforce, with failure budget.

Detections arrive from shard workers; the pipeline turns each into an
:class:`~repro.core.protection.Incident` and enforces the requirement's
bound RQCODE findings, hardened for operations:

* **retry with exponential backoff + jitter** — transient enforcement
  failures are retried up to ``RetryPolicy.max_attempts`` times, the
  wait doubling each round with seeded jitter so simultaneous repairs
  across shards do not thundering-herd one backend;
* **per-finding circuit breaker** — a finding whose enforcement keeps
  failing is skipped for a cooldown instead of burning the worker;
* **per-host serialization** — hosts are pinned to shards, so one
  host's incidents are handled strictly in detection order on one
  thread, while different hosts repair concurrently;
* **exception escalation** — an enforcement that *raises* (a broken
  backend, an injected chaos fault) is contained: it counts as a
  failed attempt against the retry budget and the circuit breaker
  instead of propagating up and killing the shard worker.

All of that budget machinery is the scheduler's unified policy stack
(:mod:`repro.sched.policy`): :class:`RetryPolicy` lives there now
(re-exported here for compatibility), the breakers come from a
:class:`~repro.sched.policy.BreakerBank`, and every enforcement runs
through one :class:`~repro.sched.policy.PolicyRunner` — this module
keeps only the SOC-specific parts (what an attempt *does*, which
metrics to count, how a verdict becomes a RepairAction).

Repair actions mutate the host, which emits events back into the very
log being monitored.  Workers flag themselves *in repair* for the
duration (thread-local), and ingress suppresses the same-thread echo so
repairs never re-trigger the monitors doing the repairing — the
concurrent analogue of the serial loop's detach-while-enforcing.
"""

import contextlib
import random
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.protection import Incident, RepairAction
from repro.environment.host import SimulatedHost
from repro.rqcode.catalog import StigCatalog
from repro.rqcode.concepts import CheckStatus, EnforcementStatus
from repro.sched.breaker import BreakerState, CircuitBreaker
from repro.sched.policy import BreakerBank, PolicyRunner, RetryPolicy
from repro.soc.metrics import MetricsRegistry
from repro.soc.sessions import Detection

__all__ = ["IncidentPipeline", "RetryPolicy"]


class IncidentPipeline:
    """Turns detections into incidents and repairs, with a failure budget."""

    def __init__(self, catalog: StigCatalog, metrics: MetricsRegistry,
                 retry: Optional[RetryPolicy] = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown: int = 2,
                 seed: int = 0,
                 sleeper: Callable[[float], None] = time.sleep,
                 chaos=None,
                 risk=None):
        self.catalog = catalog
        self.metrics = metrics
        #: Optional :class:`~repro.reqs.risk.RiskIndex`: incidents feed
        #: the requirement's incident-history component back into it,
        #: so requirements that keep firing climb every risk-ordered
        #: queue (reconcile sweeps, verification fan-out, re-arm order).
        self.risk = risk
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.seed = seed
        self.sleeper = sleeper
        self.chaos = chaos
        self._breakers = BreakerBank(failure_threshold=breaker_threshold,
                                     cooldown=breaker_cooldown)
        self._runner = PolicyRunner(
            retry=self.retry,
            # Late-bound so tests may swap the sleeper after construction.
            sleeper=lambda delay: self.sleeper(delay),
            on_attempt_failed=lambda index: self.metrics.counter(
                "soc.enforce.retries").inc(),
            on_exception=self._contain_exception,
        )
        self._rngs: Dict[str, random.Random] = {}
        self._incidents: Dict[str, List[Incident]] = {}
        self._local = threading.local()

    # -- repair-echo suppression ---------------------------------------------------

    def in_repair(self) -> bool:
        """True when the *calling thread* is currently enforcing."""
        return getattr(self._local, "repairing", False)

    @contextlib.contextmanager
    def repairing(self):
        """Mark the calling thread as enforcing for the duration.

        Ingress suppresses repair echoes by asking :meth:`in_repair`;
        anything that repairs outside :meth:`handle` (the reconcile
        sweep) must run inside this context or its own repair events
        feed straight back into the monitors.
        """
        previous = getattr(self._local, "repairing", False)
        self._local.repairing = True
        try:
            yield
        finally:
            self._local.repairing = previous

    # -- deterministic per-host state ----------------------------------------------

    def _rng_for(self, host_name: str) -> random.Random:
        # One seeded stream per host: jitter sequences are reproducible
        # regardless of how hosts interleave across shards.
        if host_name not in self._rngs:
            self._rngs[host_name] = random.Random(f"{self.seed}:{host_name}")
        return self._rngs[host_name]

    def breaker_for(self, host_name: str, finding_id: str) -> CircuitBreaker:
        return self._breakers.get((host_name, finding_id))

    def register_host(self, host_name: str) -> None:
        """Pre-create per-host stores so handling needs no locking."""
        self._incidents.setdefault(host_name, [])
        self._rng_for(host_name)

    # -- the pipeline --------------------------------------------------------------

    def handle(self, host: SimulatedHost, detection: Detection,
               finding_ids: List[str]) -> Incident:
        """Process one detection: build the incident, enforce bindings."""
        incident = Incident(
            req_id=detection.req_id,
            detected_at=detection.event.time,
            trigger_kind=detection.event.kind,
            violation_time=detection.event.time,
        )
        self.metrics.counter("soc.incidents").inc()
        if self.risk is not None:
            self.risk.note_incident(detection.req_id)
        with self.repairing():
            for finding_id in finding_ids:
                incident.repairs.append(
                    self._enforce_with_budget(host, finding_id))
        self._incidents.setdefault(host.name, []).append(incident)
        return incident

    def enforce_finding(self, host: SimulatedHost,
                        finding_id: str) -> RepairAction:
        """Enforce one finding outside a detection (reconcile sweep).

        Runs the same budgeted path as incident handling — breaker,
        retries, exception escalation — with repair-echo suppression
        armed for the calling thread.
        """
        with self.repairing():
            return self._enforce_with_budget(host, finding_id)

    def _contain_exception(
            self, exc: BaseException
    ) -> Tuple[EnforcementStatus, CheckStatus]:
        """A raising attempt becomes a failed one (and is counted)."""
        self.metrics.counter("soc.enforce.exception").inc()
        return (EnforcementStatus.FAILURE, CheckStatus.FAIL)

    def _enforce_with_budget(self, host: SimulatedHost,
                             finding_id: str) -> RepairAction:
        breaker = self.breaker_for(host.name, finding_id)
        requirement = None
        missing = (EnforcementStatus.FAILURE, CheckStatus.FAIL)

        def precheck():
            # Short-circuits that spend no attempt budget but do count
            # against the breaker: an unknown finding is a permanent
            # failure; an already-compliant host a free success.
            nonlocal requirement
            try:
                entry = self.catalog.get(finding_id)
            except KeyError:
                return False, missing
            requirement = entry.instantiate(host)
            try:
                already = requirement.check() is CheckStatus.PASS
            except Exception:
                self.metrics.counter("soc.enforce.exception").inc()
                already = False
            if already:
                return True, (EnforcementStatus.SUCCESS, CheckStatus.PASS)
            return None

        def attempt(index: int) -> Tuple[bool, Tuple]:
            # An enforcement that raises — genuinely broken backend or
            # an injected chaos fault — is contained by the policy
            # runner: it burns this attempt and, if the budget runs
            # out, escalates through the breaker.  The shard worker
            # never sees the exception.
            fault = (self.chaos.repair_fault(host.name, finding_id)
                     if self.chaos is not None else None)
            if fault is not None and fault.value == "raise":
                from repro.chaos.controller import InjectedRepairError
                raise InjectedRepairError(
                    f"{host.name}/{finding_id} attempt {index}")
            if fault is not None and fault.value == "noop":
                # The repair silently does nothing: the re-check
                # below observes the still-drifted host.
                status = EnforcementStatus.SUCCESS
            else:
                status = requirement.enforce()
            after = requirement.check()
            return after is CheckStatus.PASS, (status, after)

        outcome = self._runner.run(attempt, rng=self._rng_for(host.name),
                                   breaker=breaker, precheck=precheck)
        if not outcome.ran:
            self.metrics.counter("soc.enforce.skipped_by_breaker").inc()
            return RepairAction(
                finding_id=finding_id,
                status=EnforcementStatus.INCOMPLETE,
                detail="circuit breaker open; enforcement skipped",
            )
        if outcome.prechecked:
            if outcome.success:
                self.metrics.counter("soc.enforce.success").inc()
                return RepairAction(
                    finding_id=finding_id,
                    status=EnforcementStatus.SUCCESS,
                    detail="already compliant",
                )
            self._note_breaker(breaker)
            self.metrics.counter("soc.enforce.failure").inc()
            return RepairAction(
                finding_id=finding_id,
                status=EnforcementStatus.FAILURE,
                detail="finding not in catalogue",
            )
        status, after = outcome.value
        self.metrics.histogram("soc.repair_attempts").observe(
            outcome.attempts)
        if outcome.success:
            self.metrics.counter("soc.enforce.success").inc()
        else:
            self._note_breaker(breaker)
            self.metrics.counter("soc.enforce.failure").inc()
        detail = (f"enforced; attempts={outcome.attempts}; "
                  f"re-check {after.value}")
        return RepairAction(finding_id=finding_id, status=status,
                            detail=detail)

    def _note_breaker(self, breaker: CircuitBreaker) -> None:
        if breaker.state is BreakerState.OPEN:
            self.metrics.counter("soc.breaker.trips").inc()

    # -- results -------------------------------------------------------------------

    def incidents_for(self, host_name: str) -> List[Incident]:
        return list(self._incidents.get(host_name, ()))

    def incidents(self) -> List[Incident]:
        """All incidents, ordered by detection time then host."""
        merged: List[Tuple[int, str, Incident]] = []
        for host_name, incidents in self._incidents.items():
            for incident in incidents:
                merged.append((incident.detected_at, host_name, incident))
        merged.sort(key=lambda item: (item[0], item[1], item[2].req_id))
        return [incident for _, _, incident in merged]

    def breaker_states(self) -> Dict[str, str]:
        return {f"{host}/{finding}": breaker.state.value
                for (host, finding), breaker in self._breakers.items()}
