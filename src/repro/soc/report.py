"""SOC reporting: incident and metrics summaries for humans.

The CLI's ``repro soc`` subcommand (and anything else that wants a
readable digest of a run) renders through here; everything machine-
readable comes from :meth:`SocService.metrics_snapshot` instead.
"""

from typing import Dict, List, Sequence

from repro.core.protection import Incident
from repro.soc.service import SocService


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Align a list of row dicts into a text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r[c])) for r in rows))
              for c in columns}
    lines = ["  ".join(str(c).ljust(widths[c]) for c in columns)]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(str(row[c]).ljust(widths[c])
                               for c in columns))
    return "\n".join(lines)


def incident_rows(incidents_by_host: Dict[str, List[Incident]]
                  ) -> List[Dict[str, object]]:
    rows = []
    for host_name, incidents in sorted(incidents_by_host.items()):
        for incident in incidents:
            rows.append({
                "host": host_name,
                "requirement": incident.req_id,
                "trigger": incident.trigger_kind,
                "detected_at": incident.detected_at,
                "repairs": len(incident.repairs),
                "effective": "yes" if incident.effective else "no",
            })
    return rows


def render_report(service: SocService, title: str = "SOC run") -> str:
    """Full text report: incidents, shard stats, headline metrics."""
    snapshot = service.metrics_snapshot()
    counters = snapshot["counters"]
    lag = snapshot["histograms"].get("soc.detection_lag_events", {})
    lines = [f"=== {title} ==="]
    lines.append("")
    lines.append("-- incidents --")
    lines.append(format_table(incident_rows(service.incidents_by_host())))
    lines.append("")
    lines.append("-- shards --")
    lines.append(format_table(service.queue_stats()))
    lines.append("")
    lines.append("-- metrics --")
    incidents = service.incidents()
    effective = service.effective_repairs()
    summary_rows = [{
        "events_ingested": counters.get("soc.events.ingested", 0),
        "suppressed": counters.get("soc.events.suppressed", 0),
        "dropped": counters.get("soc.events.dropped", 0),
        "rejected": counters.get("soc.events.rejected", 0),
        "incidents": len(incidents),
        "effective": effective,
        "enforce_ok": counters.get("soc.enforce.success", 0),
        "enforce_fail": counters.get("soc.enforce.failure", 0),
        "retries": counters.get("soc.enforce.retries", 0),
        "breaker_trips": counters.get("soc.breaker.trips", 0),
    }]
    lines.append(format_table(summary_rows))
    if lag.get("count"):
        lines.append("")
        lines.append(
            f"detection lag (host events): mean={lag['mean']:.2f} "
            f"max={lag['max']:g} over {lag['count']} detections")
    open_breakers = {key: state
                     for key, state in service.pipeline.breaker_states()
                     .items() if state != "closed"}
    if open_breakers:
        lines.append("")
        lines.append("-- non-closed breakers --")
        for key, state in sorted(open_breakers.items()):
            lines.append(f"{key}: {state}")
    return "\n".join(lines)
