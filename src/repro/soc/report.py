"""SOC reporting: incident and metrics summaries for humans and tools.

The CLI's ``repro soc`` subcommand (and anything else that wants a
readable digest of a run) renders through here.  Two output shapes:

* :func:`render_report` — the aligned text report, now including a
  degradation section (dead letters, worker crashes/restarts,
  reconcile sweeps, chaos injections) when a run exercised any of it;
* :func:`run_summary` / :func:`render_json` — the same facts as a
  plain-data document that round-trips through ``json`` losslessly,
  for machine consumers and the CLI's ``--json`` flag.
"""

import json
from typing import Dict, List, Sequence

from repro.core.protection import Incident
from repro.soc.service import SocService


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Align a list of row dicts into a text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r[c])) for r in rows))
              for c in columns}
    lines = ["  ".join(str(c).ljust(widths[c]) for c in columns)]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(str(row[c]).ljust(widths[c])
                               for c in columns))
    return "\n".join(lines)


def incident_rows(incidents_by_host: Dict[str, List[Incident]]
                  ) -> List[Dict[str, object]]:
    rows = []
    for host_name, incidents in sorted(incidents_by_host.items()):
        for incident in incidents:
            rows.append({
                "host": host_name,
                "requirement": incident.req_id,
                "trigger": incident.trigger_kind,
                "detected_at": incident.detected_at,
                "repairs": len(incident.repairs),
                "effective": "yes" if incident.effective else "no",
            })
    return rows


def degradation_rows(service: SocService) -> List[Dict[str, object]]:
    """One row summarizing the run's graceful-degradation activity."""
    counters = service.metrics_snapshot()["counters"]
    return [{
        "dead_lettered": counters.get("soc.events.dead_lettered", 0),
        "dlq_retained": len(service.dead_letters),
        "dlq_evicted": service.dead_letters.evicted,
        "worker_crashes": counters.get("soc.worker.crashes", 0),
        "worker_restarts": counters.get("soc.worker.restarts", 0),
        "worker_deposed": counters.get("soc.worker.deposed", 0),
        "session_errors": counters.get("soc.session.errors", 0),
        "enforce_exceptions": counters.get("soc.enforce.exception", 0),
        "reconcile_sweeps": counters.get("soc.reconcile.sweeps", 0),
        "reconcile_repairs": counters.get("soc.reconcile.repairs", 0),
    }]


def _degraded(service: SocService) -> bool:
    row = degradation_rows(service)[0]
    return any(value for value in row.values())


def run_summary(service: SocService) -> Dict[str, object]:
    """Machine-readable summary of one SOC run (JSON-safe plain data).

    Everything here survives a ``json.dumps``/``loads`` round trip
    unchanged: keys are strings, values are str/int/float/bool/None,
    containers are dicts and lists.
    """
    snapshot = service.metrics_snapshot()
    counters = snapshot["counters"]
    incidents = service.incidents()
    summary: Dict[str, object] = {
        "hosts": len(service.hosts),
        "shards": service.shards,
        "incidents": len(incidents),
        "effective_repairs": service.effective_repairs(),
        "events": {
            "offered": counters.get("soc.events.offered", 0),
            "ingested": counters.get("soc.events.ingested", 0),
            "suppressed": counters.get("soc.events.suppressed", 0),
            "dropped": counters.get("soc.events.dropped", 0),
            "rejected": counters.get("soc.events.rejected", 0),
            "dead_lettered": counters.get("soc.events.dead_lettered", 0),
        },
        "degradation": dict(degradation_rows(service)[0]),
        "incident_rows": [
            {str(k): v for k, v in row.items()}
            for row in incident_rows(service.incidents_by_host())
        ],
        "queues": [
            {str(k): v for k, v in stats.items()}
            for stats in service.queue_stats()
        ],
        "dead_letters": service.dead_letters.rows(),
        "breakers": dict(service.pipeline.breaker_states()),
        "counters": dict(sorted(counters.items())),
    }
    if service.chaos is not None:
        summary["chaos"] = {
            "plan": service.chaos.plan.to_dict(),
            "injections": service.chaos.injection_count(),
            "decisions_digest": service.chaos.decisions_digest(),
        }
    return summary


def render_json(service: SocService, indent: int = 2) -> str:
    """The :func:`run_summary` document serialized as JSON."""
    return json.dumps(run_summary(service), indent=indent, sort_keys=True)


def render_report(service: SocService, title: str = "SOC run") -> str:
    """Full text report: incidents, shard stats, headline metrics."""
    snapshot = service.metrics_snapshot()
    counters = snapshot["counters"]
    lag = snapshot["histograms"].get("soc.detection_lag_events", {})
    lines = [f"=== {title} ==="]
    lines.append("")
    lines.append("-- incidents --")
    lines.append(format_table(incident_rows(service.incidents_by_host())))
    lines.append("")
    lines.append("-- shards --")
    lines.append(format_table(service.queue_stats()))
    lines.append("")
    lines.append("-- metrics --")
    incidents = service.incidents()
    effective = service.effective_repairs()
    summary_rows = [{
        "events_ingested": counters.get("soc.events.ingested", 0),
        "suppressed": counters.get("soc.events.suppressed", 0),
        "dropped": counters.get("soc.events.dropped", 0),
        "rejected": counters.get("soc.events.rejected", 0),
        "incidents": len(incidents),
        "effective": effective,
        "enforce_ok": counters.get("soc.enforce.success", 0),
        "enforce_fail": counters.get("soc.enforce.failure", 0),
        "retries": counters.get("soc.enforce.retries", 0),
        "breaker_trips": counters.get("soc.breaker.trips", 0),
    }]
    lines.append(format_table(summary_rows))
    if _degraded(service):
        lines.append("")
        lines.append("-- degradation --")
        lines.append(format_table(degradation_rows(service)))
        if len(service.dead_letters):
            lines.append("")
            lines.append("-- dead letters --")
            lines.append(format_table(service.dead_letters.rows()))
    chaos_counters = {name: value for name, value in sorted(counters.items())
                      if name.startswith("chaos.")}
    if chaos_counters:
        lines.append("")
        lines.append("-- chaos injections --")
        for name, value in chaos_counters.items():
            lines.append(f"{name}: {value}")
    if lag.get("count"):
        lines.append("")
        lines.append(
            f"detection lag (host events): mean={lag['mean']:.2f} "
            f"max={lag['max']:g} over {lag['count']} detections")
    open_breakers = {key: state
                     for key, state in service.pipeline.breaker_states()
                     .items() if state != "closed"}
    if open_breakers:
        lines.append("")
        lines.append("-- non-closed breakers --")
        for key, state in sorted(open_breakers.items()):
            lines.append(f"{key}: {state}")
    return "\n".join(lines)
