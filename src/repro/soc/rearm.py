"""Live delta re-arming: stream deltas onto a running SOC, no restarts.

The cold path re-arms a fleet by tearing the whole service down and
rebuilding every monitor bank from scratch (``arm_soc``) — O(fleet)
work and a protection gap for every requirement, even the unchanged
ones.  This module applies a :class:`~repro.reqs.stream.StreamDelta`
to a *running* :class:`~repro.soc.service.SocService` instead:

* only the **affected** hosts' banks are touched, and only the
  affected requirements within them — sessions for unchanged
  requirements keep their obligation state;
* on the **thread backend** the patch travels the shard queue as a
  :class:`~repro.soc.sessions.SessionPatch`, so its application is
  totally ordered against the host's in-flight events (events before
  the patch see the old bank, events after the new one — nothing is
  dropped or double-processed);
* on the **process backend** the patch ships as a manifest-delta
  REARM message over the existing binary event plane
  (:meth:`~repro.soc.procplane.backend.ProcessBackend.rearm`) with the
  same in-stream ordering guarantee;
* whether a changed requirement keeps its obligation state is decided
  by hash-consed formula identity: ``new.formula is old.formula``
  (interning makes it one pointer compare) means only the bindings
  moved — a rebind, state kept; a different formula re-arms fresh.

The planning half (:func:`monitor_entries`, :func:`plan_for_records`)
mirrors :meth:`~repro.core.orchestrator.VeriDevOpsOrchestrator.
protection_plan` rule-for-rule, so a delta-re-armed service and a cold
service armed from the same final IR set hold identical monitor sets —
the equivalence the E18 property test pins down.
"""

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ltl.compile import CompiledMonitor
from repro.ltl.parser import parse_ltl
from repro.reqs.ir import Requirement
from repro.reqs.stream import StreamDelta
from repro.soc.queues import QueueClosed
from repro.soc.sessions import SessionPatch

#: Front-end names whose host-bound records get drift detectors (the
#: registry names that lower to ``RequirementSource.STANDARD``).
STANDARD_FRONTENDS = ("rqcode", "standards")


def drift_atom(catalog, finding_ids: Sequence[str]) -> str:
    """The drift-event kind a finding set's monitor should watch.

    Package findings care about ``drift.package``, configuration
    findings about ``drift.config``, and so on; mixed or unknown
    shapes fall back to the coarse ``drift`` prefix.  (The orchestrator
    delegates here — one rule, two consumers.)
    """
    from repro.rqcode.ubuntu import (
        UbuntuConfigPattern,
        UbuntuPackagePattern,
        UbuntuServicePattern,
    )
    from repro.rqcode.win10 import AuditPolicyRequirement
    from repro.rqcode.win10_accounts import AccountPolicyRequirement
    from repro.rqcode.win10_registry import RegistryValueRequirement

    kinds = set()
    for finding_id in finding_ids:
        cls = catalog.get(finding_id).requirement_class
        if issubclass(cls, UbuntuPackagePattern):
            kinds.add("drift.package")
        elif issubclass(cls, UbuntuConfigPattern):
            kinds.add("drift.config")
        elif issubclass(cls, UbuntuServicePattern):
            kinds.add("drift.service")
        elif issubclass(cls, AuditPolicyRequirement):
            kinds.add("drift.audit")
        elif issubclass(cls, RegistryValueRequirement):
            kinds.add("drift.registry")
        elif issubclass(cls, AccountPolicyRequirement):
            kinds.add("drift.account")
    if len(kinds) == 1:
        return kinds.pop()
    return "drift"


def monitor_entries(record: Requirement, host, catalog
                    ) -> List[Tuple[str, CompiledMonitor, Tuple[str, ...]]]:
    """The ``(req_id, monitor, bindings)`` entries arming *record* on
    *host* — the per-record mirror of ``protection_plan``:

    * a standard-sourced record bound to catalogue findings arms a
      drift detector (``G !<kind>``) over the findings applicable to
      the host's platform;
    * a record carrying an event-compatible LTL formalization arms
      that formula under the record's own id (on every host, exactly
      like pipeline-produced monitors).
    """
    from repro.core.orchestrator import _event_compatible

    entries: List[Tuple[str, CompiledMonitor, Tuple[str, ...]]] = []
    if record.source in STANDARD_FRONTENDS and record.bindings:
        applicable = [
            fid for fid in record.bindings
            if fid in catalog
            and catalog.get(fid).platform == host.os_family
        ]
        if applicable:
            atom = drift_atom(catalog, applicable)
            entries.append((f"{record.rid}/drift",
                            CompiledMonitor(parse_ltl(f"G !{atom}")),
                            tuple(applicable)))
    formalization = record.formalization
    if formalization is not None and formalization.ltl:
        monitor = CompiledMonitor(parse_ltl(formalization.ltl))
        if _event_compatible(monitor):
            entries.append((record.rid, monitor, ()))
    return entries


def plan_for_records(records: Sequence[Requirement], host, catalog):
    """A cold ``(monitors, bindings)`` protection plan for *records* —
    what ``arm_soc`` would arm if the stream's current view were
    ingested from scratch (the equivalence reference)."""
    monitors: Dict[str, CompiledMonitor] = {}
    bindings: Dict[str, List[str]] = {}
    for record in records:
        for req_id, monitor, finding_ids in monitor_entries(
                record, host, catalog):
            monitors[req_id] = monitor
            if finding_ids:
                bindings[req_id] = list(finding_ids)
    return monitors, bindings


@dataclass
class RearmReport:
    """What one delta application actually did."""

    generation: int
    backend: str
    hosts_patched: int = 0
    monitors_added: int = 0
    monitors_removed: int = 0
    monitors_rebound: int = 0
    #: Monitors left entirely alone (obligation state preserved).
    monitors_kept: int = 0
    tokens: List[int] = field(default_factory=list)

    def summary(self) -> Dict[str, int]:
        return {"generation": self.generation,
                "hosts_patched": self.hosts_patched,
                "added": self.monitors_added,
                "removed": self.monitors_removed,
                "rebound": self.monitors_rebound,
                "kept": self.monitors_kept}


class Rearmer:
    """Applies stream deltas to a running SOC, backend-appropriately.

    One Rearmer per service; patch tokens are unique across its
    lifetime (idempotent redelivery suppression on the thread
    backend).  When a :class:`~repro.reqs.risk.RiskIndex` is given,
    scores are refreshed from the delta (via the index's scorer) and
    higher-risk records are patched first.
    """

    def __init__(self, soc, risk=None, scorer=None):
        self.soc = soc
        self.risk = risk
        self.scorer = scorer
        self._tokens = itertools.count(1)
        self._lock = threading.Lock()

    # -- planning ------------------------------------------------------------

    def _entries_by_host(self, record: Requirement
                         ) -> Dict[str, Dict[str, Tuple[CompiledMonitor,
                                                        Tuple[str, ...]]]]:
        per_host: Dict[str, Dict[str, Tuple[CompiledMonitor,
                                            Tuple[str, ...]]]] = {}
        for name in sorted(self.soc.hosts):
            host = self.soc.hosts[name]
            entries = monitor_entries(record, host, self.soc.catalog)
            if entries:
                per_host[name] = {req_id: (monitor, finding_ids)
                                  for req_id, monitor, finding_ids
                                  in entries}
        return per_host

    def _ordered_records(self, delta: StreamDelta):
        """Delta records as (old, new) pairs, highest risk first."""
        pairs = ([(None, record) for record in delta.added]
                 + [(old, new) for old, new in delta.changed]
                 + [(record, None) for record in delta.removed])
        if self.risk is not None:
            pairs.sort(key=lambda pair: (
                -self.risk.score_for((pair[1] or pair[0]).rid),
                (pair[1] or pair[0]).rid))
        return pairs

    def _refresh_risk(self, delta: StreamDelta) -> None:
        if self.risk is None:
            return
        scorer = self.scorer or self.risk.scorer
        for record in delta.removed:
            self.risk.discard(record.rid)
        live = [new for _, new in delta.changed]
        live.extend(delta.added)
        for record in live:
            if scorer is not None:
                routed = len(self._entries_by_host(record))
                self.risk.put(record.rid,
                              scorer.score(record,
                                           hosts_routed=routed).score)

    # -- application ---------------------------------------------------------

    def apply(self, delta: StreamDelta, wait: bool = True,
              timeout: float = 30.0) -> RearmReport:
        """Patch the running service to match *delta*.

        Computes per-host patches (add / remove / rebind, with
        hash-consed formula identity deciding "kept state" vs "fresh"),
        dispatches them through the backend's ordered channel, updates
        ``soc.plans`` so later restarts and manifests agree, and — with
        *wait* — blocks until every patch has been applied (thread
        backend: drain + token verification with bounded re-sends for
        drop-oldest displacement; process backend: REARMED echo).

        The caller commits the delta into its :class:`ReqStream`
        afterwards; on failure the stream bookkeeping is untouched and
        the apply can be retried.
        """
        report = RearmReport(generation=delta.generation,
                             backend=self.soc.backend)
        if delta.empty:
            return report
        self._refresh_risk(delta)

        # host -> (add entries, remove req_ids, rebind entries)
        patches: Dict[str, Tuple[list, list, list]] = {}

        def patch_for(host_name: str) -> Tuple[list, list, list]:
            return patches.setdefault(host_name, ([], [], []))

        with self._lock:
            for old, new in self._ordered_records(delta):
                old_hosts = (self._entries_by_host(old)
                             if old is not None else {})
                new_hosts = (self._entries_by_host(new)
                             if new is not None else {})
                for host_name in sorted(set(old_hosts) | set(new_hosts)):
                    olds = old_hosts.get(host_name, {})
                    news = new_hosts.get(host_name, {})
                    adds, removes, rebinds = patch_for(host_name)
                    for req_id in olds:
                        if req_id not in news:
                            removes.append(req_id)
                            report.monitors_removed += 1
                    for req_id, (monitor, finding_ids) in news.items():
                        previous = olds.get(req_id)
                        if previous is None:
                            if old is None and req_id in \
                                    self.soc.plans[host_name][0]:
                                # An "added" record colliding with an
                                # armed req_id replaces it fresh.
                                report.monitors_removed += 1
                            adds.append((req_id, monitor, finding_ids))
                            report.monitors_added += 1
                            continue
                        old_monitor, old_bindings = previous
                        if monitor.formula is old_monitor.formula:
                            # Same interned formula: the monitor (and
                            # its obligation state) stays armed.
                            if tuple(finding_ids) != tuple(old_bindings):
                                rebinds.append((req_id, finding_ids))
                                report.monitors_rebound += 1
                            else:
                                report.monitors_kept += 1
                        else:
                            adds.append((req_id, monitor, finding_ids))
                            report.monitors_added += 1
            report.hosts_patched = len(patches)
            self._update_plans(patches)
            if self.soc._proc is not None:
                self._apply_process(patches, timeout)
            else:
                self._apply_thread(patches, report, wait, timeout)
        self.soc.metrics.counter("soc.rearm.generations").inc()
        return report

    def _update_plans(self, patches) -> None:
        """Keep ``soc.plans`` authoritative for restarts/manifests."""
        for host_name, (adds, removes, rebinds) in patches.items():
            monitors, bindings = self.soc.plans[host_name]
            for req_id in removes:
                monitors.pop(req_id, None)
                bindings.pop(req_id, None)
            for req_id, monitor, finding_ids in adds:
                monitors[req_id] = monitor
                if finding_ids:
                    bindings[req_id] = list(finding_ids)
                else:
                    bindings.pop(req_id, None)
            for req_id, finding_ids in rebinds:
                bindings[req_id] = list(finding_ids)

    # -- thread backend ------------------------------------------------------

    def _session_patch(self, host_name: str,
                       ops: Tuple[list, list, list]) -> SessionPatch:
        adds, removes, rebinds = ops
        return SessionPatch(
            host_name=host_name,
            token=next(self._tokens),
            add=tuple((req_id, monitor, tuple(finding_ids))
                      for req_id, monitor, finding_ids in adds),
            remove=tuple(removes),
            rebind=tuple((req_id, tuple(finding_ids))
                         for req_id, finding_ids in rebinds),
        )

    def _apply_thread(self, patches, report: RearmReport,
                      wait: bool, timeout: float) -> None:
        sent = self.soc.metrics.counter("soc.rearm.patches_sent")
        outstanding: Dict[str, SessionPatch] = {
            host_name: self._session_patch(host_name, ops)
            for host_name, ops in sorted(patches.items())}
        report.tokens = [patch.token for patch in outstanding.values()]
        # Bounded re-sends: under drop-oldest backpressure a queued
        # patch can be displaced by later events; verification below
        # detects the loss and re-enqueues (idempotent per token, and
        # a re-sent patch is still ordered after any events that
        # displaced it).
        for _round in range(8):
            for host_name, patch in sorted(outstanding.items()):
                queue = self.soc.queues[self.soc._placement[host_name]]
                try:
                    queue.put((host_name, patch))
                except QueueClosed:
                    raise RuntimeError(
                        f"rearm: shard queue for {host_name!r} closed "
                        f"(service stopping?)")
                sent.inc()
            if not wait:
                return
            self.soc.drain()
            outstanding = {
                host_name: patch
                for host_name, patch in outstanding.items()
                if patch.token not in
                self.soc.sessions[host_name]._patched}
            if not outstanding:
                return
        raise RuntimeError(
            f"rearm: patches for {sorted(outstanding)} kept being "
            f"displaced; reduce ingress pressure or use BLOCK policy")

    # -- process backend -----------------------------------------------------

    def _apply_process(self, patches, timeout: float) -> None:
        adds = []
        removes = []
        rebinds = []
        for host_name, (host_adds, host_removes,
                        host_rebinds) in sorted(patches.items()):
            for req_id in host_removes:
                removes.append((host_name, req_id))
            for req_id, monitor, finding_ids in host_adds:
                adds.append((host_name, req_id, monitor,
                             list(finding_ids)))
            for req_id, finding_ids in host_rebinds:
                rebinds.append((host_name, req_id, list(finding_ids)))
        self.soc._proc.rearm(adds=adds, removes=removes,
                             rebinds=rebinds, timeout=timeout)
