"""Consistent hashing of host ids onto worker shards.

Host-to-shard placement must be (a) stable across runs — the SOC's
determinism guarantee hangs on it — and (b) minimally disruptive when
the shard count changes, so a fleet can be re-sharded without moving
every host.  A classic consistent-hash ring over a keyed digest gives
both; Python's builtin ``hash`` is salted per process and is therefore
explicitly *not* used.
"""

import bisect
import hashlib
from typing import Dict, List, Tuple


def stable_hash(key: str) -> int:
    """Process-independent 64-bit hash of *key*."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping string keys to shard indices."""

    def __init__(self, shard_count: int, replicas: int = 64):
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_count = shard_count
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(shard_count):
            for replica in range(replicas):
                points.append((stable_hash(f"shard-{shard}#{replica}"),
                               shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def shard_for(self, key: str) -> int:
        """The shard owning *key* (first ring point at/after its hash)."""
        index = bisect.bisect_left(self._hashes, stable_hash(key))
        if index == len(self._hashes):
            index = 0
        return self._shards[index]

    def assignment(self, keys) -> Dict[str, int]:
        """Placement for a batch of keys (diagnostics, tests)."""
        return {key: self.shard_for(key) for key in keys}

    def load(self, keys) -> Dict[int, int]:
        """Keys per shard — how even the placement is."""
        counts = {shard: 0 for shard in range(self.shard_count)}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
