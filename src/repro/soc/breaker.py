"""Compatibility shim: the circuit breaker moved to ``repro.sched``.

The per-finding breaker started life here; when the event-sourced work
scheduler unified the three executor retry/backoff/breaker stacks it
became shared infrastructure and moved to
:mod:`repro.sched.breaker`.  This module keeps the historic import
path (``from repro.soc.breaker import CircuitBreaker``) working.
"""

from repro.sched.breaker import BreakerState, CircuitBreaker

__all__ = ["BreakerState", "CircuitBreaker"]
