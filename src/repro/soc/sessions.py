"""Per-host monitor sessions: verdicts computed off the emitting thread.

A :class:`MonitorSession` owns one host's armed :class:`LtlMonitor`
set.  The serial :class:`~repro.core.protection.ProtectionLoop` runs
every monitor on every event *inside* the emit call; a session instead
consumes events on its shard's worker thread and — crucially for fleet
throughput — routes each event only to the monitors that can possibly
react to it.

Routing is sound, not heuristic: a monitor is *skippable* on an event
iff its current obligation is a fixed point of progression under a step
containing none of the obligation's atoms
(:func:`~repro.ltl.compile.empty_step_stable` — with interned formulas
the probe is a memoized identity check).  Drift detectors
(``G !drift.x``) have that property permanently, so a benign event
touches only the handful of monitors actually watching its kind;
monitors whose obligation is empty-step-sensitive (``X p`` tails,
pending ``U`` obligations) are kept on the run-every-event list until
their obligation stabilises again.  The monitors themselves are
typically :class:`~repro.ltl.compile.CompiledMonitor`\\ s, so every
session on the same requirement shares one warmed transition table.
Sessions are single-threaded by construction (one host -> one shard ->
one worker) and need no locks.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.environment.events import Event
from repro.environment.host import SimulatedHost
from repro.core.protection import event_step
from repro.ltl.compile import empty_step_stable
from repro.ltl.monitor import LtlMonitor, Verdict


@dataclass(frozen=True)
class Detection:
    """One monitor going FALSE on one event."""

    req_id: str
    event: Event


@dataclass(frozen=True)
class SessionPatch:
    """One host's monitor-bank delta, applied *in stream order*.

    A patch travels the same shard queue as the host's events, so its
    application is totally ordered against them: every event enqueued
    before the patch is observed by the old bank, every event after by
    the patched bank — re-arming never drops or double-processes an
    in-flight event.  ``add`` maps req_id -> (monitor, finding ids);
    an add for an already-armed req_id *replaces* that monitor (a
    changed formula re-arms fresh), while untouched req_ids keep their
    obligation state.  Patches are idempotent under redelivery: the
    ``token`` identifies the re-arm generation, and a session skips
    tokens it has already applied (a crashed worker's requeued batch
    may replay one).
    """

    host_name: str
    token: int
    add: Tuple[Tuple[str, LtlMonitor, Tuple[str, ...]], ...] = ()
    remove: Tuple[str, ...] = ()
    #: req_id -> new bindings for monitors kept armed (formula
    #: unchanged, but the enforcement bindings moved).
    rebind: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()


class MonitorSession:
    """One host's armed monitors, indexed for selective progression."""

    #: Seen-set pruning: when the set outgrows the limit, times more
    #: than KEEP behind the newest are discarded.  Reordering is
    #: adjacent-swap at worst, so an event that far behind the
    #: watermark cannot legitimately arrive for the first time.
    _SEEN_LIMIT = 4096
    _SEEN_KEEP = 1024

    def __init__(self, host: SimulatedHost,
                 monitors: Dict[str, LtlMonitor],
                 bindings: Dict[str, Sequence[str]]):
        self.host = host
        self.monitors = dict(monitors)
        self.bindings = {req_id: list(finding_ids)
                         for req_id, finding_ids in bindings.items()}
        self.events_seen = 0
        self.monitors_stepped = 0
        #: Per-host log times already fully observed — the idempotent
        #: delivery guard.  Host log times are unique per event, so a
        #: redelivered time is a duplicate by construction.
        self._seen: Set[int] = set()
        #: atom name -> req_ids whose obligation mentions it (skippable set)
        self._watch: Dict[str, Set[str]] = {}
        #: req_ids that must see every event (empty-step-sensitive)
        self._always: Set[str] = set()
        #: Re-arm tokens already applied (idempotent patch redelivery).
        self._patched: Set[int] = set()
        for req_id in self.monitors:
            self._classify(req_id)

    # -- routing index -----------------------------------------------------------

    def _classify(self, req_id: str) -> None:
        """(Re)index one monitor by its *current* obligation."""
        obligation = self.monitors[req_id].obligation
        self._always.discard(req_id)
        for watchers in self._watch.values():
            watchers.discard(req_id)
        if empty_step_stable(obligation):
            for atom in obligation.atoms():
                self._watch.setdefault(atom, set()).add(req_id)
        else:
            self._always.add(req_id)

    # -- live re-arming ----------------------------------------------------------

    def apply_patch(self, patch: SessionPatch) -> bool:
        """Patch the armed set in place (idempotent per token).

        Runs on the owning shard worker's thread, between two events of
        the stream — the session stays single-threaded and lock-free.
        Monitors not named by the patch keep their obligation state
        (and their place in the routing index); replaced and added
        monitors enter fresh.  Returns False for an already-applied
        token (a redelivered patch) so callers can count suppression.
        """
        if patch.token in self._patched:
            return False
        for req_id in patch.remove:
            if self.monitors.pop(req_id, None) is not None:
                self._always.discard(req_id)
                for watchers in self._watch.values():
                    watchers.discard(req_id)
            self.bindings.pop(req_id, None)
        for req_id, monitor, finding_ids in patch.add:
            self.monitors[req_id] = monitor
            self.bindings[req_id] = list(finding_ids)
            self._classify(req_id)
        for req_id, finding_ids in patch.rebind:
            if req_id in self.monitors:
                self.bindings[req_id] = list(finding_ids)
        self._patched.add(patch.token)
        return True

    def _relevant(self, propositions: Iterable[str]) -> Set[str]:
        relevant = set(self._always)
        for proposition in propositions:
            relevant.update(self._watch.get(proposition, ()))
        return relevant

    # -- observation -------------------------------------------------------------

    def already_observed(self, event: Event) -> bool:
        """True when this exact event was already fully observed.

        Ingress is at-least-once under chaos (duplicated events,
        redelivered batches); delivery to the monitors is made
        exactly-once here.  An event enters the seen-set only after a
        *successful* :meth:`observe` — a rolled-back failure leaves it
        unseen, so the retry is not mistaken for a duplicate.
        """
        return event.time in self._seen

    def observe(self, event: Event) -> List[Detection]:
        """Feed one event to the monitors that can react to it.

        FALSE verdicts become :class:`Detection`\\ s; the tripped monitor
        is reset and re-armed so the session keeps protecting.

        Observation is transactional: if any monitor raises mid-sweep,
        every obligation already advanced for this event is rolled back
        before the exception propagates, so the worker's retry of the
        same event cannot double-step the monitors that had already
        seen it.
        """
        self.events_seen += 1
        step = event_step(event)
        detections: List[Detection] = []
        undo = []
        try:
            for req_id in sorted(self._relevant(step)):
                monitor = self.monitors[req_id]
                before = monitor.obligation
                undo.append((req_id, monitor, before,
                             monitor.steps_observed))
                verdict = monitor.observe(step)
                self.monitors_stepped += 1
                if verdict is Verdict.FALSE:
                    detections.append(Detection(req_id=req_id, event=event))
                    monitor.reset()
                # Interning makes obligation change detection an identity
                # check — no structural comparison.
                if monitor.obligation is not before:
                    self._classify(req_id)
        except Exception:
            for req_id, monitor, obligation, steps in reversed(undo):
                monitor.obligation = obligation
                monitor.steps_observed = steps
                self._classify(req_id)
            raise
        self._seen.add(event.time)
        if len(self._seen) > self._SEEN_LIMIT:
            horizon = max(self._seen) - self._SEEN_KEEP
            self._seen = {t for t in self._seen if t >= horizon}
        return detections
