"""The SOC service: sharded, concurrent fleet protection.

:class:`SocService` is the operations-time runtime the serial
:class:`~repro.core.protection.ProtectionLoop` grows into:

* **ingress** — subscribes to every protected host's event log; each
  event is routed by consistent hash of the host id onto one of N
  bounded shard queues (:mod:`repro.soc.queues` backpressure policies);
* **workers** — one thread per shard progresses the per-host
  :class:`~repro.soc.sessions.MonitorSession` off the emitting thread;
* **incident pipeline** — detections become incidents with
  retry/backoff/jitter enforcement and per-finding circuit breakers
  (:mod:`repro.soc.incidents`);
* **metrics** — every stage reports into one
  :class:`~repro.soc.metrics.MetricsRegistry`;
* **lifecycle** — ``start`` / ``drain`` / ``stop``.  ``drain()`` is a
  deterministic flush barrier: after it returns, every accepted event
  has been fully processed (monitors progressed, repairs applied), which
  is what makes concurrent runs reproducible enough to assert on.

Because a host is pinned to exactly one shard, its events are processed
in emission order and its incidents handled serially, while distinct
hosts proceed in parallel — the same per-host semantics as the serial
loop, at fleet scale.
"""

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.protection import Incident
from repro.environment.events import Event
from repro.environment.host import SimulatedHost
from repro.ltl.monitor import LtlMonitor
from repro.rqcode.catalog import StigCatalog
from repro.soc.incidents import IncidentPipeline, RetryPolicy
from repro.soc.metrics import MetricsRegistry
from repro.soc.queues import Backpressure, PutResult, ShardQueue
from repro.soc.sessions import MonitorSession
from repro.soc.sharding import HashRing
from repro.soc.workers import ShardWorker

#: One host's armed monitors and their RQCODE bindings.
ProtectionPlan = Tuple[Dict[str, LtlMonitor], Dict[str, List[str]]]


class SocService:
    """Sharded concurrent protection over a set of hosts."""

    def __init__(self, hosts: Sequence[SimulatedHost], catalog: StigCatalog,
                 plans: Dict[str, ProtectionPlan],
                 shards: int = 4,
                 queue_capacity: int = 256,
                 policy: Backpressure = Backpressure.BLOCK,
                 retry: Optional[RetryPolicy] = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown: int = 2,
                 seed: int = 0,
                 sleeper=None,
                 metrics: Optional[MetricsRegistry] = None):
        self.hosts = {host.name: host for host in hosts}
        missing = set(self.hosts) - set(plans)
        if missing:
            raise ValueError(f"no protection plan for: {sorted(missing)}")
        self.catalog = catalog
        self.shards = shards
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        pipeline_kwargs = dict(
            retry=retry, breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown, seed=seed)
        if sleeper is not None:
            pipeline_kwargs["sleeper"] = sleeper
        self.pipeline = IncidentPipeline(catalog, self.metrics,
                                         **pipeline_kwargs)
        self.ring = HashRing(shards)
        policy = Backpressure(policy)   # accept "block" etc. verbatim
        self.queues = [ShardQueue(queue_capacity, policy)
                       for _ in range(shards)]
        self.sessions: Dict[str, MonitorSession] = {}
        self._placement: Dict[str, int] = {}
        for name, host in sorted(self.hosts.items()):
            monitors, bindings = plans[name]
            self.sessions[name] = MonitorSession(host, monitors, bindings)
            self._placement[name] = self.ring.shard_for(name)
            self.pipeline.register_host(name)
        self.workers: List[ShardWorker] = []
        self._subscriptions = []
        self._running = False
        self._lock = threading.Lock()

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def for_fleet(cls, fleet, orchestrator=None, **kwargs) -> "SocService":
        """Build a service for a :class:`~repro.core.fleet.Fleet`,
        deriving each host's plan from the orchestrator's standards
        ingest (the same monitors ``FleetProtection`` would arm)."""
        from repro.core.orchestrator import VeriDevOpsOrchestrator

        if orchestrator is None:
            orchestrator = VeriDevOpsOrchestrator(catalog=fleet.catalog)
            for platform in sorted({host.os_family
                                    for host in fleet.hosts()}):
                orchestrator.ingest_standards(platform)
        plans = {host.name: orchestrator.protection_plan(host)
                 for host in fleet.hosts()}
        return cls(fleet.hosts(), fleet.catalog, plans, **kwargs)

    # -- lifecycle -------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "SocService":
        """Spin up shard workers and attach ingress (idempotent)."""
        with self._lock:
            if self._running:
                return self
            shard_sessions: Dict[int, Dict[str, MonitorSession]] = {
                index: {} for index in range(self.shards)}
            for name, session in self.sessions.items():
                shard_sessions[self._placement[name]][name] = session
            self.workers = [
                ShardWorker(index, self.queues[index],
                            shard_sessions[index], self.pipeline,
                            self.metrics)
                for index in range(self.shards)
            ]
            for worker in self.workers:
                worker.start()
            for name, host in sorted(self.hosts.items()):
                self._subscriptions.append(
                    host.events.subscribe(self._ingress_for(name)))
            self.metrics.gauge("soc.shards").set(self.shards)
            self.metrics.gauge("soc.hosts").set(len(self.hosts))
            self._running = True
        return self

    def _ingress_for(self, host_name: str):
        queue = self.queues[self._placement[host_name]]
        ingested = self.metrics.counter("soc.events.ingested")
        suppressed = self.metrics.counter("soc.events.suppressed")
        dropped = self.metrics.counter("soc.events.dropped")
        rejected = self.metrics.counter("soc.events.rejected")

        def ingress(event: Event) -> None:
            # Repair echo: events this very thread is emitting while
            # enforcing must not re-enter the monitors (see incidents.py).
            if self.pipeline.in_repair():
                suppressed.inc()
                return
            result = queue.put((host_name, event))
            if result is PutResult.REJECTED:
                rejected.inc()
                return
            if result is PutResult.DISPLACED:
                dropped.inc()
            ingested.inc()

        return ingress

    def drain(self) -> "SocService":
        """Block until every accepted event has been fully processed."""
        for queue in self.queues:
            queue.join()
        return self

    def stop(self, drain: bool = True) -> None:
        """Detach ingress, optionally flush, then stop the workers."""
        with self._lock:
            if not self._running:
                return
            for subscription in self._subscriptions:
                subscription.cancel()
            self._subscriptions = []
            self._running = False
        if drain:
            self.drain()
        for queue in self.queues:
            queue.close()
        for worker in self.workers:
            worker.join(timeout=5.0)

    def __enter__(self) -> "SocService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- results ---------------------------------------------------------------------

    def incidents(self) -> List[Incident]:
        return self.pipeline.incidents()

    def incidents_by_host(self) -> Dict[str, List[Incident]]:
        return {name: self.pipeline.incidents_for(name)
                for name in sorted(self.hosts)}

    def effective_repairs(self) -> int:
        return sum(1 for incident in self.incidents() if incident.effective)

    def placement(self) -> Dict[str, int]:
        """Host -> shard assignment (stable across runs)."""
        return dict(self._placement)

    def queue_stats(self) -> List[Dict[str, object]]:
        return [
            {"shard": index, "depth": queue.depth,
             "peak_depth": queue.peak_depth, "dropped": queue.dropped,
             "rejected": queue.rejected}
            for index, queue in enumerate(self.queues)
        ]

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        return self.metrics.snapshot()


def arm_soc(hosts: Iterable[SimulatedHost], catalog: StigCatalog,
            plans: Dict[str, ProtectionPlan], **kwargs) -> SocService:
    """Convenience: build and start a service over explicit plans."""
    return SocService(list(hosts), catalog, plans, **kwargs).start()
