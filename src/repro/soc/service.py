"""The SOC service: sharded, concurrent fleet protection.

:class:`SocService` is the operations-time runtime the serial
:class:`~repro.core.protection.ProtectionLoop` grows into:

* **ingress** — subscribes to every protected host's event log; each
  event is routed by consistent hash of the host id onto one of N
  bounded shard queues (:mod:`repro.soc.queues` backpressure policies);
* **workers** — one thread per shard progresses the per-host
  :class:`~repro.soc.sessions.MonitorSession` off the emitting thread,
  under a :class:`~repro.soc.supervisor.WorkerSupervisor` that restarts
  dead workers and deposes hung ones without losing queued events;
* **incident pipeline** — detections become incidents with
  retry/backoff/jitter enforcement, per-finding circuit breakers, and
  repair-exception escalation (:mod:`repro.soc.incidents`);
* **quarantine** — events that repeatedly fail are parked in a bounded
  dead-letter queue (:mod:`repro.soc.quarantine`) instead of wedging
  their shard;
* **metrics** — every stage reports into one
  :class:`~repro.soc.metrics.MetricsRegistry`;
* **lifecycle** — ``start`` / ``drain`` / ``stop``, all idempotent and
  safe to call from concurrent threads.  ``drain()`` is a
  deterministic flush barrier: after it returns, every accepted event
  has been fully processed or dead-lettered, and dead workers
  discovered mid-drain are restarted rather than deadlocking the
  barrier.
* **chaos** — an optional
  :class:`~repro.chaos.controller.ChaosController` wraps every seam
  above with seeded, replayable fault injection; ``reconcile()`` is
  the degradation ladder's last rung, sweeping hosts back to
  compliance when faults ate the event-driven path.

Because a host is pinned to exactly one shard, its events are processed
in emission order and its incidents handled serially, while distinct
hosts proceed in parallel — the same per-host semantics as the serial
loop, at fleet scale.
"""

import os
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.protection import Incident
from repro.environment.events import Event
from repro.environment.host import SimulatedHost
from repro.ltl.monitor import LtlMonitor
from repro.rqcode.catalog import StigCatalog
from repro.rqcode.concepts import CheckStatus
from repro.soc.incidents import IncidentPipeline, RetryPolicy
from repro.soc.metrics import MetricsRegistry
from repro.soc.quarantine import DeadLetterQueue, Quarantine
from repro.soc.queues import Backpressure, PutResult, QueueClosed, ShardQueue
from repro.soc.sessions import MonitorSession
from repro.soc.sharding import HashRing
from repro.soc.supervisor import WorkerSupervisor
from repro.soc.workers import ShardWorker

#: One host's armed monitors and their RQCODE bindings.
ProtectionPlan = Tuple[Dict[str, LtlMonitor], Dict[str, List[str]]]

#: Recognized shard-execution backends (see ``backend=`` below).
BACKENDS = ("thread", "process")

#: Environment override for the default backend (CLI/constructor win).
BACKEND_ENV = "REPRO_SOC_BACKEND"


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a backend name: explicit arg > $REPRO_SOC_BACKEND > thread."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "thread"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown SOC backend {backend!r}; expected one of {BACKENDS}")
    return backend


class SocService:
    """Sharded concurrent protection over a set of hosts."""

    def __init__(self, hosts: Sequence[SimulatedHost], catalog: StigCatalog,
                 plans: Dict[str, ProtectionPlan],
                 shards: int = 4,
                 queue_capacity: int = 256,
                 policy: Backpressure = Backpressure.BLOCK,
                 retry: Optional[RetryPolicy] = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown: int = 2,
                 seed: int = 0,
                 sleeper=None,
                 metrics: Optional[MetricsRegistry] = None,
                 chaos=None,
                 max_deliveries: int = 3,
                 dead_letter_capacity: int = 64,
                 supervisor_interval: float = 0.02,
                 backend: Optional[str] = None,
                 risk=None,
                 placement: Optional[Dict[str, int]] = None):
        self.backend = resolve_backend(backend)
        #: Optional :class:`~repro.reqs.risk.RiskIndex` — orders the
        #: reconcile sweep (highest-risk requirements repaired first
        #: within the bounded budget) and accumulates incident history
        #: through the pipeline.
        self.risk = risk
        self.hosts = {host.name: host for host in hosts}
        missing = set(self.hosts) - set(plans)
        if missing:
            raise ValueError(f"no protection plan for: {sorted(missing)}")
        self.catalog = catalog
        self.plans = plans
        self.shards = shards
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.chaos = chaos
        hang_timeout = None
        if chaos is not None:
            chaos.metrics = self.metrics
            if chaos.plan.queue_capacity is not None:
                queue_capacity = chaos.plan.queue_capacity
            max_deliveries = chaos.plan.max_deliveries
            dead_letter_capacity = chaos.plan.dead_letter_capacity
            hang_timeout = chaos.plan.hang_timeout
        pipeline_kwargs = dict(
            retry=retry, breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown, seed=seed, chaos=chaos,
            risk=risk)
        if sleeper is not None:
            pipeline_kwargs["sleeper"] = sleeper
        self.pipeline = IncidentPipeline(catalog, self.metrics,
                                         **pipeline_kwargs)
        self.ring = HashRing(shards)
        policy = Backpressure(policy)   # accept "block" etc. verbatim
        self.queues = [ShardQueue(queue_capacity, policy)
                       for _ in range(shards)]
        self.dead_letters = DeadLetterQueue(dead_letter_capacity)
        self.quarantines = [Quarantine(max_deliveries)
                            for _ in range(shards)]
        self.sessions: Dict[str, MonitorSession] = {}
        #: Optional explicit host→shard routing hints (e.g. the
        #: conduit-aware placement a generated topology derives); hosts
        #: without a hint fall back to hash-ring placement.
        if placement:
            bad = {name: shard for name, shard in placement.items()
                   if not isinstance(shard, int)
                   or isinstance(shard, bool)
                   or not 0 <= shard < shards}
            if bad:
                raise ValueError(
                    f"placement hints out of range for {shards} "
                    f"shard(s): {bad}")
        self._placement: Dict[str, int] = {}
        for name, host in sorted(self.hosts.items()):
            monitors, bindings = plans[name]
            self.sessions[name] = MonitorSession(host, monitors, bindings)
            self._placement[name] = (
                placement[name] if placement and name in placement
                else self.ring.shard_for(name))
            self.pipeline.register_host(name)
        self._shard_sessions: Dict[int, Dict[str, MonitorSession]] = {
            index: {} for index in range(shards)}
        for name, session in self.sessions.items():
            self._shard_sessions[self._placement[name]][name] = session
        self.workers: List[ShardWorker] = []
        self.supervisor = WorkerSupervisor(
            self, interval=supervisor_interval, hang_timeout=hang_timeout)
        self._proc = None
        if self.backend == "process":
            from repro.soc.procplane.backend import ProcessBackend
            self._proc = ProcessBackend(
                self, queue_capacity, policy,
                max_deliveries=max_deliveries,
                chaos_plan_json=(chaos.plan.to_json()
                                 if chaos is not None else None),
                supervisor_interval=supervisor_interval)
        self._subscriptions = []
        self._config_hooks: List[Tuple[SimulatedHost, object]] = []
        self._running = False
        self._stop_started = False
        self._terminated = False
        self._stopped_event = threading.Event()
        self._lock = threading.Lock()

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def for_fleet(cls, fleet, orchestrator=None,
                  frontends: Optional[Sequence[str]] = None,
                  **kwargs) -> "SocService":
        """Build a service for a :class:`~repro.core.fleet.Fleet`,
        deriving each host's plan from the orchestrator's standards
        ingest (the same monitors ``FleetProtection`` would arm).

        ``frontends`` names additional registered front-ends (e.g.
        ``["standards"]``) whose bundled corpora are lowered into the
        IR and ingested as well; their host-targeted records route
        drift monitors onto matching hosts exactly like the native
        standards ingest — SOC monitor routing is front-end agnostic.
        """
        from repro.core.orchestrator import VeriDevOpsOrchestrator

        if orchestrator is None:
            orchestrator = VeriDevOpsOrchestrator(catalog=fleet.catalog)
            for platform in sorted({host.os_family
                                    for host in fleet.hosts()}):
                orchestrator.ingest_standards(platform)
        for name in frontends or ():
            orchestrator.ingest_frontend(name)
        plans = {host.name: orchestrator.protection_plan(host)
                 for host in fleet.hosts()}
        return cls(fleet.hosts(), fleet.catalog, plans, **kwargs)

    # -- lifecycle -------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    @property
    def accepts_restarts(self) -> bool:
        """The supervisor may spawn replacement workers (until the
        service has fully terminated)."""
        return not self._terminated

    def _make_worker(self, index: int, generation: int = 0) -> ShardWorker:
        return ShardWorker(index, self.queues[index],
                           self._shard_sessions[index], self.pipeline,
                           self.metrics, chaos=self.chaos,
                           quarantine=self.quarantines[index],
                           dead_letters=self.dead_letters,
                           generation=generation,
                           on_death=self.supervisor.note_death)

    def start(self) -> "SocService":
        """Spin up shard workers and attach ingress (idempotent)."""
        with self._lock:
            if self._running:
                return self
            if self._terminated:
                raise RuntimeError("service already stopped; "
                                   "build a fresh SocService")
            if self._proc is not None:
                self._proc.start()
            else:
                self.workers = [self._make_worker(index)
                                for index in range(self.shards)]
                for worker in self.workers:
                    worker.start()
            for name, host in sorted(self.hosts.items()):
                self._subscriptions.append(
                    host.events.subscribe(self._ingress_for(name)))
                if self.chaos is not None \
                        and self.chaos.plan.rate("config.slow") > 0:
                    hook = self.chaos.config_read_hook(name)
                    host.config.set_read_hook(hook)
                    self._config_hooks.append((host, hook))
            self.metrics.gauge("soc.shards").set(self.shards)
            self.metrics.gauge("soc.hosts").set(len(self.hosts))
            self._running = True
        if self._proc is None:
            self.supervisor.start()
        return self

    def _put(self, host_name: str, queue: ShardQueue, event: Event,
             counters) -> None:
        """Enqueue one (possibly chaos-expanded) event with accounting."""
        ingested, dropped, rejected = counters
        try:
            result = queue.put((host_name, event))
        except QueueClosed:
            # Racing a concurrent stop(): the event is refused, counted.
            rejected.inc()
            return
        if result is PutResult.REJECTED:
            rejected.inc()
            return
        if result is PutResult.DISPLACED:
            dropped.inc()
        ingested.inc()

    def _deliver_for(self, host_name: str):
        """The accounted per-host enqueue path, backend-resolved once."""
        counters = (self.metrics.counter("soc.events.ingested"),
                    self.metrics.counter("soc.events.dropped"),
                    self.metrics.counter("soc.events.rejected"))
        if self._proc is not None:
            raw = self._proc.putter(host_name)
            ingested, _dropped, rejected = counters

            def deliver(event: Event) -> None:
                try:
                    result = raw(event)
                except QueueClosed:
                    rejected.inc()
                    return
                if result is PutResult.REJECTED:
                    rejected.inc()
                    return
                ingested.inc()

            return deliver
        queue = self.queues[self._placement[host_name]]
        return lambda event: self._put(host_name, queue, event, counters)

    def _ingress_for(self, host_name: str):
        deliver = self._deliver_for(host_name)
        offered = self.metrics.counter("soc.events.offered")
        suppressed = self.metrics.counter("soc.events.suppressed")
        chaos = self.chaos

        def ingress(event: Event) -> None:
            # Repair echo: events this very thread is emitting while
            # enforcing must not re-enter the monitors (see incidents.py).
            if self.pipeline.in_repair():
                suppressed.inc()
                return
            if chaos is not None:
                for item in chaos.ingress_events(host_name, event):
                    offered.inc()
                    deliver(item)
            else:
                offered.inc()
                deliver(event)

        return ingress

    def _flush_chaos_stashes(self) -> None:
        """Release reorder-stashed events so the barrier sees them."""
        if self.chaos is None:
            return
        offered = self.metrics.counter("soc.events.offered")
        for host_name in sorted(self.hosts):
            stashed = self.chaos.flush_stash(host_name)
            if not stashed:
                continue
            deliver = self._deliver_for(host_name)
            for event in stashed:
                offered.inc()
                deliver(event)

    def drain(self) -> "SocService":
        """Block until every accepted event has been fully processed.

        The barrier interleaves with the supervisor: a worker that
        crashed (or was deposed) while holding part of the backlog is
        replaced mid-drain, so the flush always terminates instead of
        deadlocking on a dead shard.
        """
        self._flush_chaos_stashes()
        if self._proc is not None:
            self._proc.drain()
            return self
        for queue in self.queues:
            while not queue.join(timeout=0.05):
                self.supervisor.ensure_alive()
        return self

    def stop(self, drain: bool = True) -> None:
        """Detach ingress, optionally flush, then stop the workers.

        Idempotent and thread-safe: concurrent calls from two threads
        are serialized — the first performs the shutdown, the rest
        block until it completes and return with the service stopped.
        """
        with self._lock:
            if self._stop_started or not self._running:
                if not self._stop_started:
                    # Never started (or already fully stopped): nothing
                    # to wind down.
                    self._stopped_event.set()
                    self._terminated = True
                first = False
            else:
                self._stop_started = True
                first = True
            if first:
                for subscription in self._subscriptions:
                    subscription.cancel()
                self._subscriptions = []
                for host, _hook in self._config_hooks:
                    host.config.set_read_hook(None)
                self._config_hooks = []
                self._running = False
        if not first:
            self._stopped_event.wait(timeout=30.0)
            return
        try:
            if drain:
                self.drain()
            if self._proc is not None:
                self._proc.stop()
            else:
                for queue in self.queues:
                    queue.close()
                for worker in list(self.workers):
                    worker.join(timeout=5.0)
                self.supervisor.stop()
        finally:
            self._terminated = True
            self._stopped_event.set()

    def __enter__(self) -> "SocService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- degradation ladder: last rung ---------------------------------------------

    def reconcile(self, max_sweeps: int = 25) -> int:
        """Sweep hosts back to full compliance (bounded, breaker-aware).

        The event-driven path can legitimately lose a detection under
        degradation — a drift event dead-lettered, dropped by policy,
        or its repair budget burned by faults.  ``reconcile`` is the
        ladder's final rung: re-check every bound finding on every
        host and enforce what fails, through the same budgeted pipeline
        path (so open breakers keep absorbing cooldown and eventually
        re-probe).  Sweeps repeat until a sweep repairs nothing more or
        *max_sweeps* is hit.  Returns the number of effective repairs.
        """
        repaired_total = 0
        for _sweep in range(max_sweeps):
            self.metrics.counter("soc.reconcile.sweeps").inc()
            repaired = 0
            clean = True
            for name in sorted(self.hosts):
                host = self.hosts[name]
                session = self.sessions[name]
                if self.risk is not None:
                    # Highest-risk requirements sweep first: the sweep
                    # budget (max_sweeps, open breakers) is spent on
                    # what matters most.  Deterministic: ties break on
                    # req_id, then finding id.
                    ordered_reqs = self.risk.order(session.bindings)
                else:
                    ordered_reqs = sorted(session.bindings)
                finding_ids = []
                seen_findings = set()
                for req_id in ordered_reqs:
                    for finding_id in sorted(session.bindings[req_id]):
                        if finding_id not in seen_findings:
                            seen_findings.add(finding_id)
                            finding_ids.append(finding_id)
                for finding_id in finding_ids:
                    try:
                        entry = self.catalog.get(finding_id)
                    except KeyError:
                        continue
                    requirement = entry.instantiate(host)
                    try:
                        compliant = requirement.check() is CheckStatus.PASS
                    except Exception:
                        compliant = False
                    if compliant:
                        continue
                    clean = False
                    action = self.pipeline.enforce_finding(host, finding_id)
                    if action.detail.endswith(CheckStatus.PASS.value):
                        repaired += 1
            if repaired:
                self.metrics.counter("soc.reconcile.repairs").inc(repaired)
                repaired_total += repaired
            if clean:
                break
        return repaired_total

    # -- results ---------------------------------------------------------------------

    def incidents(self) -> List[Incident]:
        return self.pipeline.incidents()

    def incidents_by_host(self) -> Dict[str, List[Incident]]:
        return {name: self.pipeline.incidents_for(name)
                for name in sorted(self.hosts)}

    def effective_repairs(self) -> int:
        return sum(1 for incident in self.incidents() if incident.effective)

    def placement(self) -> Dict[str, int]:
        """Host -> shard assignment (stable across runs)."""
        return dict(self._placement)

    def queue_stats(self) -> List[Dict[str, object]]:
        if self._proc is not None:
            return self._proc.queue_stats()
        return [
            {"shard": index, "depth": queue.depth,
             "peak_depth": queue.peak_depth, "dropped": queue.dropped,
             "rejected": queue.rejected}
            for index, queue in enumerate(self.queues)
        ]

    def final_verdicts(self) -> Dict[Tuple[str, str], Tuple[str, str]]:
        """(host, req_id) -> (verdict, obligation id hex).

        The cross-backend equivalence surface: identical ingress must
        yield identical maps from either backend.  On the process
        backend the map is collected during ``stop()``, so read it
        after the service has stopped (the thread backend's sessions
        can be read any time).
        """
        from repro.ltl.compile import obligation_id

        if self._proc is not None:
            return self._proc.final_verdicts()
        verdicts: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for name, session in self.sessions.items():
            for req_id, monitor in session.monitors.items():
                verdicts[(name, req_id)] = (
                    monitor.verdict.value,
                    obligation_id(monitor.obligation).hex())
        return verdicts

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        return self.metrics.snapshot()


def arm_soc(hosts: Iterable[SimulatedHost], catalog: StigCatalog,
            plans: Dict[str, ProtectionPlan], **kwargs) -> SocService:
    """Convenience: build and start a service over explicit plans."""
    return SocService(list(hosts), catalog, plans, **kwargs).start()
