"""NALABS analyzer: run every metric over requirements and report smells.

The original tool reads a requirements spreadsheet (REQ ID + Text
columns) and shows per-requirement metric values with flagged cells.
:class:`NalabsAnalyzer` is the library equivalent: feed it
:class:`RequirementText` records, get :class:`RequirementReport` /
:class:`CorpusReport` back.
"""

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.nalabs.metrics import ALL_METRICS, Metric, MetricResult


@dataclass(frozen=True)
class RequirementText:
    """One natural-language requirement as the analyzer consumes it."""

    req_id: str
    text: str

    @staticmethod
    def from_csv(csv_text: str, id_column: str = "REQ ID",
                 text_column: str = "Text") -> "List[RequirementText]":
        """Parse the spreadsheet-export format the original GUI opens.

        The Edit/Settings dialog in NALABS asks the user to pick the
        REQ ID and Text columns; here they are keyword parameters.
        """
        reader = csv.DictReader(io.StringIO(csv_text))
        records = []
        for row in reader:
            if id_column not in row or text_column not in row:
                raise KeyError(
                    f"CSV lacks {id_column!r}/{text_column!r} columns; "
                    f"found {list(row)}"
                )
            records.append(RequirementText(row[id_column], row[text_column]))
        return records


@dataclass
class RequirementReport:
    """All metric results for one requirement."""

    req_id: str
    text: str
    results: Dict[str, MetricResult] = field(default_factory=dict)

    @property
    def flagged_metrics(self) -> List[str]:
        return [name for name, r in self.results.items() if r.flagged]

    @property
    def smelly(self) -> bool:
        return bool(self.flagged_metrics)

    def value(self, metric_name: str) -> float:
        return self.results[metric_name].value


@dataclass
class CorpusReport:
    """Aggregate over a corpus: per-requirement reports plus summaries."""

    reports: List[RequirementReport] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.reports)

    @property
    def smelly_count(self) -> int:
        return sum(1 for r in self.reports if r.smelly)

    def flagged_by_metric(self) -> Dict[str, List[str]]:
        """metric name -> requirement ids flagged by it."""
        table: Dict[str, List[str]] = {}
        for report in self.reports:
            for name in report.flagged_metrics:
                table.setdefault(name, []).append(report.req_id)
        return table

    def mean_value(self, metric_name: str) -> float:
        if not self.reports:
            return 0.0
        return sum(r.value(metric_name) for r in self.reports) / len(self.reports)

    def max_value(self, metric_name: str) -> float:
        if not self.reports:
            return 0.0
        return max(r.value(metric_name) for r in self.reports)

    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per metric: mean, max, flagged count (the E4 table)."""
        if not self.reports:
            return []
        metric_names = list(self.reports[0].results)
        flagged = self.flagged_by_metric()
        return [
            {
                "metric": name,
                "mean": round(self.mean_value(name), 3),
                "max": round(self.max_value(name), 3),
                "flagged": len(flagged.get(name, [])),
            }
            for name in metric_names
        ]


class NalabsAnalyzer:
    """Runs a metric suite over requirements.

    Args:
        metrics: Metric instances to run; defaults to one instance of
            every class in :data:`~repro.nalabs.metrics.ALL_METRICS`.
    """

    def __init__(self, metrics: Optional[Sequence[Metric]] = None):
        self.metrics: List[Metric] = (
            list(metrics) if metrics is not None
            else [cls() for cls in ALL_METRICS]
        )
        names = [m.name for m in self.metrics]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate metric names: {names}")

    def analyze(self, requirement: RequirementText) -> RequirementReport:
        """Run every metric over one requirement."""
        report = RequirementReport(req_id=requirement.req_id,
                                   text=requirement.text)
        for metric in self.metrics:
            report.results[metric.name] = metric.measure(requirement.text)
        return report

    def analyze_corpus(self, requirements: Iterable[RequirementText]
                       ) -> CorpusReport:
        """Run the suite over a whole corpus."""
        corpus = CorpusReport()
        for requirement in requirements:
            corpus.reports.append(self.analyze(requirement))
        return corpus

    def analyze_csv(self, csv_text: str, id_column: str = "REQ ID",
                    text_column: str = "Text") -> CorpusReport:
        """Convenience: parse the spreadsheet format and analyze it."""
        records = RequirementText.from_csv(csv_text, id_column, text_column)
        return self.analyze_corpus(records)
