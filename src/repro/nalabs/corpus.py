"""Synthetic requirements corpus with seeded smell injection.

NALABS was evaluated on industrial requirement documents we cannot ship;
experiment E4 substitutes a generated corpus whose smells are *injected
with exact ground truth*, so detector precision/recall is measurable
rather than eyeballed (DESIGN.md, substitutions table).

The generator writes clean, imperative, security-flavoured requirement
statements, then for a chosen fraction of them splices in occurrences of
one smell's dictionary.  The ground truth records exactly which
requirement ids carry which injected smell.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.nalabs.analyzer import RequirementText

_SUBJECTS = (
    "The authentication service", "The audit subsystem",
    "The session manager", "The access-control module",
    "The key-management service", "The update client",
    "The intrusion-detection component", "The configuration agent",
    "The logging pipeline", "The network gateway",
)

_ACTIONS = (
    "lock the account after {n} consecutive failed logon attempts",
    "record every privileged operation in the security log",
    "terminate idle sessions after {n} seconds of inactivity",
    "encrypt stored credentials using an approved algorithm",
    "validate certificate chains before establishing a session",
    "reject configuration changes lacking a signed approval",
    "alert the operator within {n} seconds of a policy violation",
    "rotate audit log files when they reach {n} megabytes",
    "verify the integrity of security functions at startup",
    "enforce the configured password complexity policy",
)

_QUALIFIERS = (
    "", "", "",  # most statements carry no qualifier
    "at runtime",
    "for every remote session",
    "on all managed hosts",
    "before granting access",
)

#: Injection snippets per smell, each containing >=1 dictionary hit for
#: the corresponding metric (keys match metric ``name`` attributes).
_INJECTIONS: Dict[str, Tuple[str, ...]] = {
    "vagueness": (
        "in a timely manner with adequate margins",
        "with sufficient performance and reasonable overhead",
        "using a flexible and robust mechanism",
    ),
    "weakness": (
        "as far as possible and where possible",
        "to the extent possible when necessary",
        "being capable of recovery if practical",
    ),
    "optionality": (
        "and may optionally defer the action",
        "or possibly skip the step when instructed",
        "and could preferably notify the operator",
    ),
    "subjectivity": (
        "providing a nice and intuitive experience",
        "keeping behaviour better than the previous release",
        "with a friendly and pleasant interface",
    ),
    "references": (
        "as defined in section 3.4.1 of [12]",
        "in accordance with table 7 per the standard",
        "as specified in annex 2 and figure 9",
    ),
    "incompleteness": (
        "with thresholds TBD by the security board",
        "using parameters to be determined during integration",
        "covering cases to be confirmed during a later revision",
    ),
    "imperatives": (),  # injected by *removing* the imperative, below
    "conjunctions": (
        "and retry and then escalate or abort but log both",
        "or suspend and resume unless disabled and audited",
    ),
}


@dataclass
class InjectionGroundTruth:
    """Which requirement ids carry which injected smell."""

    injected: Dict[str, Set[str]] = field(default_factory=dict)

    def ids_for(self, smell: str) -> Set[str]:
        return self.injected.get(smell, set())

    def all_injected_ids(self) -> Set[str]:
        union: Set[str] = set()
        for ids in self.injected.values():
            union |= ids
        return union

    def precision_recall(self, smell: str, flagged_ids: Sequence[str]
                         ) -> Tuple[float, float]:
        """Precision/recall of *flagged_ids* against this ground truth.

        A flagged clean requirement is a false positive; an injected
        requirement not flagged is a false negative.  Empty flag sets
        score precision 1.0 (nothing asserted, nothing wrong).
        """
        truth = self.ids_for(smell)
        flagged = set(flagged_ids)
        true_positives = len(flagged & truth)
        precision = true_positives / len(flagged) if flagged else 1.0
        recall = true_positives / len(truth) if truth else 1.0
        return precision, recall


class CorpusGenerator:
    """Deterministic corpus factory.

    Args:
        seed: RNG seed; the same seed reproduces the same corpus and
            ground truth exactly.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def clean_statement(self) -> str:
        """One well-formed requirement: subject + 'shall' + action."""
        subject = self._rng.choice(_SUBJECTS)
        action = self._rng.choice(_ACTIONS).format(
            n=self._rng.choice((3, 5, 10, 15, 30, 60, 100)))
        qualifier = self._rng.choice(_QUALIFIERS)
        sentence = f"{subject} shall {action}"
        if qualifier:
            sentence += f" {qualifier}"
        return sentence + "."

    def inject(self, statement: str, smell: str) -> str:
        """Return *statement* degraded with one occurrence of *smell*."""
        if smell == "imperatives":
            # The imperative smell is the *absence* of binding verbs.
            return statement.replace(" shall ", " ", 1)
        snippets = _INJECTIONS[smell]
        snippet = self._rng.choice(snippets)
        return statement.rstrip(".") + f" {snippet}."

    def generate(self, count: int, injection_rate: float = 0.1,
                 smells: Sequence[str] = None
                 ) -> Tuple[List[RequirementText], InjectionGroundTruth]:
        """Build a corpus of *count* requirements.

        Each smell in *smells* is injected into a disjoint random subset
        of roughly ``injection_rate * count`` requirements, so one
        requirement carries at most one injected smell and the per-smell
        ground truth is unambiguous.
        """
        if smells is None:
            smells = tuple(s for s in _INJECTIONS if s != "imperatives") + (
                "imperatives",)
        if not 0.0 <= injection_rate <= 1.0:
            raise ValueError("injection_rate must be within [0, 1]")
        per_smell = int(count * injection_rate)
        if per_smell * len(smells) > count:
            raise ValueError(
                "injection_rate too high for disjoint per-smell subsets"
            )

        requirements = []
        for index in range(count):
            requirements.append(RequirementText(
                req_id=f"REQ-{index:04d}", text=self.clean_statement()))

        indices = list(range(count))
        self._rng.shuffle(indices)
        truth = InjectionGroundTruth()
        cursor = 0
        for smell in smells:
            chosen = indices[cursor:cursor + per_smell]
            cursor += per_smell
            truth.injected[smell] = set()
            for index in chosen:
                record = requirements[index]
                requirements[index] = RequirementText(
                    req_id=record.req_id,
                    text=self.inject(record.text, smell),
                )
                truth.injected[smell].add(record.req_id)
        return requirements, truth
