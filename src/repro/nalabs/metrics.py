"""NALABS metrics — one class per metric in the original repository.

Each metric scans one requirement statement and returns a
:class:`MetricResult` carrying a numeric value plus the matched
occurrences (so reports can show *why* a requirement was flagged).
Dictionary metrics match whole words/phrases case-insensitively; the
readability and size metrics are computed from token statistics.

The original C# files map as follows:

==========================  ==================================
C# file                     Python class
==========================  ==================================
``ConjunctionMetric.cs``    :class:`ConjunctionMetric`
``ContinuancesMetric.cs``   :class:`ContinuanceMetric`
``ImperativesMetric.cs``    :class:`ImperativeMetric`
``NVMetric.cs``             :class:`NonImperativeVerbMetric`
``OptionalityMetric.cs``    :class:`OptionalityMetric`
``ReferencesMetric.cs``     :class:`ReferenceMetric` (dictionary cue)
``References2.cs``          regex arm of :class:`ReferenceMetric`
``SubjectivityMetric.cs``   :class:`SubjectivityMetric`
``WeaknessMetric.cs``       :class:`WeaknessMetric`
``ICountMetric.cs``         :class:`SizeMetric` (token counting)
(ARI, D2.7 §2.2.2)          :class:`ReadabilityARIMetric`
(vagueness, D2.7 §2.2.2)    :class:`VaguenessMetric`
==========================  ==================================
"""

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.nalabs import dictionaries as dicts


@dataclass
class MetricResult:
    """Outcome of one metric on one requirement statement."""

    metric: str
    value: float
    occurrences: List[str] = field(default_factory=list)
    flagged: bool = False

    def __repr__(self) -> str:
        flag = " FLAG" if self.flagged else ""
        return f"<{self.metric}={self.value:g}{flag}>"


def tokenize(text: str) -> List[str]:
    """Lower-cased word tokens (alphanumerics plus internal hyphens)."""
    return re.findall(r"[a-z0-9]+(?:-[a-z0-9]+)*", text.lower())


def sentences(text: str) -> List[str]:
    """Crude sentence split on terminal punctuation; never empty."""
    parts = [s.strip() for s in re.split(r"[.!?]+", text) if s.strip()]
    return parts or [text.strip()]


def phrase_occurrences(text: str, phrases: Sequence[str]) -> List[str]:
    """All dictionary phrases found in *text* as whole words, with
    multiplicity (two 'may's count twice)."""
    lowered = text.lower()
    found: List[str] = []
    for phrase in phrases:
        pattern = r"\b" + re.escape(phrase) + r"\b"
        found.extend(phrase for _ in re.finditer(pattern, lowered))
    return found


class Metric(ABC):
    """A requirement-statement metric with a flagging threshold.

    ``threshold`` is the smallest value considered a smell; subclasses
    choose defaults matching the NALABS settings dialog.
    """

    #: Stable metric identifier used in reports and ground-truth keys.
    name: str = "metric"
    #: Values >= threshold are flagged.
    threshold: float = 1.0

    def __init__(self, threshold: float = None):
        if threshold is not None:
            self.threshold = threshold

    @abstractmethod
    def measure(self, text: str) -> MetricResult:
        """Compute the metric over one requirement statement."""

    def _result(self, value: float, occurrences: List[str]) -> MetricResult:
        return MetricResult(
            metric=self.name,
            value=value,
            occurrences=occurrences,
            flagged=value >= self.threshold,
        )


class _DictionaryMetric(Metric):
    """Shared machinery for phrase-counting metrics."""

    phrases: Tuple[str, ...] = ()

    def measure(self, text: str) -> MetricResult:
        occurrences = phrase_occurrences(text, self.phrases)
        return self._result(float(len(occurrences)), occurrences)


class VaguenessMetric(_DictionaryMetric):
    """Counts vague terms — the canonical requirements-complexity smell."""

    name = "vagueness"
    phrases = dicts.VAGUE_TERMS
    threshold = 1.0


class WeaknessMetric(_DictionaryMetric):
    """Counts weak phrases that leave room for multiple interpretations."""

    name = "weakness"
    phrases = dicts.WEAK_PHRASES
    threshold = 1.0


class OptionalityMetric(_DictionaryMetric):
    """Counts optional words giving developers latitude of interpretation."""

    name = "optionality"
    phrases = dicts.OPTIONAL_TERMS
    threshold = 1.0


class SubjectivityMetric(_DictionaryMetric):
    """Counts words expressing personal opinions or feelings."""

    name = "subjectivity"
    phrases = dicts.SUBJECTIVE_TERMS
    threshold = 1.0


class ContinuanceMetric(_DictionaryMetric):
    """Counts continuances — indicators of multi-clause requirements."""

    name = "continuances"
    phrases = dicts.CONTINUANCES
    threshold = 3.0


class ImperativeMetric(_DictionaryMetric):
    """Counts imperatives.

    Flagging is inverted relative to the other dictionary metrics: a
    requirement with *zero* imperatives is the smell (nothing binding),
    so the result is flagged when the count falls below 1.
    """

    name = "imperatives"
    phrases = dicts.IMPERATIVES
    threshold = 1.0

    def measure(self, text: str) -> MetricResult:
        occurrences = phrase_occurrences(text, self.phrases)
        value = float(len(occurrences))
        result = MetricResult(
            metric=self.name, value=value, occurrences=occurrences,
            flagged=value < self.threshold,
        )
        return result


class NonImperativeVerbMetric(Metric):
    """NV ratio: non-imperative verb forms per imperative.

    A statement whose behaviour is carried by plain verbs ("the system
    handles errors") rather than imperatives reads as description, not
    obligation.  Value is ``nv_count / max(1, imperative_count)``.
    """

    name = "nv_ratio"
    threshold = 3.0

    def measure(self, text: str) -> MetricResult:
        nv = phrase_occurrences(text, dicts.NON_IMPERATIVE_VERBS)
        imperative = phrase_occurrences(text, dicts.IMPERATIVES)
        value = len(nv) / max(1, len(imperative))
        return self._result(value, nv)


class ConjunctionMetric(_DictionaryMetric):
    """Counts conjunctions — each beyond the first hints the requirement
    is compound and should be split."""

    name = "conjunctions"
    phrases = dicts.CONJUNCTIONS
    threshold = 3.0


class IncompletenessMetric(_DictionaryMetric):
    """Counts placeholder markers (TBD, "to be determined", ...).

    A requirement carrying any of these is by definition not ready for
    formalization (the ``ICountMetric.cs`` sibling in the original
    repository counts these "incomplete" indicators)."""

    name = "incompleteness"
    phrases = dicts.INCOMPLETE_MARKERS
    threshold = 1.0


class ReferenceMetric(Metric):
    """Counts references to other documents/sections (referenceability).

    Combines the dictionary cue list (``ReferencesMetric.cs``) with the
    regex arm (``References2.cs``) that catches explicit section/figure
    numbers like "section 3.4.1" or "[12]".
    """

    name = "references"
    threshold = 1.0

    _NUMBERED = re.compile(
        r"(?:\b(?:section|table|figure|chapter|annex|appendix)\s+"
        r"[0-9]+(?:\.[0-9]+)*)|(?:\[[0-9]+\])",
        re.IGNORECASE,
    )

    def __init__(self, threshold: float = None, use_regex: bool = True):
        super().__init__(threshold)
        self.use_regex = use_regex

    def measure(self, text: str) -> MetricResult:
        occurrences = phrase_occurrences(text, dicts.REFERENCE_CUES)
        if self.use_regex:
            occurrences.extend(m.group(0) for m in self._NUMBERED.finditer(text))
        return self._result(float(len(occurrences)), occurrences)


class ReadabilityARIMetric(Metric):
    """Automated Readability Index, as D2.7 defines it.

    "ARI is calculated using WS + 9 × SW, where WS is the average number
    of words per sentence and SW is the average number of letters per
    word."  Higher is harder to read; the default threshold flags text
    denser than roughly college level under this formulation.
    """

    name = "readability_ari"
    threshold = 80.0

    def measure(self, text: str) -> MetricResult:
        words = tokenize(text)
        if not words:
            return self._result(0.0, [])
        sentence_list = sentences(text)
        words_per_sentence = len(words) / len(sentence_list)
        letters_per_word = sum(len(w) for w in words) / len(words)
        value = words_per_sentence + 9.0 * letters_per_word
        return self._result(value, [])


class SizeMetric(Metric):
    """Over-complexity: requirement size in words.

    D2.7 lists characters / words / paragraphs / lines as candidate size
    definitions; words is the one the thresholds below are calibrated
    for.  Character and line counts ride along in the occurrences slot
    (as ``key=value`` strings) so reports can show all three.
    """

    name = "size"
    threshold = 60.0

    def measure(self, text: str) -> MetricResult:
        words = tokenize(text)
        characters = len(text)
        lines = max(1, text.count("\n") + 1)
        details = [
            f"characters={characters}",
            f"words={len(words)}",
            f"lines={lines}",
        ]
        return self._result(float(len(words)), details)


#: Metric classes in report order.
ALL_METRICS = (
    VaguenessMetric,
    ReferenceMetric,
    OptionalityMetric,
    SubjectivityMetric,
    WeaknessMetric,
    IncompletenessMetric,
    ReadabilityARIMetric,
    SizeMetric,
    ImperativeMetric,
    NonImperativeVerbMetric,
    ConjunctionMetric,
    ContinuanceMetric,
)
