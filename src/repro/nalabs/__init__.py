"""NALABS — NAtural LAnguage Bad Smells for requirements.

Python reproduction of the NALABS tool referenced in D2.7 §2.2.1:
dictionary-based metrics that act as proxies for requirement smells
(vagueness, referenceability, optionality, subjectivity, weakness,
readability, over-complexity), applied to natural-language requirement
statements.

The public surface is:

* :class:`~repro.nalabs.analyzer.RequirementText` — one requirement
  (id + text) as the analyzer consumes it;
* :class:`~repro.nalabs.analyzer.NalabsAnalyzer` — runs every metric
  over a requirement or corpus and flags smells against thresholds;
* :mod:`~repro.nalabs.metrics` — the individual metric classes, one per
  C# metric file in the original repository;
* :mod:`~repro.nalabs.corpus` — a synthetic corpus generator with
  seeded smell injection and exact ground truth (experiment E4).
"""

from repro.nalabs.analyzer import (
    CorpusReport,
    NalabsAnalyzer,
    RequirementReport,
    RequirementText,
)
from repro.nalabs.corpus import CorpusGenerator, InjectionGroundTruth
from repro.nalabs.report import render_html
from repro.nalabs.metrics import (
    ALL_METRICS,
    ConjunctionMetric,
    ContinuanceMetric,
    ImperativeMetric,
    IncompletenessMetric,
    Metric,
    MetricResult,
    NonImperativeVerbMetric,
    OptionalityMetric,
    ReadabilityARIMetric,
    ReferenceMetric,
    SizeMetric,
    SubjectivityMetric,
    VaguenessMetric,
    WeaknessMetric,
)

__all__ = [
    "ALL_METRICS",
    "ConjunctionMetric",
    "ContinuanceMetric",
    "CorpusGenerator",
    "CorpusReport",
    "ImperativeMetric",
    "IncompletenessMetric",
    "InjectionGroundTruth",
    "Metric",
    "MetricResult",
    "NalabsAnalyzer",
    "NonImperativeVerbMetric",
    "OptionalityMetric",
    "ReadabilityARIMetric",
    "ReferenceMetric",
    "RequirementReport",
    "RequirementText",
    "SizeMetric",
    "SubjectivityMetric",
    "VaguenessMetric",
    "WeaknessMetric",
    "render_html",
]
