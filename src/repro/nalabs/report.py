"""NALABS HTML report — the GUI's grid, as a file.

The original NALABS is a Windows-Forms grid of requirements x metrics
with flagged cells highlighted.  :func:`render_html` reproduces that
view from a :class:`~repro.nalabs.analyzer.CorpusReport`: one row per
requirement, one column per metric, flagged cells tinted, plus the
summary table the E4 bench prints.
"""

from typing import List

from repro.nalabs.analyzer import CorpusReport

_FLAGGED_STYLE = "background:#ffcdd2"
_CLEAN_STYLE = ""


def render_html(report: CorpusReport,
                title: str = "NALABS analysis") -> str:
    """Render the corpus report as a standalone HTML document."""
    if not report.reports:
        body = "<p>(empty corpus)</p>"
        return _document(title, body)

    metric_names: List[str] = list(report.reports[0].results)

    header_cells = "".join(
        f"<th>{name}</th>" for name in ["REQ ID", "Text"] + metric_names)
    rows = []
    for requirement in report.reports:
        cells = [f"<td>{requirement.req_id}</td>",
                 f"<td>{_escape(requirement.text)}</td>"]
        for name in metric_names:
            result = requirement.results[name]
            style = _FLAGGED_STYLE if result.flagged else _CLEAN_STYLE
            cells.append(
                f'<td style="{style}" title="{_escape(_tooltip(result))}">'
                f"{result.value:g}</td>")
        rows.append("<tr>" + "".join(cells) + "</tr>")

    summary_rows = "".join(
        "<tr>"
        f"<td>{row['metric']}</td><td>{row['mean']}</td>"
        f"<td>{row['max']}</td><td>{row['flagged']}</td>"
        "</tr>"
        for row in report.summary_rows()
    )
    body = (
        f"<p>{report.smelly_count}/{report.total} requirements carry at "
        "least one smell.</p>\n"
        "<h2>Requirements</h2>\n"
        f"<table border='1'><tr>{header_cells}</tr>\n"
        + "\n".join(rows) + "\n</table>\n"
        "<h2>Metric summary</h2>\n"
        "<table border='1'>"
        "<tr><th>metric</th><th>mean</th><th>max</th><th>flagged</th></tr>"
        f"{summary_rows}</table>"
    )
    return _document(title, body)


def _tooltip(result) -> str:
    if not result.occurrences:
        return result.metric
    shown = ", ".join(str(item) for item in result.occurrences[:5])
    return f"{result.metric}: {shown}"


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _document(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n"
        f"<html><head><title>{_escape(title)}</title></head>\n"
        f"<body>\n<h1>{_escape(title)}</h1>\n{body}\n</body></html>\n"
    )
