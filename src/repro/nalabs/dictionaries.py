"""Smell dictionaries.

NALABS "established a set of indicators for requirement flaws and defined
dictionary-based metrics to automatically detect these smells" (D2.7
§2.2.1).  The word lists below follow the requirements-quality literature
the tool builds on (Wilson et al.'s ARM indicator categories plus the
vagueness/subjectivity lexicons used in later studies).

All entries are lower-case; multi-word phrases are matched as phrases.
"""

#: Vague terms: admit a latitude of interpretation with no testable bound.
VAGUE_TERMS = (
    "adequate", "appropriate", "as appropriate", "as required", "bad",
    "clear", "close", "easy", "efficient", "fast", "flexible", "good",
    "high", "large", "low", "maximize", "minimize", "normal", "quick",
    "reasonable", "robust", "seamless", "significant", "simple", "slow",
    "small", "strong", "sufficient", "suitable", "timely", "user-friendly",
    "acceptable", "adaptable", "relevant", "convenient",
)

#: Weak phrases: introduce uncertainty, leaving room for interpretation.
WEAK_PHRASES = (
    "as a minimum", "as applicable", "as far as possible", "as much as possible",
    "be able to", "be capable of", "capability of", "capability to",
    "effective", "if practical", "normal", "provide for", "to the extent",
    "to the extent possible", "where possible", "when necessary",
    "if needed", "as needed", "where appropriate", "not limited to",
)

#: Optional words: give developers latitude to satisfy the statement.
OPTIONAL_TERMS = (
    "can", "may", "optionally", "eventually", "if appropriate",
    "if needed", "possibly", "preferably", "might", "could",
    "as desired", "at the discretion",
)

#: Subjective words: personal opinions or feelings.
SUBJECTIVE_TERMS = (
    "similar", "better", "worse", "best", "worst", "take into account",
    "take into consideration", "as good as", "nice", "friendly",
    "intuitive", "state of the art", "satisfactory", "pleasant",
    "comfortable", "attractive", "easy to use",
)

#: Continuances: follow an imperative, signalling multiple-clause
#: requirements (nesting; a complexity indicator, not forbidden).
CONTINUANCES = (
    "below", "as follows", "following", "listed", "in particular",
    "support", "and", "or", "furthermore", "additionally", "moreover",
    "in addition",
)

#: Imperatives: the verbs that make a statement binding.  Wilson's ARM
#: counts these as a *positive* indicator (a requirement should have
#: exactly one).
IMPERATIVES = (
    "shall", "must", "will", "should", "is required to",
    "are applicable", "responsible for",
)

#: Non-imperative verb forms (NV): verbs that state behaviour without
#: binding force; statements carried only by these are smells.
NON_IMPERATIVE_VERBS = (
    "is", "are", "was", "were", "has", "have", "had", "does", "do",
    "supports", "handles", "allows", "provides", "performs", "enables",
)

#: Conjunctions: each one beyond the first suggests a compound
#: requirement that should be split.
CONJUNCTIONS = (
    "and", "or", "but", "as well as", "both", "also", "then", "unless",
    "whether", "meanwhile", "whereas", "on the other hand", "otherwise",
)

#: Incompleteness markers: placeholders signalling the statement is not
#: finished (Wilson's "incomplete" indicator).
INCOMPLETE_MARKERS = (
    "tbd", "tba", "tbs", "tbr", "tbc",
    "to be determined", "to be added", "to be specified",
    "to be resolved", "to be confirmed", "to be defined",
    "not defined", "not determined", "but not limited to",
    "as a minimum",
)

#: Reference cues: demand additional reading to understand the statement.
REFERENCE_CUES = (
    "see section", "see table", "see figure", "as defined in",
    "as specified in", "in accordance with", "refer to", "according to",
    "as per", "defined in", "listed in", "per the", "described in",
    "specified in",
)
