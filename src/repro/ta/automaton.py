"""Timed automata: locations, edges, guards, invariants.

An automaton declares named clocks; guards and invariants are
conjunctions of :class:`ClockConstraint` over those names.  Edges carry
an optional synchronization label (UPPAAL-style ``chan!`` emit /
``chan?`` receive) used by :class:`~repro.ta.system.Network` to build
the parallel composition.

:func:`parse_guard` accepts the textual form used throughout the tests
and the PROPAS observer templates: ``"x <= 5 & x - y < 3"``.
"""

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

_OPS = ("<=", ">=", "==", "<", ">")


@dataclass(frozen=True)
class ClockConstraint:
    """One atomic constraint ``left - right OP value``.

    ``right`` is ``None`` for single-clock constraints (``x <= 5``).
    ``op`` is one of ``<``, ``<=``, ``>``, ``>=``, ``==``; equality is
    expanded into two difference bounds by the checker.
    """

    left: str
    op: str
    value: int
    right: Optional[str] = None

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unsupported operator: {self.op!r}")

    def __str__(self) -> str:
        lhs = self.left if self.right is None else f"{self.left} - {self.right}"
        return f"{lhs} {self.op} {self.value}"


_CONSTRAINT = re.compile(
    r"^\s*(?P<left>[A-Za-z_]\w*)\s*"
    r"(?:-\s*(?P<right>[A-Za-z_]\w*)\s*)?"
    r"(?P<op><=|>=|==|<|>)\s*"
    r"(?P<value>-?\d+)\s*$"
)


def parse_guard(text: str) -> Tuple[ClockConstraint, ...]:
    """Parse ``"x <= 5 & x - y < 3"`` into constraints.

    Empty/whitespace text parses to the empty (always true) guard.
    """
    text = text.strip()
    if not text:
        return ()
    constraints = []
    for part in text.split("&"):
        match = _CONSTRAINT.match(part)
        if match is None:
            raise ValueError(f"malformed clock constraint: {part.strip()!r}")
        constraints.append(ClockConstraint(
            left=match.group("left"),
            right=match.group("right"),
            op=match.group("op"),
            value=int(match.group("value")),
        ))
    return tuple(constraints)


@dataclass(frozen=True)
class Location:
    """A control location with an optional invariant.

    ``urgent`` locations forbid time elapse (the checker skips the delay
    step), which the PROPAS observer templates use for instantaneous
    bookkeeping states.
    """

    name: str
    invariant: Tuple[ClockConstraint, ...] = ()
    urgent: bool = False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Edge:
    """A discrete transition.

    Attributes:
        source, target: Location names.
        guard: Conjunction of clock constraints enabling the edge.
        resets: Clock names set to zero when the edge fires.
        sync: Optional channel label: ``"press!"`` emits, ``"press?"``
            receives; ``None`` is an internal step.
        action: Free-form label surfaced in witness traces.
    """

    source: str
    target: str
    guard: Tuple[ClockConstraint, ...] = ()
    resets: Tuple[str, ...] = ()
    sync: Optional[str] = None
    action: str = ""

    @property
    def channel(self) -> Optional[str]:
        if self.sync is None:
            return None
        return self.sync[:-1]

    @property
    def is_emit(self) -> bool:
        return self.sync is not None and self.sync.endswith("!")

    @property
    def is_receive(self) -> bool:
        return self.sync is not None and self.sync.endswith("?")

    def __post_init__(self):
        if self.sync is not None and not (
                self.sync.endswith("!") or self.sync.endswith("?")):
            raise ValueError(
                f"sync must end with ! or ?: {self.sync!r}"
            )


class TimedAutomaton:
    """One automaton: named locations, clocks, and edges.

    Args:
        name: Automaton name; location references in queries are
            ``"Name.location"``.
        clocks: Clock names local to this automaton (the network
            namespaces them as ``"Name.clock"``).
        locations: All locations; the first is initial unless
            *initial* names another.
        edges: Discrete transitions between the declared locations.
    """

    def __init__(self, name: str, clocks: Sequence[str],
                 locations: Sequence[Location], edges: Sequence[Edge],
                 initial: Optional[str] = None):
        self.name = name
        self.clocks = tuple(clocks)
        self.locations: Dict[str, Location] = {}
        for location in locations:
            if location.name in self.locations:
                raise ValueError(f"duplicate location: {location.name!r}")
            self.locations[location.name] = location
        if not self.locations:
            raise ValueError("an automaton needs at least one location")
        self.initial = initial if initial is not None else locations[0].name
        if self.initial not in self.locations:
            raise ValueError(f"unknown initial location: {self.initial!r}")
        self.edges: Tuple[Edge, ...] = tuple(edges)
        self._validate()

    def _validate(self) -> None:
        clock_set = set(self.clocks)
        for edge in self.edges:
            for endpoint in (edge.source, edge.target):
                if endpoint not in self.locations:
                    raise ValueError(
                        f"edge references unknown location {endpoint!r}"
                    )
            for constraint in edge.guard:
                self._check_clocks(constraint, clock_set)
            for clock in edge.resets:
                if clock not in clock_set:
                    raise ValueError(f"reset of undeclared clock {clock!r}")
        for location in self.locations.values():
            for constraint in location.invariant:
                self._check_clocks(constraint, clock_set)

    @staticmethod
    def _check_clocks(constraint: ClockConstraint, clock_set) -> None:
        if constraint.left not in clock_set:
            raise ValueError(f"undeclared clock {constraint.left!r}")
        if constraint.right is not None and constraint.right not in clock_set:
            raise ValueError(f"undeclared clock {constraint.right!r}")

    def outgoing(self, location: str) -> List[Edge]:
        return [edge for edge in self.edges if edge.source == location]

    def max_constant(self) -> int:
        """Largest constant in any guard or invariant (>= 1)."""
        constants = [1]
        for edge in self.edges:
            constants.extend(abs(c.value) for c in edge.guard)
        for location in self.locations.values():
            constants.extend(abs(c.value) for c in location.invariant)
        return max(constants)

    def __repr__(self) -> str:
        return (
            f"TimedAutomaton({self.name!r}, {len(self.locations)} locations, "
            f"{len(self.edges)} edges)"
        )
