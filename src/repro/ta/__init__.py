"""Timed automata and a zone-based model checker (UPPAAL work-alike).

PROPAS generates *observer timed automata* for specification patterns and
verifies them with UPPAAL (D2.7 §2.2.1).  This package is the offline
substitute: networks of timed automata with channel synchronization, DBM
zone abstraction, and a TCTL-subset checker (``E<>``, ``A[]``, ``E[]``,
``A<>``, leads-to).

* :mod:`repro.ta.dbm` — difference bound matrices (the zone algebra).
* :mod:`repro.ta.automaton` — locations, edges, guards, invariants,
  clock declarations, a guard-expression parser.
* :mod:`repro.ta.system` — networks (parallel composition on channels).
* :mod:`repro.ta.checker` — zone-graph exploration, TCTL verdicts,
  witness traces; plus a discrete-time engine for the E6 ablation.
* :mod:`repro.ta.query` — text queries ("A[] not Obs.bad").
"""

from repro.ta.automaton import (
    ClockConstraint,
    Edge,
    Location,
    TimedAutomaton,
    parse_guard,
)
from repro.ta.checker import (
    CheckResult,
    DiscreteTimeChecker,
    ZoneGraphChecker,
)
from repro.ta.dbm import DBM, INF
from repro.ta.query import Query, parse_query
from repro.ta.simulator import SimRun, SimStep, Simulator
from repro.ta.system import Network, NetworkState

__all__ = [
    "CheckResult",
    "ClockConstraint",
    "DBM",
    "DiscreteTimeChecker",
    "Edge",
    "INF",
    "Location",
    "Network",
    "NetworkState",
    "Query",
    "SimRun",
    "SimStep",
    "Simulator",
    "TimedAutomaton",
    "ZoneGraphChecker",
    "parse_guard",
    "parse_query",
]
