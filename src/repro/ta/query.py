"""TCTL query language for the zone-graph checker.

Query forms (UPPAAL surface syntax)::

    E<> expr      -- reachability
    A[] expr      -- safety
    A<> expr      -- liveness (location formulas only)
    E[] expr      -- possibly-always (location formulas only)
    expr --> expr -- leads-to (location formulas only)

Expressions combine atoms with ``not``/``!``, ``and``/``&``,
``or``/``|`` and parentheses.  Atoms are either locations
(``Observer.err``) or clock constraints (``Observer.x <= 5``); the
checker decides clock atoms existentially over a zone.
"""

import re
from dataclasses import dataclass
from typing import Callable, Optional

from repro.ta.automaton import ClockConstraint


@dataclass(frozen=True)
class Atom:
    """A state-formula atom.

    Location atom: ``automaton`` + ``location``; clock atom:
    ``automaton`` + ``constraint`` (over the automaton's local clock
    names); the special atom ``deadlock`` (automaton ``""``) holds in
    states with no discrete successor — UPPAAL's sanity-check atom.
    """

    automaton: str
    location: Optional[str] = None
    constraint: Optional[ClockConstraint] = None

    def __post_init__(self):
        if self.is_deadlock:
            if self.location is not None or self.constraint is not None:
                raise ValueError("deadlock atom carries no operands")
            return
        if (self.location is None) == (self.constraint is None):
            raise ValueError("atom must be a location XOR a constraint")

    @property
    def is_deadlock(self) -> bool:
        return self.automaton == ""

    @property
    def is_location(self) -> bool:
        return self.location is not None

    def __str__(self) -> str:
        if self.is_deadlock:
            return "deadlock"
        if self.is_location:
            return f"{self.automaton}.{self.location}"
        return f"{self.automaton}.{self.constraint}"


#: The singleton deadlock atom.
DEADLOCK = Atom(automaton="")


_NEGATED_OP = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}


class StateFormula:
    """Boolean combination of atoms in negation normal form.

    ``kind`` is one of ``"atom"``, ``"natom"`` (negated atom), ``"and"``,
    ``"or"``.  Negation is applied structurally (:meth:`negate`), so the
    checker only ever evaluates positive/negative literals.
    """

    __slots__ = ("kind", "atom", "left", "right")

    def __init__(self, kind: str, atom: Optional[Atom] = None,
                 left: Optional["StateFormula"] = None,
                 right: Optional["StateFormula"] = None):
        self.kind = kind
        self.atom = atom
        self.left = left
        self.right = right

    @classmethod
    def of(cls, atom: Atom) -> "StateFormula":
        return cls("atom", atom=atom)

    @classmethod
    def conj(cls, left: "StateFormula", right: "StateFormula") -> "StateFormula":
        return cls("and", left=left, right=right)

    @classmethod
    def disj(cls, left: "StateFormula", right: "StateFormula") -> "StateFormula":
        return cls("or", left=left, right=right)

    def negate(self) -> "StateFormula":
        """Structural negation (NNF push-down).

        A negated clock atom flips the comparison operator; a negated
        equality becomes a disjunction of strict inequalities.
        """
        if self.kind == "atom":
            atom = self.atom
            if atom.is_location or atom.is_deadlock:
                return StateFormula("natom", atom=atom)
            constraint = atom.constraint
            if constraint.op == "==":
                below = Atom(atom.automaton, constraint=ClockConstraint(
                    constraint.left, "<", constraint.value, constraint.right))
                above = Atom(atom.automaton, constraint=ClockConstraint(
                    constraint.left, ">", constraint.value, constraint.right))
                return StateFormula.disj(StateFormula.of(below),
                                         StateFormula.of(above))
            flipped = ClockConstraint(
                constraint.left, _NEGATED_OP[constraint.op],
                constraint.value, constraint.right)
            return StateFormula.of(Atom(atom.automaton, constraint=flipped))
        if self.kind == "natom":
            return StateFormula("atom", atom=self.atom)
        if self.kind == "and":
            return StateFormula.disj(self.left.negate(), self.right.negate())
        return StateFormula.conj(self.left.negate(), self.right.negate())

    def evaluate(self, atom_eval: Callable[[Atom], bool]) -> bool:
        """Evaluate with *atom_eval* deciding positive atoms."""
        if self.kind == "atom":
            return atom_eval(self.atom)
        if self.kind == "natom":
            return not atom_eval(self.atom)
        if self.kind == "and":
            return (self.left.evaluate(atom_eval)
                    and self.right.evaluate(atom_eval))
        return (self.left.evaluate(atom_eval)
                or self.right.evaluate(atom_eval))

    def location_only(self) -> bool:
        """True when no clock atoms appear (liveness-safe)."""
        if self.kind in ("atom", "natom"):
            return self.atom.is_location or self.atom.is_deadlock
        return self.left.location_only() and self.right.location_only()

    def __str__(self) -> str:
        if self.kind == "atom":
            return str(self.atom)
        if self.kind == "natom":
            return f"not {self.atom}"
        connective = "and" if self.kind == "and" else "or"
        return f"({self.left} {connective} {self.right})"


@dataclass(frozen=True)
class Query:
    """A parsed query: an operator plus its formula(s)."""

    operator: str  # "E<>", "A[]", "A<>", "E[]", "-->"
    formula: StateFormula
    conclusion: Optional[StateFormula] = None

    def __str__(self) -> str:
        if self.operator == "-->":
            return f"{self.formula} --> {self.conclusion}"
        return f"{self.operator} {self.formula}"


_TOKEN = re.compile(
    r"\s*(?:(?P<op>\(|\)|!|&{1,2}|\|{1,2})"
    r"|(?P<cmp><=|>=|==|<|>)"
    r"|(?P<num>-?\d+)"
    r"|(?P<word>[A-Za-z_][\w.]*))"
)


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                if text[position:].strip():
                    raise ValueError(
                        f"bad query syntax near {text[position:]!r}")
                break
            for kind in ("op", "cmp", "num", "word"):
                value = match.group(kind)
                if value is not None:
                    self.items.append((kind, value))
                    break
            position = match.end()
        self.index = 0

    def peek(self):
        return self.items[self.index] if self.index < len(self.items) else None

    def next(self):
        item = self.peek()
        if item is None:
            raise ValueError(f"unexpected end of query: {self.text!r}")
        self.index += 1
        return item

    def accept_word(self, *words) -> Optional[str]:
        item = self.peek()
        if item is not None and item[0] == "word" and item[1] in words:
            self.index += 1
            return item[1]
        return None

    def accept_op(self, *ops) -> Optional[str]:
        item = self.peek()
        if item is not None and item[0] == "op" and item[1] in ops:
            self.index += 1
            return item[1]
        return None


def parse_query(text: str) -> Query:
    """Parse a full query string into a :class:`Query`."""
    stripped = text.strip()
    for operator in ("E<>", "A[]", "A<>", "E[]"):
        if stripped.startswith(operator):
            formula = parse_state_formula(stripped[len(operator):])
            return Query(operator=operator, formula=formula)
    if "-->" in stripped:
        premise_text, _, conclusion_text = stripped.partition("-->")
        return Query(
            operator="-->",
            formula=parse_state_formula(premise_text),
            conclusion=parse_state_formula(conclusion_text),
        )
    raise ValueError(f"query must start with E<>, A[], A<>, E[] "
                     f"or contain -->: {text!r}")


def parse_state_formula(text: str) -> StateFormula:
    """Parse a bare state formula (no path operator)."""
    tokens = _Tokens(text)
    formula = _parse_or(tokens)
    if tokens.peek() is not None:
        raise ValueError(f"trailing tokens in formula: {text!r}")
    return formula


def _parse_or(tokens: _Tokens) -> StateFormula:
    left = _parse_and(tokens)
    while tokens.accept_op("|", "||") or tokens.accept_word("or"):
        left = StateFormula.disj(left, _parse_and(tokens))
    return left


def _parse_and(tokens: _Tokens) -> StateFormula:
    left = _parse_unary(tokens)
    while tokens.accept_op("&", "&&") or tokens.accept_word("and"):
        left = StateFormula.conj(left, _parse_unary(tokens))
    return left


def _parse_unary(tokens: _Tokens) -> StateFormula:
    if tokens.accept_op("!") or tokens.accept_word("not"):
        return _parse_unary(tokens).negate()
    if tokens.accept_op("("):
        inner = _parse_or(tokens)
        if not tokens.accept_op(")"):
            raise ValueError("missing closing parenthesis in query")
        return inner
    return _parse_atom(tokens)


def _parse_atom(tokens: _Tokens) -> StateFormula:
    kind, value = tokens.next()
    if kind == "word" and value == "deadlock":
        return StateFormula.of(DEADLOCK)
    if kind != "word" or "." not in value:
        raise ValueError(
            f"expected Automaton.location, Automaton.clock or deadlock "
            f"atom, got {value!r}")
    automaton, _, member = value.partition(".")
    item = tokens.peek()
    if item is not None and item[0] == "cmp":
        op = tokens.next()[1]
        number_kind, number = tokens.next()
        if number_kind != "num":
            raise ValueError(f"expected integer after {op!r}, got {number!r}")
        constraint = ClockConstraint(member, op, int(number))
        return StateFormula.of(Atom(automaton, constraint=constraint))
    return StateFormula.of(Atom(automaton, location=member))
