"""Difference Bound Matrices — the zone algebra under the model checker.

A zone over clocks ``x1..xn`` is a conjunction of constraints
``xi - xj ≺ c`` with ``≺ ∈ {<, ≤}``; index 0 is the constant-zero
reference clock.  Bounds are encoded as single integers so comparison
and addition are primitive operations:

    encode(c, strict)  =  2c      for  "< c"
    encode(c, strict)  =  2c + 1  for  "≤ c"

With this encoding a *smaller* integer is a *tighter* bound, and bound
addition is ``b1 + b2 - ((b1 & 1) & (b2 & 1) ... )`` — implemented in
:func:`bound_add`.  ``INF`` is a sentinel larger than any finite bound.

The operations are the textbook set (Bengtsson & Yi, "Timed Automata:
Semantics, Algorithms and Tools"): canonicalization (Floyd-Warshall),
emptiness, ``up`` (delay), ``reset``, ``constrain`` (guard
intersection), inclusion, and max-constant extrapolation for zone-graph
termination.

Storage is a single flat list of ``(n+1)²`` encoded bounds in row-major
order (``m[i*(n+1)+j]`` is the bound on ``xi - xj``): one allocation
per zone, cache-friendly scans, and ``copy``/``key``/``includes`` become
single C-level list operations.  :meth:`DBM.constrain` re-closes
incrementally in O(n²) (every shortest path changed by tightening one
entry passes through that entry); :meth:`DBM.canonicalize_after` is the
single-pivot re-closure used after ``down``.  Full Floyd-Warshall
remains available as :meth:`DBM.canonicalize` / :meth:`DBM
.constrain_full` — the reference implementations the randomized
regression tests (and the E15 baseline mode) compare against.
"""

from typing import List, Optional, Sequence, Tuple, Union

#: Infinity sentinel; must exceed any encoded finite bound we produce.
INF = 2 ** 40

#: Encoded "≤ 0": the tightest bound a canonical diagonal may carry.
LE_ZERO = 1


def encode(value: int, strict: bool) -> int:
    """Encode the bound ``≺ value`` (``<`` when *strict*) as an integer."""
    return 2 * value + (0 if strict else 1)


def decode(bound: int) -> Tuple[int, bool]:
    """Inverse of :func:`encode`: returns ``(value, strict)``."""
    if bound >= INF:
        raise ValueError("cannot decode the infinity sentinel")
    strict = (bound & 1) == 0
    return (bound - (0 if strict else 1)) // 2, strict


def bound_add(b1: int, b2: int) -> int:
    """Tightest bound implied by chaining two difference bounds."""
    if b1 >= INF or b2 >= INF:
        return INF
    # (c1, ≤) + (c2, ≤) = (c1+c2, ≤); any strict operand makes it strict.
    return 2 * ((b1 >> 1) + (b2 >> 1)) + (b1 & b2 & 1)


def bound_str(bound: int) -> str:
    if bound >= INF:
        return "<inf"
    value, strict = decode(bound)
    return f"{'<' if strict else '<='}{value}"


class DBM:
    """A canonical difference bound matrix over *n* clocks.

    ``m`` is the flat row-major bound list; ``m[i*(n+1)+j]`` carries the
    encoded bound on ``xi - xj``.  All mutating operations keep the
    matrix canonical (shortest-path closed) — emptied zones are the one
    exception: once a diagonal goes negative the remaining entries are
    unspecified (but never loosen), so ``is_empty`` stays truthful.
    """

    __slots__ = ("n", "dim", "m")

    def __init__(self, n: int,
                 matrix: Optional[Union[Sequence[int],
                                        Sequence[List[int]]]] = None):
        self.n = n
        self.dim = n + 1
        if matrix is None:
            # The zero zone: every clock equal to 0.
            self.m = [LE_ZERO] * (self.dim * self.dim)
        elif matrix and isinstance(matrix[0], (list, tuple)):
            self.m = [bound for row in matrix for bound in row]
        else:
            self.m = list(matrix)
        if len(self.m) != self.dim * self.dim:
            raise ValueError(
                f"DBM over {n} clocks needs {self.dim * self.dim} bounds, "
                f"got {len(self.m)}")

    # -- construction ---------------------------------------------------------

    @classmethod
    def zero(cls, n: int) -> "DBM":
        """All clocks exactly zero (the initial valuation)."""
        return cls(n)

    @classmethod
    def unconstrained(cls, n: int) -> "DBM":
        """All clock valuations with non-negative clocks."""
        zone = cls(n)
        dim = zone.dim
        for i in range(1, dim):
            base = i * dim
            for j in range(dim):
                if i != j:
                    zone.m[base + j] = INF
        return zone

    def copy(self) -> "DBM":
        clone = DBM.__new__(DBM)
        clone.n = self.n
        clone.dim = self.dim
        clone.m = self.m[:]
        return clone

    def bound(self, i: int, j: int) -> int:
        """The encoded bound on ``xi - xj``."""
        return self.m[i * self.dim + j]

    def rows(self) -> List[List[int]]:
        """The matrix as nested rows (debugging / interop)."""
        dim = self.dim
        return [self.m[i * dim:(i + 1) * dim] for i in range(dim)]

    # -- canonical form and emptiness ------------------------------------------

    def canonicalize(self) -> "DBM":
        """Full Floyd-Warshall closure; returns self for chaining."""
        dim = self.dim
        m = self.m
        for k in range(dim):
            kbase = k * dim
            for i in range(dim):
                ik = m[i * dim + k]
                if ik >= INF:
                    continue
                base = i * dim
                for j in range(dim):
                    kj = m[kbase + j]
                    if kj >= INF:
                        continue
                    candidate = 2 * ((ik >> 1) + (kj >> 1)) + (ik & kj & 1)
                    if candidate < m[base + j]:
                        m[base + j] = candidate
        return self

    def canonicalize_after(self, clock: int) -> "DBM":
        """Single-pivot re-closure: one Floyd-Warshall pass with
        ``k = clock``.

        Sufficient to restore canonical form when only row/column
        *clock* changed on an otherwise-canonical matrix (every newly
        shortened path pivots through *clock*); O(n²) instead of the
        full O(n³) closure.
        """
        dim = self.dim
        m = self.m
        kbase = clock * dim
        for i in range(dim):
            ik = m[i * dim + clock]
            if ik >= INF:
                continue
            base = i * dim
            for j in range(dim):
                kj = m[kbase + j]
                if kj >= INF:
                    continue
                candidate = 2 * ((ik >> 1) + (kj >> 1)) + (ik & kj & 1)
                if candidate < m[base + j]:
                    m[base + j] = candidate
        return self

    def is_empty(self) -> bool:
        """A canonical DBM is empty iff some diagonal entry tightened
        below ``≤ 0`` (a negative cycle)."""
        m = self.m
        step = self.dim + 1
        return any(m[i] < LE_ZERO for i in range(0, len(m), step))

    # -- operations -------------------------------------------------------------

    def up(self) -> "DBM":
        """Delay: remove upper bounds (future closure).  Stays canonical."""
        dim = self.dim
        for i in range(1, dim):
            self.m[i * dim] = INF
        return self

    def down(self) -> "DBM":
        """Past closure: remove lower bounds, re-close through clock 0."""
        dim = self.dim
        m = self.m
        for j in range(1, dim):
            lowest = LE_ZERO
            for i in range(1, dim):
                candidate = m[i * dim + j]
                if candidate < lowest:
                    lowest = candidate
            m[j] = lowest
        # Only row 0 changed: a single pass pivoting on clock 0 restores
        # closure (checked against full Floyd-Warshall by the randomized
        # regression suite).
        return self.canonicalize_after(0)

    def reset(self, clock: int) -> "DBM":
        """Set clock *clock* (1-based) to zero.  Stays canonical."""
        dim = self.dim
        m = self.m
        base = clock * dim
        for j in range(dim):
            m[base + j] = m[j]                    # row 0 -> row clock
            m[j * dim + clock] = m[j * dim]       # column 0 -> column clock
        m[base + clock] = LE_ZERO
        return self

    def constrain(self, i: int, j: int, bound: int) -> "DBM":
        """Intersect with ``xi - xj ≺ c`` (encoded *bound*); re-close
        incrementally.

        Tightening one entry of a canonical matrix only shortens paths
        that traverse the ``i -> j`` edge, so one O(n²) pass over
        ``p -> i -> j -> q`` chains restores canonical form (Bengtsson &
        Yi).  When the reverse bound closes a negative cycle the zone is
        empty: the diagonal records it and the re-closure is skipped.
        """
        dim = self.dim
        m = self.m
        pos = i * dim + j
        if bound >= m[pos]:
            return self
        reverse = m[j * dim + i]
        if reverse < INF:
            cycle = 2 * ((bound >> 1) + (reverse >> 1)) + (bound & reverse & 1)
            if cycle < LE_ZERO:
                m[pos] = bound
                m[i * dim + i] = cycle
                return self
        m[pos] = bound
        jbase = j * dim
        for p in range(dim):
            pbase = p * dim
            pi = m[pbase + i]
            if pi >= INF:
                continue
            head = 2 * ((pi >> 1) + (bound >> 1)) + (pi & bound & 1)
            for q in range(dim):
                jq = m[jbase + q]
                if jq >= INF:
                    continue
                candidate = 2 * ((head >> 1) + (jq >> 1)) + (head & jq & 1)
                if candidate < m[pbase + q]:
                    m[pbase + q] = candidate
        return self

    def constrain_full(self, i: int, j: int, bound: int) -> "DBM":
        """Reference intersection: tighten then run full Floyd-Warshall.

        Semantically identical to :meth:`constrain`; kept as the
        regression baseline and for the E15 ablation's unoptimized mode.
        """
        pos = i * self.dim + j
        if bound < self.m[pos]:
            self.m[pos] = bound
            self.canonicalize()
        return self

    def satisfies(self, i: int, j: int, bound: int) -> bool:
        """Does every valuation in the zone satisfy ``xi - xj ≺ c``?

        True iff adding the *negated* constraint empties the zone.
        The negation of ``xi - xj ≺ c`` is ``xj - xi ≺' -c`` with
        flipped strictness.
        """
        value, strict = decode(bound)
        negated = encode(-value, not strict)
        probe = self.copy().constrain(j, i, negated)
        return probe.is_empty()

    def intersects(self, i: int, j: int, bound: int) -> bool:
        """Does some valuation in the zone satisfy ``xi - xj ≺ c``?"""
        probe = self.copy().constrain(i, j, bound)
        return not probe.is_empty()

    def includes(self, other: "DBM") -> bool:
        """Zone inclusion: every valuation of *other* is in self."""
        return all(theirs <= ours
                   for ours, theirs in zip(self.m, other.m))

    def extrapolate(self, max_constant: int) -> "DBM":
        """Classic max-constant (k) extrapolation for termination.

        Bounds above ``≤ k`` become infinite; lower bounds tighter than
        ``< -k`` relax to ``< -k``.  Re-canonicalizes when changed —
        relaxations can break closure in ways no single pivot repairs,
        so this stays on the full Floyd-Warshall.
        """
        k_upper = encode(max_constant, strict=False)   # ≤ k
        k_lower = encode(-max_constant, strict=True)   # < -k
        dim = self.dim
        m = self.m
        changed = False
        for i in range(dim):
            base = i * dim
            for j in range(dim):
                if i == j:
                    continue
                bound = m[base + j]
                if bound >= INF:
                    continue
                if bound > k_upper:
                    m[base + j] = INF
                    changed = True
                elif bound < k_lower:
                    m[base + j] = k_lower
                    changed = True
        if changed:
            self.canonicalize()
        return self

    def extrapolate_fast(self, max_constant: int) -> "DBM":
        """Max-constant extrapolation with targeted re-closure.

        Semantically identical to :meth:`extrapolate` on a canonical
        non-empty DBM, but repairs closure without full Floyd-Warshall.
        Relaxing entries of a closed matrix cannot change any
        *non-relaxed* entry's shortest path (all weights only grew, and
        the stored entry is itself an edge achieving the old distance),
        so only the relaxed entries need repair: iterate
        ``m[i][j] = min_k m[i][k] + m[k][j]`` over the relaxed set to a
        fixpoint.  The fixpoint satisfies the full triangle inequality
        and upper-bounds true closure, hence equals it; typically one or
        two O(|relaxed|·n) passes against O(n³) for the full closure.
        """
        k_upper = encode(max_constant, strict=False)   # ≤ k
        k_lower = encode(-max_constant, strict=True)   # < -k
        dim = self.dim
        m = self.m
        relaxed = []
        for i in range(dim):
            base = i * dim
            for j in range(dim):
                if i == j:
                    continue
                bound = m[base + j]
                if bound >= INF:
                    continue
                if bound > k_upper:
                    m[base + j] = INF
                    relaxed.append((i, j))
                elif bound < k_lower:
                    m[base + j] = k_lower
                    relaxed.append((i, j))
        if not relaxed:
            return self
        if len(relaxed) > dim:
            # Dense relaxation: the per-entry repair does as much work
            # as Floyd-Warshall with INF-row skips; use the full pass.
            return self.canonicalize()
        changed = True
        while changed:
            changed = False
            for i, j in relaxed:
                base = i * dim
                best = m[base + j]
                for k in range(dim):
                    ik = m[base + k]
                    if ik >= INF:
                        continue
                    kj = m[k * dim + j]
                    if kj >= INF:
                        continue
                    candidate = 2 * ((ik >> 1) + (kj >> 1)) + (ik & kj & 1)
                    if candidate < best:
                        best = candidate
                if best < m[base + j]:
                    m[base + j] = best
                    changed = True
        return self

    # -- interop -----------------------------------------------------------------

    def key(self) -> Tuple[int, ...]:
        """Hashable canonical representation for visited-state sets."""
        return tuple(self.m)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DBM) and self.n == other.n and self.m == other.m

    def __hash__(self) -> int:
        return hash(tuple(self.m))

    def __repr__(self) -> str:
        rows = []
        for row in self.rows():
            rows.append(" ".join(f"{bound_str(b):>6}" for b in row))
        return "DBM(\n  " + "\n  ".join(rows) + "\n)"
