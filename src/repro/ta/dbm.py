"""Difference Bound Matrices — the zone algebra under the model checker.

A zone over clocks ``x1..xn`` is a conjunction of constraints
``xi - xj ≺ c`` with ``≺ ∈ {<, ≤}``; index 0 is the constant-zero
reference clock.  Bounds are encoded as single integers so comparison
and addition are primitive operations:

    encode(c, strict)  =  2c      for  "< c"
    encode(c, strict)  =  2c + 1  for  "≤ c"

With this encoding a *smaller* integer is a *tighter* bound, and bound
addition is ``b1 + b2 - ((b1 & 1) & (b2 & 1) ... )`` — implemented in
:func:`bound_add`.  ``INF`` is a sentinel larger than any finite bound.

The operations are the textbook set (Bengtsson & Yi, "Timed Automata:
Semantics, Algorithms and Tools"): canonicalization (Floyd-Warshall),
emptiness, ``up`` (delay), ``reset``, ``constrain`` (guard
intersection), inclusion, and max-constant extrapolation for zone-graph
termination.
"""

from typing import List, Optional, Tuple

#: Infinity sentinel; must exceed any encoded finite bound we produce.
INF = 2 ** 40

#: Encoded "≤ 0": the tightest bound a canonical diagonal may carry.
LE_ZERO = 1


def encode(value: int, strict: bool) -> int:
    """Encode the bound ``≺ value`` (``<`` when *strict*) as an integer."""
    return 2 * value + (0 if strict else 1)


def decode(bound: int) -> Tuple[int, bool]:
    """Inverse of :func:`encode`: returns ``(value, strict)``."""
    if bound >= INF:
        raise ValueError("cannot decode the infinity sentinel")
    strict = (bound & 1) == 0
    return (bound - (0 if strict else 1)) // 2, strict


def bound_add(b1: int, b2: int) -> int:
    """Tightest bound implied by chaining two difference bounds."""
    if b1 >= INF or b2 >= INF:
        return INF
    # (c1, ≤) + (c2, ≤) = (c1+c2, ≤); any strict operand makes it strict.
    value = (b1 >> 1) + (b2 >> 1)
    non_strict = (b1 & 1) and (b2 & 1)
    return 2 * value + (1 if non_strict else 0)


def bound_str(bound: int) -> str:
    if bound >= INF:
        return "<inf"
    value, strict = decode(bound)
    return f"{'<' if strict else '<='}{value}"


class DBM:
    """A canonical difference bound matrix over *n* clocks.

    The matrix ``m[i][j]`` carries the encoded bound on ``xi - xj``.
    All mutating operations keep the matrix canonical (shortest-path
    closed); consumers may therefore read entries directly.
    """

    __slots__ = ("n", "m")

    def __init__(self, n: int, matrix: Optional[List[List[int]]] = None):
        self.n = n
        size = n + 1
        if matrix is not None:
            self.m = [row[:] for row in matrix]
        else:
            # The zero zone: every clock equal to 0.
            self.m = [[LE_ZERO] * size for _ in range(size)]

    # -- construction ---------------------------------------------------------

    @classmethod
    def zero(cls, n: int) -> "DBM":
        """All clocks exactly zero (the initial valuation)."""
        return cls(n)

    @classmethod
    def unconstrained(cls, n: int) -> "DBM":
        """All clock valuations with non-negative clocks."""
        zone = cls(n)
        size = n + 1
        for i in range(size):
            for j in range(size):
                if i == j:
                    zone.m[i][j] = LE_ZERO
                elif i == 0:
                    zone.m[i][j] = LE_ZERO  # 0 - xj <= 0
                else:
                    zone.m[i][j] = INF
        return zone

    def copy(self) -> "DBM":
        return DBM(self.n, self.m)

    # -- canonical form and emptiness ------------------------------------------

    def canonicalize(self) -> "DBM":
        """Floyd-Warshall closure; returns self for chaining."""
        size = self.n + 1
        m = self.m
        for k in range(size):
            row_k = m[k]
            for i in range(size):
                mik = m[i][k]
                if mik >= INF:
                    continue
                row_i = m[i]
                for j in range(size):
                    candidate = bound_add(mik, row_k[j])
                    if candidate < row_i[j]:
                        row_i[j] = candidate
        return self

    def is_empty(self) -> bool:
        """A canonical DBM is empty iff some diagonal entry tightened
        below ``≤ 0`` (a negative cycle)."""
        return any(self.m[i][i] < LE_ZERO for i in range(self.n + 1))

    # -- operations -------------------------------------------------------------

    def up(self) -> "DBM":
        """Delay: remove upper bounds (future closure).  Stays canonical."""
        for i in range(1, self.n + 1):
            self.m[i][0] = INF
        return self

    def down(self) -> "DBM":
        """Past closure: remove lower bounds, then re-canonicalize."""
        for j in range(1, self.n + 1):
            self.m[0][j] = LE_ZERO
            for i in range(1, self.n + 1):
                if self.m[i][j] < self.m[0][j]:
                    self.m[0][j] = self.m[i][j]
        return self.canonicalize()

    def reset(self, clock: int) -> "DBM":
        """Set clock *clock* (1-based) to zero.  Stays canonical."""
        size = self.n + 1
        for j in range(size):
            self.m[clock][j] = self.m[0][j]
            self.m[j][clock] = self.m[j][0]
        self.m[clock][clock] = LE_ZERO
        return self

    def constrain(self, i: int, j: int, bound: int) -> "DBM":
        """Intersect with ``xi - xj ≺ c`` (encoded *bound*); re-close."""
        if bound < self.m[i][j]:
            self.m[i][j] = bound
            self.canonicalize()
        return self

    def satisfies(self, i: int, j: int, bound: int) -> bool:
        """Does every valuation in the zone satisfy ``xi - xj ≺ c``?

        True iff adding the *negated* constraint empties the zone.
        The negation of ``xi - xj ≺ c`` is ``xj - xi ≺' -c`` with
        flipped strictness.
        """
        value, strict = decode(bound)
        negated = encode(-value, not strict)
        probe = self.copy().constrain(j, i, negated)
        return probe.is_empty()

    def intersects(self, i: int, j: int, bound: int) -> bool:
        """Does some valuation in the zone satisfy ``xi - xj ≺ c``?"""
        probe = self.copy().constrain(i, j, bound)
        return not probe.is_empty()

    def includes(self, other: "DBM") -> bool:
        """Zone inclusion: every valuation of *other* is in self."""
        size = self.n + 1
        return all(
            other.m[i][j] <= self.m[i][j]
            for i in range(size) for j in range(size)
        )

    def extrapolate(self, max_constant: int) -> "DBM":
        """Classic max-constant (k) extrapolation for termination.

        Bounds above ``≤ k`` become infinite; lower bounds tighter than
        ``< -k`` relax to ``< -k``.  Re-canonicalizes when changed.
        """
        k_upper = encode(max_constant, strict=False)   # ≤ k
        k_lower = encode(-max_constant, strict=True)   # < -k
        size = self.n + 1
        changed = False
        for i in range(size):
            for j in range(size):
                if i == j:
                    continue
                bound = self.m[i][j]
                if bound >= INF:
                    continue
                if bound > k_upper:
                    self.m[i][j] = INF
                    changed = True
                elif bound < k_lower:
                    self.m[i][j] = k_lower
                    changed = True
        if changed:
            self.canonicalize()
        return self

    # -- interop -----------------------------------------------------------------

    def key(self) -> Tuple[Tuple[int, ...], ...]:
        """Hashable canonical representation for visited-state sets."""
        return tuple(tuple(row) for row in self.m)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DBM) and self.n == other.n and self.m == other.m

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        rows = []
        for i in range(self.n + 1):
            rows.append(" ".join(f"{bound_str(b):>6}" for b in self.m[i]))
        return "DBM(\n  " + "\n  ".join(rows) + "\n)"


