"""Random simulation of timed-automata networks.

Model checking answers "can it happen?"; simulation produces *concrete
runs* — timed traces that feed the trace-judging side of the framework
(TEARS guarded assertions, LTL monitors) and give model authors
something to eyeball.  The simulator steps a network under integer
time: at each state it randomly picks among the enabled discrete steps
and an admissible one-unit delay, recording the run.

Determinism: same network + seed => same run.
"""

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.ta.automaton import ClockConstraint, TimedAutomaton
from repro.ta.system import Network, NetworkState


@dataclass(frozen=True)
class SimStep:
    """One step of a run: a delay tick or a discrete transition."""

    time: int
    kind: str          # "delay" | "action"
    label: str         # "(delay)" or the composed step label
    locations: Tuple[str, ...]


@dataclass
class SimRun:
    """A finite run of the network."""

    steps: List[SimStep] = field(default_factory=list)

    @property
    def duration(self) -> int:
        return self.steps[-1].time if self.steps else 0

    def actions(self) -> List[str]:
        return [step.label for step in self.steps
                if step.kind == "action"]

    def event_trace(self) -> List[set]:
        """The run as an LTL-monitorable trace: one step per discrete
        action, carrying the action label as its proposition."""
        return [{step.label} for step in self.steps
                if step.kind == "action"]

    def timed_samples(self) -> List[Tuple[int, str]]:
        """(time, action) pairs for TEARS-style post-processing."""
        return [(step.time, step.label) for step in self.steps
                if step.kind == "action"]


class Simulator:
    """Random-walk execution of a network under integer time."""

    def __init__(self, network: Network, seed: int = 0):
        self.network = network
        self._rng = random.Random(seed)
        self._cap = network.max_constant() + 1

    # -- semantics (integer time, as the discrete checker) ---------------------

    def _satisfies(self, valuation, automaton: TimedAutomaton,
                   constraint: ClockConstraint) -> bool:
        i, j = self.network.constraint_indices(automaton, constraint)
        left = valuation[i - 1]
        right = 0 if j == 0 else valuation[j - 1]
        difference = left - right
        if left >= self._cap and constraint.right is None:
            difference = max(difference, self._cap)
        op, value = constraint.op, constraint.value
        return {
            "<": difference < value, "<=": difference <= value,
            ">": difference > value, ">=": difference >= value,
            "==": difference == value,
        }[op]

    def _invariant_ok(self, state: NetworkState, valuation) -> bool:
        return all(self._satisfies(valuation, automaton, constraint)
                   for automaton, constraint
                   in self.network.invariants_at(state))

    def _enabled_steps(self, state: NetworkState, valuation):
        enabled = []
        for step in self.network.discrete_steps(state):
            ok = True
            for index, edge in step.edges:
                automaton = self.network.automata[index]
                if not all(self._satisfies(valuation, automaton, c)
                           for c in edge.guard):
                    ok = False
                    break
            if not ok:
                continue
            values = list(valuation)
            for index, edge in step.edges:
                automaton = self.network.automata[index]
                for clock in edge.resets:
                    values[self.network.global_clock(
                        automaton, clock) - 1] = 0
            if self._invariant_ok(step.target, tuple(values)):
                enabled.append((step, tuple(values)))
        return enabled

    # -- driving -----------------------------------------------------------------

    def run(self, max_actions: int = 50,
            max_time: int = 1000) -> SimRun:
        """Simulate until *max_actions* discrete steps, *max_time*
        ticks, or a state with nothing to do (deadlock/time-lock)."""
        state = self.network.initial_state()
        valuation = tuple([0] * self.network.clock_count)
        time = 0
        run = SimRun()
        actions_taken = 0
        while actions_taken < max_actions and time < max_time:
            choices = []
            enabled = self._enabled_steps(state, valuation)
            choices.extend(("action", item) for item in enabled)
            if not self.network.is_urgent(state):
                delayed = tuple(min(v + 1, self._cap) for v in valuation)
                if self._invariant_ok(state, delayed):
                    choices.append(("delay", delayed))
            if not choices:
                break
            kind, payload = choices[self._rng.randrange(len(choices))]
            if kind == "delay":
                valuation = payload
                time += 1
                run.steps.append(SimStep(
                    time=time, kind="delay", label="(delay)",
                    locations=state.locations))
            else:
                step, valuation = payload
                state = step.target
                actions_taken += 1
                run.steps.append(SimStep(
                    time=time, kind="action", label=step.label,
                    locations=state.locations))
        return run
