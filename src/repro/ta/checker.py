"""Zone-graph model checking for networks of timed automata.

:class:`ZoneGraphChecker` explores the simulation graph — pairs of a
discrete :class:`~repro.ta.system.NetworkState` and a canonical
:class:`~repro.ta.dbm.DBM` zone, closed under delay and extrapolated at
the network's max constant — and answers the TCTL subset PROPAS needs:

* ``E<> φ`` — reachability (exact for the supported state formulas);
* ``A[] φ`` — safety, as the dual of reachability;
* ``A<> φ`` — liveness: the reachable ¬φ-subgraph must contain no
  cycle, no deadlock, and no *time-divergent* state (a non-urgent
  state whose invariant leaves every clock unbounded can wait forever
  without ever reaching φ);
* ``E[] φ`` — dual of ``A<>``;
* ``p --> q`` — leads-to: from every reachable p-state, ``A<> q``.

Clock-constraint atoms are decided existentially on a zone ("some
valuation in the zone satisfies the atom"), matching UPPAAL's ``E<>``;
``A[]`` queries negate into that existential form.  Liveness queries are
restricted to location-based formulas, where zone semantics are crisp.

Fast paths (the E15 prevention-plane optimization): guards, invariants
and resets are pre-resolved at construction into flat ``(i, j, encoded
bound)`` operation lists (no per-visit name lookups); discrete-step
enumeration, urgency and per-state invariant lists are memoized by
:class:`NetworkState`; zone intersection uses the DBM's O(n²)
incremental re-closure; and the visited store keys zones by their
canonical hash for O(1) exact-duplicate pruning before the inclusion
scan.  Construct with ``fast=False`` to get the unoptimized reference
paths — full Floyd-Warshall per constraint, fresh enumeration per
visit, linear inclusion scans — which the E15 bench measures the fast
engine against and the equivalence tests compare verdicts with.

:class:`DiscreteTimeChecker` is the ablation engine (experiment E6): it
enumerates integer clock valuations capped at ``max_constant + 1`` and
answers the same reachability/safety queries by explicit-state BFS.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ta.dbm import DBM, INF, encode
from repro.ta.automaton import ClockConstraint, TimedAutomaton
from repro.ta.query import Atom, Query, StateFormula
from repro.ta.system import ComposedStep, Network, NetworkState


@dataclass
class CheckResult:
    """Verdict of one query plus exploration statistics."""

    satisfied: bool
    query: str
    states_explored: int
    witness: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.satisfied

    def __repr__(self) -> str:
        verdict = "satisfied" if self.satisfied else "NOT satisfied"
        return (
            f"<{self.query}: {verdict}, "
            f"{self.states_explored} states>"
        )


def _constraint_ops(network: Network, automaton: TimedAutomaton,
                    constraint: ClockConstraint
                    ) -> Tuple[Tuple[int, int, int], ...]:
    """Resolve one textual constraint to ``(i, j, encoded bound)`` ops.

    Equality expands into both difference bounds; the op tuples feed
    :meth:`DBM.constrain` directly with no further lookups.
    """
    i, j = network.constraint_indices(automaton, constraint)
    op, value = constraint.op, constraint.value
    if op in ("<", "<="):
        return ((i, j, encode(value, strict=(op == "<"))),)
    if op in (">", ">="):
        return ((j, i, encode(-value, strict=(op == ">"))),)
    return ((i, j, encode(value, strict=False)),
            (j, i, encode(-value, strict=False)))


class ZoneGraphChecker:
    """Model checker over one network's zone graph.

    ``fast`` (default) enables the precomputed-table + memoization +
    incremental-closure engine; ``fast=False`` keeps the reference
    implementation for ablation benchmarks and equivalence tests.
    """

    def __init__(self, network: Network, fast: bool = True):
        self.network = network
        self._k = network.max_constant()
        self._fast = fast
        if fast:
            automata = network.automata
            # Pre-resolved guard ops and global reset indices per edge.
            self._guard_ops: Dict[Tuple[int, "object"], tuple] = {}
            self._reset_ids: Dict[Tuple[int, "object"], tuple] = {}
            for index, automaton in enumerate(automata):
                for edge in automaton.edges:
                    key = (index, edge)
                    self._guard_ops[key] = tuple(
                        op for constraint in edge.guard
                        for op in _constraint_ops(network, automaton,
                                                  constraint))
                    self._reset_ids[key] = tuple(
                        network.global_clock(automaton, clock)
                        for clock in edge.resets)
            # Pre-resolved invariant ops per (automaton, location).
            self._loc_inv: List[Dict[str, tuple]] = []
            for automaton in automata:
                table = {}
                for name, location in automaton.locations.items():
                    table[name] = tuple(
                        op for constraint in location.invariant
                        for op in _constraint_ops(network, automaton,
                                                  constraint))
                self._loc_inv.append(table)
            # Per-NetworkState memos, filled lazily during exploration.
            self._state_inv: Dict[NetworkState, tuple] = {}
            self._steps: Dict[NetworkState, Tuple[ComposedStep, ...]] = {}
            self._urgent: Dict[NetworkState, bool] = {}
            # Successor memo: symbolic states are immutable once built,
            # so repeated checks over the same network walk cached edges
            # instead of redoing the DBM algebra.
            self._succ: Dict[Tuple[NetworkState, tuple], tuple] = {}

    # -- symbolic semantics ----------------------------------------------------

    def _apply_constraint(self, zone: DBM, automaton: TimedAutomaton,
                          constraint: ClockConstraint) -> None:
        """Reference path: intersect *zone* with one constraint via full
        re-canonicalization (``fast=False`` mode only)."""
        for i, j, bound in _constraint_ops(self.network, automaton,
                                           constraint):
            zone.constrain_full(i, j, bound)

    def _invariant_ops(self, state: NetworkState) -> tuple:
        ops = self._state_inv.get(state)
        if ops is None:
            parts = []
            for index, table in enumerate(self._loc_inv):
                parts.extend(table[state.location_of(index)])
            ops = tuple(parts)
            self._state_inv[state] = ops
        return ops

    def _apply_invariants(self, zone: DBM, state: NetworkState) -> None:
        if self._fast:
            for i, j, bound in self._invariant_ops(state):
                zone.constrain(i, j, bound)
        else:
            for automaton, constraint in self.network.invariants_at(state):
                self._apply_constraint(zone, automaton, constraint)

    def _steps_from(self, state: NetworkState) -> Tuple[ComposedStep, ...]:
        if not self._fast:
            return tuple(self.network.discrete_steps(state))
        steps = self._steps.get(state)
        if steps is None:
            steps = tuple(self.network.discrete_steps(state))
            self._steps[state] = steps
        return steps

    def _is_urgent(self, state: NetworkState) -> bool:
        if not self._fast:
            return self.network.is_urgent(state)
        urgent = self._urgent.get(state)
        if urgent is None:
            urgent = self.network.is_urgent(state)
            self._urgent[state] = urgent
        return urgent

    def _initial(self) -> Tuple[NetworkState, DBM]:
        state = self.network.initial_state()
        zone = DBM.zero(self.network.clock_count)
        if not self._is_urgent(state):
            zone.up()
        self._apply_invariants(zone, state)
        if self._fast:
            zone.extrapolate_fast(self._k)
        else:
            zone.extrapolate(self._k)
        return state, zone

    def _successors(self, state: NetworkState, zone: DBM
                    ) -> Iterable[Tuple[ComposedStep, NetworkState, DBM]]:
        if not self._fast:
            return self._compute_successors(state, zone)
        memo_key = (state, zone.key())
        cached = self._succ.get(memo_key)
        if cached is None:
            cached = tuple(self._compute_successors(state, zone))
            self._succ[memo_key] = cached
        return cached

    def _compute_successors(self, state: NetworkState, zone: DBM
                            ) -> Iterable[Tuple[ComposedStep, NetworkState,
                                                DBM]]:
        fast = self._fast
        for step in self._steps_from(state):
            successor = zone.copy()
            feasible = True
            for index, edge in step.edges:
                if fast:
                    for i, j, bound in self._guard_ops[(index, edge)]:
                        successor.constrain(i, j, bound)
                else:
                    automaton = self.network.automata[index]
                    for constraint in edge.guard:
                        self._apply_constraint(successor, automaton,
                                               constraint)
                if successor.is_empty():
                    feasible = False
                    break
            if not feasible:
                continue
            for index, edge in step.edges:
                if fast:
                    for clock_id in self._reset_ids[(index, edge)]:
                        successor.reset(clock_id)
                else:
                    automaton = self.network.automata[index]
                    for clock in edge.resets:
                        successor.reset(
                            self.network.global_clock(automaton, clock))
            self._apply_invariants(successor, step.target)
            if successor.is_empty():
                continue
            if not self._is_urgent(step.target):
                successor.up()
                self._apply_invariants(successor, step.target)
                if successor.is_empty():
                    continue
            if fast:
                successor.extrapolate_fast(self._k)
            else:
                successor.extrapolate(self._k)
            yield step, step.target, successor

    def _holds(self, formula: StateFormula, state: NetworkState,
               zone: DBM) -> bool:
        """Existential zone evaluation of a state formula."""
        return formula.evaluate(
            lambda atom: self._atom_holds(atom, state, zone))

    def _atom_holds(self, atom: Atom, state: NetworkState, zone: DBM) -> bool:
        if atom.is_deadlock:
            return not any(True for _ in self._successors(state, zone))
        if atom.is_location:
            index = self.network.automaton_index(atom.automaton)
            return state.location_of(index) == atom.location
        automaton = self.network.automata[
            self.network.automaton_index(atom.automaton)]
        constraint = atom.constraint
        i, j = self.network.constraint_indices(automaton, constraint)
        op, value = constraint.op, constraint.value
        if not self._fast:
            # Reference path: probe with full re-canonicalization.
            probe = zone.copy()
            for pi, pj, bound in _constraint_ops(self.network, automaton,
                                                 constraint):
                probe.constrain_full(pi, pj, bound)
            return not probe.is_empty()
        if op in ("<", "<="):
            return zone.intersects(i, j, encode(value, strict=(op == "<")))
        if op in (">", ">="):
            return zone.intersects(j, i, encode(-value, strict=(op == ">")))
        probe = zone.copy()
        probe.constrain(i, j, encode(value, strict=False))
        probe.constrain(j, i, encode(-value, strict=False))
        return not probe.is_empty()

    # -- exploration -------------------------------------------------------------

    def _explore(self) -> Iterable[Tuple[NetworkState, DBM, List[str]]]:
        """Lazily enumerate reachable symbolic states with witness paths.

        Inclusion-checking: a new zone subsumed by an already-stored
        zone at the same discrete state is pruned.  In fast mode each
        discrete state's zones live in a dict keyed by the zone's
        canonical hash key — repeat zones (the common case) prune in
        O(1) before the inclusion scan runs.
        """
        initial_state, initial_zone = self._initial()
        if self._fast:
            yield from self._explore_fast(initial_state, initial_zone)
            return
        stored: Dict[NetworkState, List[DBM]] = {
            initial_state: [initial_zone]}
        queue = deque([(initial_state, initial_zone, [])])
        yield initial_state, initial_zone, []
        while queue:
            state, zone, path = queue.popleft()
            for step, next_state, next_zone in self._successors(state, zone):
                existing = stored.setdefault(next_state, [])
                if any(old.includes(next_zone) for old in existing):
                    continue
                existing[:] = [old for old in existing
                               if not next_zone.includes(old)]
                existing.append(next_zone)
                next_path = path + [step.label]
                yield next_state, next_zone, next_path
                queue.append((next_state, next_zone, next_path))

    def _explore_fast(self, initial_state: NetworkState, initial_zone: DBM
                      ) -> Iterable[Tuple[NetworkState, DBM, List[str]]]:
        stored: Dict[NetworkState, Dict[tuple, DBM]] = {
            initial_state: {initial_zone.key(): initial_zone}}
        queue = deque([(initial_state, initial_zone, [])])
        yield initial_state, initial_zone, []
        while queue:
            state, zone, path = queue.popleft()
            for step, next_state, next_zone in self._successors(state, zone):
                bucket = stored.setdefault(next_state, {})
                zone_key = next_zone.key()
                if zone_key in bucket:
                    continue
                zones = bucket.values()
                if any(old.includes(next_zone) for old in zones):
                    continue
                subsumed = [key for key, old in bucket.items()
                            if next_zone.includes(old)]
                for key in subsumed:
                    del bucket[key]
                bucket[zone_key] = next_zone
                next_path = path + [step.label]
                yield next_state, next_zone, next_path
                queue.append((next_state, next_zone, next_path))

    # -- queries -----------------------------------------------------------------

    def reachable(self, formula: StateFormula) -> CheckResult:
        """``E<> φ``: is some φ-state reachable?"""
        explored = 0
        for state, zone, path in self._explore():
            explored += 1
            if self._holds(formula, state, zone):
                return CheckResult(True, f"E<> {formula}", explored, path)
        return CheckResult(False, f"E<> {formula}", explored)

    def invariantly(self, formula: StateFormula) -> CheckResult:
        """``A[] φ``: does φ hold in every reachable state?"""
        dual = self.reachable(formula.negate())
        return CheckResult(
            satisfied=not dual.satisfied,
            query=f"A[] {formula}",
            states_explored=dual.states_explored,
            witness=dual.witness,
        )

    def eventually_on_all_paths(self, formula: StateFormula) -> CheckResult:
        """``A<> φ``: every maximal path reaches a φ-state.

        Restricted to location-based formulas (asserted), where a zone
        state either satisfies φ or not, independent of valuation.
        """
        if not formula.location_only():
            raise ValueError(
                "A<> / E[] queries are restricted to location formulas"
            )
        violation = self._find_phi_avoiding_run(formula)
        return CheckResult(
            satisfied=violation is None,
            query=f"A<> {formula}",
            states_explored=self._last_liveness_explored,
            witness=violation or [],
        )

    def possibly_always(self, formula: StateFormula) -> CheckResult:
        """``E[] φ``: some maximal path stays in φ forever."""
        dual = self.eventually_on_all_paths(formula.negate())
        return CheckResult(
            satisfied=not dual.satisfied,
            query=f"E[] {formula}",
            states_explored=dual.states_explored,
            witness=dual.witness,
        )

    def leads_to(self, premise: StateFormula, conclusion: StateFormula
                 ) -> CheckResult:
        """``premise --> conclusion``: AG (premise imply AF conclusion)."""
        if not (premise.location_only() and conclusion.location_only()):
            raise ValueError("leads-to is restricted to location formulas")
        explored = 0
        for state, zone, path in self._explore():
            explored += 1
            if not self._holds(premise, state, zone):
                continue
            run = self._find_phi_avoiding_run(conclusion,
                                              root=(state, zone))
            explored += self._last_liveness_explored
            if run is not None:
                return CheckResult(
                    False, f"{premise} --> {conclusion}", explored,
                    witness=path + run)
        return CheckResult(True, f"{premise} --> {conclusion}", explored)

    def check(self, query: Query) -> CheckResult:
        """Dispatch a parsed :class:`~repro.ta.query.Query`."""
        if query.operator == "E<>":
            return self.reachable(query.formula)
        if query.operator == "A[]":
            return self.invariantly(query.formula)
        if query.operator == "A<>":
            return self.eventually_on_all_paths(query.formula)
        if query.operator == "E[]":
            return self.possibly_always(query.formula)
        if query.operator == "-->":
            return self.leads_to(query.formula, query.conclusion)
        raise ValueError(f"unsupported operator: {query.operator!r}")

    # -- liveness core -------------------------------------------------------------

    _last_liveness_explored: int = 0

    def _find_phi_avoiding_run(self, formula: StateFormula,
                               root: Optional[Tuple[NetworkState, DBM]] = None
                               ) -> Optional[List[str]]:
        """Find a maximal run avoiding φ: a cycle or a deadlock inside
        the ¬φ-subgraph.  Returns its step labels, or None.
        """
        if root is None:
            root = self._initial()
        root_state, root_zone = root
        self._last_liveness_explored = 0
        if self._holds(formula, root_state, root_zone):
            return None
        if self._time_divergent(root_state, root_zone):
            return ["(time divergence)"]
        # Iterative DFS with an explicit on-stack set for cycle detection.
        Key = Tuple[NetworkState, tuple]
        root_key: Key = (root_state, root_zone.key())
        visited: Set[Key] = set()
        on_stack: Set[Key] = set()
        # Frames: (key, state, zone, successor iterator, labels-so-far).
        stack = [(root_key, root_state, root_zone,
                  iter(list(self._successors(root_state, root_zone))), [])]
        visited.add(root_key)
        on_stack.add(root_key)
        self._last_liveness_explored += 1
        while stack:
            key, state, zone, successors, labels = stack[-1]
            advanced = False
            for step, next_state, next_zone in successors:
                if self._holds(formula, next_state, next_zone):
                    continue  # this branch reaches φ at the next state
                if self._time_divergent(next_state, next_zone):
                    return labels + [step.label, "(time divergence)"]
                next_key: Key = (next_state, next_zone.key())
                if next_key in on_stack:
                    return labels + [step.label, "(cycle)"]
                if next_key in visited:
                    continue
                visited.add(next_key)
                on_stack.add(next_key)
                self._last_liveness_explored += 1
                stack.append((
                    next_key, next_state, next_zone,
                    iter(list(self._successors(next_state, next_zone))),
                    labels + [step.label],
                ))
                advanced = True
                break
            if advanced:
                continue
            # All successors examined: deadlock check on the full graph.
            if not any(True for _ in self._successors(state, zone)):
                return labels + ["(deadlock)"]
            stack.pop()
            on_stack.discard(key)
        return None

    def _time_divergent(self, state: NetworkState, zone: DBM) -> bool:
        """Can the system wait forever in *state*?

        True for a non-urgent state whose (delay-closed, invariant-
        intersected) zone leaves every clock unbounded above — nothing
        ever forces a transition, so staying put is a maximal run.
        Invariant bounds never exceed the extrapolation constant, so
        extrapolation cannot fake unboundedness here.
        """
        if self._is_urgent(state):
            return False
        n = zone.n
        if n == 0:
            return True  # no clocks: delay is always possible
        return all(zone.bound(i, 0) >= INF for i in range(1, n + 1))


class DiscreteTimeChecker:
    """Explicit-state integer-time engine (the E6 ablation baseline).

    Clocks take integer values capped at ``max_constant + 1`` (values
    beyond the cap are indistinguishable by any guard).  Supports
    reachability and safety; liveness is out of scope for the baseline.
    """

    def __init__(self, network: Network):
        self.network = network
        self._cap = network.max_constant() + 1

    def _satisfies(self, valuation: Tuple[int, ...],
                   automaton: TimedAutomaton,
                   constraint: ClockConstraint) -> bool:
        i, j = self.network.constraint_indices(automaton, constraint)
        left = valuation[i - 1]
        right = 0 if j == 0 else valuation[j - 1]
        difference = left - right
        op, value = constraint.op, constraint.value
        # Capped values saturate: treat cap as "anything >= cap".
        if left >= self._cap and constraint.right is None:
            difference = max(difference, self._cap)
        return {
            "<": difference < value,
            "<=": difference <= value,
            ">": difference > value,
            ">=": difference >= value,
            "==": difference == value,
        }[op]

    def _invariant_ok(self, state: NetworkState,
                      valuation: Tuple[int, ...]) -> bool:
        return all(
            self._satisfies(valuation, automaton, constraint)
            for automaton, constraint in self.network.invariants_at(state)
        )

    def _successors(self, state: NetworkState, valuation: Tuple[int, ...]
                    ) -> Iterable[Tuple[str, NetworkState, Tuple[int, ...]]]:
        # Delay by one tick.
        if not self.network.is_urgent(state):
            delayed = tuple(min(v + 1, self._cap) for v in valuation)
            if self._invariant_ok(state, delayed):
                yield "(delay)", state, delayed
        # Discrete steps.
        for step in self.network.discrete_steps(state):
            enabled = True
            for index, edge in step.edges:
                automaton = self.network.automata[index]
                if not all(self._satisfies(valuation, automaton, c)
                           for c in edge.guard):
                    enabled = False
                    break
            if not enabled:
                continue
            values = list(valuation)
            for index, edge in step.edges:
                automaton = self.network.automata[index]
                for clock in edge.resets:
                    values[self.network.global_clock(automaton, clock) - 1] = 0
            next_valuation = tuple(values)
            if not self._invariant_ok(step.target, next_valuation):
                continue
            yield step.label, step.target, next_valuation

    def _holds(self, formula: StateFormula, state: NetworkState,
               valuation: Tuple[int, ...]) -> bool:
        def atom_eval(atom: Atom) -> bool:
            if atom.is_deadlock:
                return self._is_deadlocked(state, valuation)
            if atom.is_location:
                index = self.network.automaton_index(atom.automaton)
                return state.location_of(index) == atom.location
            automaton = self.network.automata[
                self.network.automaton_index(atom.automaton)]
            return self._satisfies(valuation, automaton, atom.constraint)
        return formula.evaluate(atom_eval)

    def _is_deadlocked(self, state: NetworkState,
                       valuation: Tuple[int, ...]) -> bool:
        """UPPAAL deadlock: no discrete step enabled now or after any
        admissible delay from this valuation."""
        current = valuation
        for _ in range(self._cap + 1):
            if any(label != "(delay)"
                   for label, _, _ in self._successors(state, current)):
                return False
            delayed = tuple(min(v + 1, self._cap) for v in current)
            if delayed == current:
                break
            if self.network.is_urgent(state) or \
                    not self._invariant_ok(state, delayed):
                break
            current = delayed
        return True

    def reachable(self, formula: StateFormula) -> CheckResult:
        """``E<> φ`` by explicit-state BFS over integer time."""
        initial = (self.network.initial_state(),
                   tuple([0] * self.network.clock_count))
        visited = {initial}
        queue = deque([(initial, [])])
        explored = 0
        while queue:
            (state, valuation), path = queue.popleft()
            explored += 1
            if self._holds(formula, state, valuation):
                return CheckResult(True, f"E<> {formula}", explored, path)
            for label, next_state, next_valuation in self._successors(
                    state, valuation):
                key = (next_state, next_valuation)
                if key in visited:
                    continue
                visited.add(key)
                queue.append((key, path + [label]))
        return CheckResult(False, f"E<> {formula}", explored)

    def invariantly(self, formula: StateFormula) -> CheckResult:
        dual = self.reachable(formula.negate())
        return CheckResult(
            satisfied=not dual.satisfied,
            query=f"A[] {formula}",
            states_explored=dual.states_explored,
            witness=dual.witness,
        )
