"""Networks of timed automata: parallel composition on channels.

A :class:`Network` owns the global clock index (clock names are
namespaced ``"Automaton.clock"``) and enumerates the composed discrete
steps: internal edges interleave, and an emitting edge (``chan!``)
pairs with exactly one receiving edge (``chan?``) in another automaton
— UPPAAL's binary handshake semantics.
"""

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.ta.automaton import ClockConstraint, Edge, TimedAutomaton


@dataclass(frozen=True)
class NetworkState:
    """A discrete network state: one location name per automaton."""

    locations: Tuple[str, ...]

    def location_of(self, index: int) -> str:
        return self.locations[index]


@dataclass(frozen=True)
class ComposedStep:
    """One discrete step of the network.

    ``edges`` holds (automaton_index, edge) pairs — one pair for an
    internal step, two for a channel handshake (emitter first).
    """

    edges: Tuple[Tuple[int, Edge], ...]
    target: NetworkState

    @property
    def label(self) -> str:
        parts = []
        for _, edge in self.edges:
            parts.append(edge.action or edge.sync or
                         f"{edge.source}->{edge.target}")
        return " / ".join(parts)


class Network:
    """Parallel composition of timed automata.

    Args:
        automata: Component automata; names must be unique.
    """

    def __init__(self, automata: Sequence[TimedAutomaton]):
        names = [a.name for a in automata]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate automaton names: {names}")
        self.automata: Tuple[TimedAutomaton, ...] = tuple(automata)
        # Global clock index: 1-based (0 is the DBM reference clock).
        self.clock_index: Dict[str, int] = {}
        for automaton in self.automata:
            for clock in automaton.clocks:
                self.clock_index[f"{automaton.name}.{clock}"] = (
                    len(self.clock_index) + 1)

    @property
    def clock_count(self) -> int:
        return len(self.clock_index)

    def initial_state(self) -> NetworkState:
        return NetworkState(tuple(a.initial for a in self.automata))

    def automaton_index(self, name: str) -> int:
        for index, automaton in enumerate(self.automata):
            if automaton.name == name:
                return index
        raise KeyError(f"no automaton named {name!r}")

    def global_clock(self, automaton: TimedAutomaton, clock: str) -> int:
        return self.clock_index[f"{automaton.name}.{clock}"]

    def constraint_indices(self, automaton: TimedAutomaton,
                           constraint: ClockConstraint) -> Tuple[int, int]:
        """Map a constraint's clock names to global (i, j) DBM indices."""
        i = self.global_clock(automaton, constraint.left)
        j = (0 if constraint.right is None
             else self.global_clock(automaton, constraint.right))
        return i, j

    def max_constant(self) -> int:
        return max(a.max_constant() for a in self.automata)

    def invariants_at(self, state: NetworkState
                      ) -> List[Tuple[TimedAutomaton, ClockConstraint]]:
        """All invariant constraints active in *state*."""
        active = []
        for index, automaton in enumerate(self.automata):
            location = automaton.locations[state.location_of(index)]
            for constraint in location.invariant:
                active.append((automaton, constraint))
        return active

    def is_urgent(self, state: NetworkState) -> bool:
        """Time may not elapse when any component is in an urgent location."""
        return any(
            automaton.locations[state.location_of(index)].urgent
            for index, automaton in enumerate(self.automata)
        )

    def discrete_steps(self, state: NetworkState) -> Iterator[ComposedStep]:
        """Enumerate internal steps and channel handshakes from *state*."""
        # Internal edges.
        for index, automaton in enumerate(self.automata):
            for edge in automaton.outgoing(state.location_of(index)):
                if edge.sync is None:
                    yield ComposedStep(
                        edges=((index, edge),),
                        target=self._advance(state, [(index, edge)]),
                    )
        # Handshakes: every emit pairs with every matching receive in a
        # *different* automaton.
        emits: List[Tuple[int, Edge]] = []
        receives: List[Tuple[int, Edge]] = []
        for index, automaton in enumerate(self.automata):
            for edge in automaton.outgoing(state.location_of(index)):
                if edge.is_emit:
                    emits.append((index, edge))
                elif edge.is_receive:
                    receives.append((index, edge))
        for emit_index, emit_edge in emits:
            for recv_index, recv_edge in receives:
                if emit_index == recv_index:
                    continue
                if emit_edge.channel != recv_edge.channel:
                    continue
                pairs = [(emit_index, emit_edge), (recv_index, recv_edge)]
                yield ComposedStep(
                    edges=tuple(pairs),
                    target=self._advance(state, pairs),
                )

    def _advance(self, state: NetworkState,
                 moves: Sequence[Tuple[int, Edge]]) -> NetworkState:
        locations = list(state.locations)
        for index, edge in moves:
            locations[index] = edge.target
        return NetworkState(tuple(locations))

    def __repr__(self) -> str:
        names = ", ".join(a.name for a in self.automata)
        return f"Network([{names}], {self.clock_count} clocks)"
