"""UPPAAL 4.x XML export for networks of timed automata.

PROPAS emits models "used in various model checkers such as UPPAAL";
this module renders a :class:`~repro.ta.system.Network` as an UPPAAL
``<nta>`` document (templates, locations, transitions, guards,
synchronizations, a system declaration) plus a ``.q`` query file, so a
model built or generated here can be loaded into the real tool.

The export covers the subset our automata use: clocks, conjunctive
guards, invariants, resets, binary channels, urgent locations.
"""

from typing import Iterable, List, Sequence
from xml.sax.saxutils import escape

from repro.ta.automaton import ClockConstraint, TimedAutomaton
from repro.ta.system import Network


def _render_constraints(constraints: Iterable[ClockConstraint]) -> str:
    return " && ".join(str(c) for c in constraints)


def _template_xml(automaton: TimedAutomaton) -> List[str]:
    lines = ["  <template>",
             f"    <name>{escape(automaton.name)}</name>"]
    if automaton.clocks:
        declaration = "clock " + ", ".join(automaton.clocks) + ";"
        lines.append(f"    <declaration>{escape(declaration)}"
                     "</declaration>")
    location_ids = {name: f"id_{automaton.name}_{index}"
                    for index, name in enumerate(automaton.locations)}
    for name, location in automaton.locations.items():
        lines.append(f'    <location id="{location_ids[name]}">')
        lines.append(f"      <name>{escape(name)}</name>")
        if location.invariant:
            invariant = _render_constraints(location.invariant)
            lines.append(
                f'      <label kind="invariant">{escape(invariant)}'
                "</label>")
        if location.urgent:
            lines.append("      <urgent/>")
        lines.append("    </location>")
    lines.append(
        f'    <init ref="{location_ids[automaton.initial]}"/>')
    for edge in automaton.edges:
        lines.append("    <transition>")
        lines.append(f'      <source ref="{location_ids[edge.source]}"/>')
        lines.append(f'      <target ref="{location_ids[edge.target]}"/>')
        if edge.guard:
            guard = _render_constraints(edge.guard)
            lines.append(
                f'      <label kind="guard">{escape(guard)}</label>')
        if edge.sync is not None:
            lines.append(
                f'      <label kind="synchronisation">'
                f"{escape(edge.sync)}</label>")
        if edge.resets:
            assignment = ", ".join(f"{clock} = 0"
                                   for clock in edge.resets)
            lines.append(
                f'      <label kind="assignment">{escape(assignment)}'
                "</label>")
        lines.append("    </transition>")
    lines.append("  </template>")
    return lines


def _channels_of(network: Network) -> List[str]:
    channels = set()
    for automaton in network.automata:
        for edge in automaton.edges:
            if edge.channel is not None:
                channels.add(edge.channel)
    return sorted(channels)


def to_uppaal_xml(network: Network) -> str:
    """Render *network* as an UPPAAL ``<nta>`` XML document."""
    channels = _channels_of(network)
    global_declaration = ""
    if channels:
        global_declaration = "chan " + ", ".join(channels) + ";"
    lines = [
        '<?xml version="1.0" encoding="utf-8"?>',
        "<!DOCTYPE nta PUBLIC '-//Uppaal Team//DTD Flat System 1.1//EN' "
        "'http://www.it.uu.se/research/group/darts/uppaal/flat-1_2.dtd'>",
        "<nta>",
        f"  <declaration>{escape(global_declaration)}</declaration>",
    ]
    for automaton in network.automata:
        lines.extend(_template_xml(automaton))
    instantiations = [
        f"P_{automaton.name} = {automaton.name}();"
        for automaton in network.automata
    ]
    system_line = "system " + ", ".join(
        f"P_{automaton.name}" for automaton in network.automata) + ";"
    system_block = "\n".join(instantiations + [system_line])
    lines.append(f"  <system>{escape(system_block)}</system>")
    lines.append("</nta>")
    return "\n".join(lines)


def to_uppaal_queries(queries: Sequence[str],
                      network: Network) -> str:
    """Render query strings as an UPPAAL ``.q`` file.

    Location atoms are rewritten from ``Name.loc`` to the instantiated
    process name ``P_Name.loc`` used by :func:`to_uppaal_xml`.
    """
    rewritten = []
    for query in queries:
        text = query
        for automaton in network.automata:
            text = text.replace(f"{automaton.name}.",
                                f"P_{automaton.name}.")
        rewritten.append(text)
    return "\n".join(rewritten) + "\n"
