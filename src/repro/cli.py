"""Command-line interface for the VeriDevOps reproduction.

Subcommands map one-to-one to the library's main workflows::

    python -m repro.cli audit --profile ubuntu-default
    python -m repro.cli harden --profile ubuntu-adversarial
    python -m repro.cli smells requirements.csv
    python -m repro.cli formalize "When intrusion is detected, the \\
        gateway shall alert the operator within 5 seconds."
    python -m repro.cli scan --product bash=4.3 --product openssl=1.0.1f
    python -m repro.cli pipeline --profile ubuntu-default

Every subcommand prints a table to stdout and exits non-zero on a
failing verdict (non-compliant audit, failing pipeline), so the CLI
slots into a real CI job the way the paper intends.
"""

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.environment import (
    adversarial_ubuntu_host,
    adversarial_windows_host,
    default_ubuntu_host,
    default_windows_host,
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.environment.host import SimulatedHost

PROFILES: Dict[str, Callable[[], SimulatedHost]] = {
    "win10-default": default_windows_host,
    "win10-hardened": hardened_windows_host,
    "win10-adversarial": adversarial_windows_host,
    "ubuntu-default": default_ubuntu_host,
    "ubuntu-hardened": hardened_ubuntu_host,
    "ubuntu-adversarial": adversarial_ubuntu_host,
}


def _print_rows(rows: Sequence[dict], out) -> None:
    if not rows:
        print("(no rows)", file=out)
        return
    columns = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r[c])) for r in rows))
              for c in columns}
    print("  ".join(str(c).ljust(widths[c]) for c in columns), file=out)
    for row in rows:
        print("  ".join(str(row[c]).ljust(widths[c]) for c in columns),
              file=out)


def _print_json(document, out, status_line: str = "") -> None:
    """Emit one machine-readable JSON document on *out*.

    The document is stdout's only content — stable key order, trailing
    newline — so ``--json`` output pipes cleanly into ``jq`` or the
    schema validator; any human status line moves to stderr.  Every
    ``--json`` code path goes through here (``pipeline``, ``reqs``),
    keeping the JSON contract in one place.
    """
    import json as json_mod

    print(json_mod.dumps(document, indent=1, sort_keys=True), file=out)
    if status_line:
        print(status_line, file=sys.stderr)


def _host_for(profile: str) -> SimulatedHost:
    try:
        return PROFILES[profile]()
    except KeyError:
        raise SystemExit(
            f"unknown profile {profile!r}; choose from "
            f"{', '.join(sorted(PROFILES))}")


# -- subcommands -------------------------------------------------------------------


def cmd_audit(args, out) -> int:
    """Check a host profile against the STIG catalogue (read-only)."""
    from repro.rqcode import default_catalog

    host = _host_for(args.profile)
    report = default_catalog().check_host(host)
    _print_rows(report.rows(), out)
    print(report.summary(), file=out)
    return 0 if report.compliance_ratio >= 1.0 else 1


def cmd_harden(args, out) -> int:
    """Run the check/enforce/re-check campaign on a host profile."""
    from repro.rqcode import default_catalog

    host = _host_for(args.profile)
    report = default_catalog().harden_host(host)
    _print_rows(report.rows(), out)
    print(report.summary(), file=out)
    return 0 if report.compliance_ratio >= 1.0 else 1


def cmd_smells(args, out) -> int:
    """NALABS smell analysis of a requirements CSV (REQ ID, Text)."""
    from repro.nalabs import NalabsAnalyzer

    with open(args.csv_file) as handle:
        report = NalabsAnalyzer().analyze_csv(
            handle.read(), id_column=args.id_column,
            text_column=args.text_column)
    rows = [
        {"req": r.req_id,
         "smells": ", ".join(r.flagged_metrics) or "-"}
        for r in report.reports
    ]
    _print_rows(rows, out)
    print(f"{report.smelly_count}/{report.total} requirements smelly",
          file=out)
    threshold = args.max_smelly_ratio
    return 0 if report.smelly_count <= threshold * report.total else 1


def cmd_formalize(args, out) -> int:
    """Match one statement against the RESA boilerplates and render
    the formal artifacts."""
    from repro.resa import BoilerplateMatchError, match_boilerplate, \
        to_pattern
    from repro.specpatterns import to_ltl, to_tctl
    from repro.specpatterns.ltl_mappings import PatternScopeUnsupported

    try:
        structured = match_boilerplate("CLI", args.statement)
    except BoilerplateMatchError:
        print("no boilerplate match — rewrite the statement", file=out)
        return 1
    pattern, scope = to_pattern(structured)
    print(f"boilerplate: {structured.boilerplate_id}", file=out)
    print(f"pattern    : ({pattern}) ({scope})", file=out)
    try:
        print(f"LTL        : {to_ltl(pattern, scope)}", file=out)
    except PatternScopeUnsupported:
        print("LTL        : (outside the catalogue's LTL table)", file=out)
    print(f"TCTL       : {to_tctl(pattern, scope)}", file=out)
    return 0


def cmd_scan(args, out) -> int:
    """Scan a software inventory against the vulnerability database."""
    from repro.vulndb import (
        RequirementGenerator,
        Severity,
        SoftwareInventory,
        bundled_database,
    )

    products = {}
    for spec in args.product:
        name, _, version = spec.partition("=")
        if not version:
            raise SystemExit(f"product spec must be name=version: {spec!r}")
        products[name] = version
    inventory = SoftwareInventory.of(args.host_name, args.platform,
                                     products)
    generator = RequirementGenerator(
        bundled_database(), min_severity=Severity[args.min_severity])
    report = generator.generate(inventory)
    rows = [
        {"req": r.req_id, "severity": r.severity.value,
         "pattern": r.pattern_family, "cve": r.source_cve,
         "text": r.text[:60]}
        for r in report.requirements
    ]
    _print_rows(rows, out)
    print(f"{len(report.matched)} matches -> "
          f"{len(report.requirements)} requirements", file=out)
    return 0 if not args.fail_on_findings or not report.requirements else 1


def cmd_gap(args, out) -> int:
    """IEC 62443 gap analysis of a host profile at a target level."""
    from repro.rqcode import default_catalog
    from repro.standards import GapAnalysis, SecurityLevel, SrStatus

    host = _host_for(args.profile)
    level = SecurityLevel(args.level)
    report = GapAnalysis(default_catalog()).analyze(host, level)
    _print_rows(report.rows(), out)
    print(
        f"coverage (evidenced SRs): {report.coverage:.0%}; "
        f"unmapped: {report.count(SrStatus.UNMAPPED)}", file=out)
    return 0 if report.coverage >= 1.0 else 1


def cmd_report(args, out) -> int:
    """Run the prevention pipeline and write the Markdown report."""
    from repro.core import VeriDevOpsOrchestrator, report_for_cycle

    host = _host_for(args.profile)
    orchestrator = VeriDevOpsOrchestrator()
    orchestrator.ingest_standards(host.os_family)
    run = orchestrator.run_prevention([host])
    markdown = report_for_cycle(
        orchestrator, run, title=f"{host.name} security report").render()
    if args.output == "-":
        print(markdown, file=out)
    else:
        with open(args.output, "w") as handle:
            handle.write(markdown)
        print(f"report written to {args.output}", file=out)
    return 0 if run.passed else 1


def cmd_soc(args, out) -> int:
    """Run the SOC runtime over a synthetic fleet drift scenario.

    Builds a hardened fleet, arms the sharded concurrent protection
    service, injects a seeded storm of drift (and benign) events,
    drains deterministically, and prints the incident + metrics report.
    With ``--chaos-plan`` the run additionally injects the plan's
    deterministic faults and finishes with a reconcile sweep.
    """
    import random

    from repro.core.fleet import Fleet
    from repro.environment import (
        hardened_ubuntu_host as ubuntu,
        hardened_windows_host as windows,
    )
    from repro.rqcode import default_catalog
    from repro.soc import Backpressure, render_json, render_report

    if args.hosts < 1:
        raise SystemExit("repro soc: --hosts must be >= 1")
    if args.shards < 1:
        raise SystemExit("repro soc: --shards must be >= 1")
    if args.backend == "process" and args.policy == "drop-oldest":
        raise SystemExit("repro soc: --backend process supports "
                         "--policy block or reject (drop-oldest needs "
                         "the thread backend)")
    chaos = None
    if args.chaos_plan:
        from repro.chaos import ChaosController, FaultPlan, FaultPlanError

        try:
            with open(args.chaos_plan) as handle:
                plan = FaultPlan.from_json(handle.read())
        except OSError as exc:
            raise SystemExit(
                f"repro soc: cannot read chaos plan "
                f"{args.chaos_plan!r}: {exc.strerror or exc}")
        except FaultPlanError as exc:
            raise SystemExit(
                f"repro soc: invalid chaos plan {args.chaos_plan!r}: "
                f"{exc}")
        chaos = ChaosController(plan)
    # With --json, stdout is the machine-readable document alone;
    # human status lines move to stderr so the output pipes cleanly.
    status = sys.stderr if args.json else out
    if chaos is not None:
        print(f"chaos plan: {plan.describe()}", file=status)
    fleet = Fleet("soc-cli", default_catalog())
    for index in range(args.hosts):
        if args.windows_every and index % args.windows_every == 0:
            fleet.add(windows(f"win-{index:02d}"))
        else:
            fleet.add(ubuntu(f"host-{index:02d}"))
    service = fleet.arm_soc(
        shards=args.shards,
        queue_capacity=args.queue_capacity,
        policy=Backpressure(args.policy),
        seed=args.seed,
        chaos=chaos,
        backend=args.backend,
    )
    rng = random.Random(args.seed)
    ubuntu_drifts = ("nis", "rsh-server", "telnetd")
    windows_subcategories = ("Logon", "Account Lockout", "Special Logon")
    try:
        for _ in range(args.drifts):
            host = rng.choice(fleet.hosts())
            for _ in range(args.noise):
                host.events.emit("app.heartbeat")
            if host.os_family == "windows":
                host.drift_audit_policy(rng.choice(windows_subcategories))
            else:
                host.drift_install_package(rng.choice(ubuntu_drifts))
            # Drain between injections: a host is never re-drifted
            # while its own repair is in flight, so event timestamps
            # (and the incident table) are a pure function of the seed.
            service.drain()
    finally:
        service.stop()
    if chaos is not None:
        # The degradation ladder's last rung: sweep hosts whose
        # event-driven repair was eaten by injected faults.
        repaired = service.reconcile()
        print(f"reconcile: {repaired} repair(s); "
              f"{chaos.injection_count()} fault(s) injected; "
              f"decisions digest {chaos.decisions_digest()[:16]}",
              file=status)
    if args.json:
        print(render_json(service), file=out)
    else:
        print(render_report(service,
                            title=f"SOC run over {len(fleet)} hosts "
                                  f"/ {args.shards} shards"), file=out)
    posture = fleet.audit()
    print(f"posture after run: worst {posture.worst_ratio:.0%}, "
          f"mean {posture.mean_ratio:.0%}", file=status)
    return 0 if posture.worst_ratio >= 1.0 else 1


def _build_cache(args):
    """The tiered verification cache the pipeline flags describe.

    ``--cache`` attaches the local bucket store, ``--shared-cache``
    the fleet-shared remote, and ``--cache-tier`` caps the stack
    (``memory`` runs cacheless-but-memoized, ``local`` ignores a
    remote, ``shared`` requires one).  No flags, no cache.
    """
    tier = getattr(args, "cache_tier", None)
    shared = getattr(args, "shared_cache", None)
    if not (args.cache or shared or tier):
        return None
    from repro.prevention import VerificationCache

    if tier == "shared" and not shared:
        raise SystemExit("repro pipeline: --cache-tier shared needs "
                         "--shared-cache DIR")
    if tier in (None, "local", "shared") and not args.cache \
            and not shared:
        raise SystemExit("repro pipeline: --cache-tier needs --cache "
                         "or --shared-cache")
    if tier == "local" and not args.cache:
        raise SystemExit("repro pipeline: --cache-tier local needs "
                         "--cache DIR")
    if tier == "memory":
        return VerificationCache(None, tier="memory")
    if shared and not args.cache:
        # Shared-only fleets still need somewhere for the local tier;
        # an ephemeral directory keeps the remote the only persistence.
        import tempfile

        args.cache = tempfile.mkdtemp(prefix="repro-cache-")
    return VerificationCache(args.cache, shared=shared, tier=tier)


def cmd_prevention(args, out) -> int:
    """Prevention-plane tooling; ``fleet`` simulates N concurrent CI
    runs sharing one remote verification cache and reports the
    aggregate warm-hit rate plus the per-run latency tail."""
    from repro.prevention import simulate_fleet

    if args.runs < 1:
        raise SystemExit("repro prevention fleet: --runs must be >= 1")
    report = simulate_fleet(
        runs=args.runs,
        shared_dir=args.shared_cache,
        workdir=args.workdir,
        jobs=args.jobs,
        mode="process" if args.processes else "thread",
        seed_cold=not args.no_seed,
    )
    document = report.to_dict()
    if args.json:
        _print_json(
            document, out,
            status_line=(f"fleet of {document['runs']} ({document['mode']}"
                         f" mode): warm-hit rate "
                         f"{document['warm_hit_rate']:.0%}"))
    else:
        _print_rows(document["per_run"], out)
        latency = document["latency_s"]
        print(f"fleet of {document['runs']} concurrent runs "
              f"({document['mode']} mode): warm-hit rate "
              f"{document['warm_hit_rate']:.0%}, latency p50 "
              f"{latency['p50'] * 1000:.0f}ms / p95 "
              f"{latency['p95'] * 1000:.0f}ms / max "
              f"{latency['max'] * 1000:.0f}ms", file=out)
    ok = report.all_passed and report.verdicts_identical
    return 0 if ok else 1


def cmd_pipeline(args, out) -> int:
    """Run the full prevention pipeline against a host profile.

    ``--jobs N`` wave-schedules pipeline jobs and fans the verification
    queries out to N threads; ``--cache DIR`` makes re-runs incremental
    through the content-addressed verdict cache; ``--shared-cache DIR``
    adds the directory-based remote tier a CI fleet shares (hits are
    attributed per tier in the stats); ``--cache-tier`` caps the tier
    stack; ``--json`` emits the machine-readable run summary (cache
    stats included) on stdout with status lines on stderr, like
    ``repro soc --json``.
    """
    from repro.core import VeriDevOpsOrchestrator
    from repro.prevention import bundled_verification_tasks

    if args.jobs < 1:
        raise SystemExit("repro pipeline: --jobs must be >= 1")
    host = _host_for(args.profile)
    orchestrator = VeriDevOpsOrchestrator()
    orchestrator.ingest_standards(host.os_family)
    if args.requirement:
        orchestrator.ingest_natural_language(args.requirement)
    cache = _build_cache(args)
    run = orchestrator.run_prevention(
        [host],
        verification_tasks=bundled_verification_tasks(),
        max_workers=args.jobs if args.jobs > 1 else None,
        cache=cache,
    )
    if args.json:
        document = {
            "profile": args.profile,
            "passed": run.passed,
            "failed_stage": run.failed_stage,
            "gates": run.gate_rows(),
            "jobs": args.jobs,
            "cache": (run.context.get("verification_cache_stats")
                      if cache is not None else None),
            "cache_tiers": (cache.tier_names()
                            if cache is not None else None),
        }
        _print_json(document, out, status_line=run.summary())
        return 0 if run.passed else 1
    _print_rows(run.gate_rows(), out)
    if cache is not None:
        stats = run.context.get("verification_cache_stats") or {}
        print("verification cache: "
              + ", ".join(f"{key}={value}"
                          for key, value in sorted(stats.items())),
              file=out)
    print(run.summary(), file=out)
    return 0 if run.passed else 1


def _reqs_corpora(registry, frontend: Optional[str]) -> Dict[str, list]:
    """Bundled IR per front-end (one, or all registered)."""
    if frontend:
        try:
            return {frontend: registry.lower_bundled(frontend)}
        except KeyError:
            raise SystemExit(
                f"repro reqs: unknown front-end {frontend!r}; "
                f"registered: {', '.join(registry.names())}")
    return registry.lower_all_bundled()


def _reqs_find(registry, frontend: Optional[str], rid: str):
    """Locate one IR record by id across the bundled corpora."""
    for name, irs in sorted(_reqs_corpora(registry, frontend).items()):
        for ir in irs:
            if ir.rid == rid:
                return name, ir
    raise SystemExit(f"repro reqs: no requirement {rid!r} in the "
                     f"bundled corpora")


def _reqs_lower_stream(registry, args, out) -> int:
    """``reqs lower --stream``: JSON-lines natives in, IR out, live.

    Each stdin line is one JSON value handed to the front-end as a
    native (a JSON string for prose front-ends like ``resa``).  Records
    are emitted as JSON lines *as they lower* — batched incrementally
    through :meth:`FrontendRegistry.lower_iter`, not at end of feed —
    so a downstream re-arm loop can act while the feed is still
    producing.  A malformed line (bad JSON, or a native the adapter or
    the provenance lint rejects) becomes a ``{"rejected": ...}`` line
    for that record only; the rest of the stream flows on.
    """
    import json as json_module
    import sys

    if args.frontend not in registry:
        raise SystemExit(
            f"repro reqs: unknown front-end {args.frontend!r}; "
            f"registered: {', '.join(registry.names())}")

    rejected_lines = [0]

    def natives():
        for line_number, line in enumerate(sys.stdin):
            line = line.strip()
            if not line:
                continue
            try:
                yield json_module.loads(line)
            except ValueError as exc:
                rejected_lines[0] += 1
                print(json_module.dumps(
                    {"rejected": {"frontend": args.frontend,
                                  "line": line_number,
                                  "error": f"bad JSON: {exc}"}}),
                    file=out, flush=True)

    from repro.reqs.ir import Requirement

    lowered = rejected = 0
    for item in registry.lower_iter(args.frontend, natives(),
                                    batch_size=args.batch):
        if isinstance(item, Requirement):
            lowered += 1
            print(json_module.dumps(
                dict(item.to_dict(), fingerprint=item.fingerprint())),
                file=out, flush=True)
        else:
            rejected += 1
            print(json_module.dumps(
                {"rejected": {"frontend": item.frontend,
                              "index": item.index,
                              "error": item.error}}),
                file=out, flush=True)
    print(f"{lowered} requirements lowered from {args.frontend!r}, "
          f"{rejected + rejected_lines[0]} rejected",
          file=sys.stderr)
    return 0


def cmd_reqs(args, out) -> int:
    """Inspect the unified requirements plane.

    ``list`` lowers every registered front-end's bundled corpus into
    the IR and tabulates it; ``show`` prints one record in full;
    ``lower`` dumps one front-end's IR with fingerprints; ``trace``
    walks source -> IR -> enforceable artifacts for one record.  All
    actions accept ``--json``; its output is schema-valid against
    ``schemas/requirement-ir.schema.json`` (the CI smoke pipes
    ``list --json`` straight into the validator).
    """
    from repro.reqs import default_registry

    registry = default_registry()

    if args.action == "list":
        corpora = _reqs_corpora(registry, args.frontend)
        records = [ir for _, irs in sorted(corpora.items()) for ir in irs]
        if args.json:
            _print_json([ir.to_dict() for ir in records], out,
                        status_line=f"{len(records)} requirements from "
                                    f"{len(corpora)} front-end(s)")
            return 0
        rows = [
            {"rid": ir.rid, "frontend": ir.source,
             "target": ir.target_kind, "severity": ir.severity,
             "pattern": (ir.formalization.pattern_kind or "-")
             if ir.formalization else "-",
             "title": ir.title[:48]}
            for ir in records
        ]
        _print_rows(rows, out)
        print(f"{len(records)} requirements from {len(corpora)} "
              f"front-end(s): "
              + ", ".join(f"{name}={len(irs)}"
                          for name, irs in sorted(corpora.items())),
              file=out)
        return 0

    if args.action == "lower" and getattr(args, "stream", False):
        return _reqs_lower_stream(registry, args, out)

    if args.action == "lower":
        try:
            irs = registry.lower_bundled(args.frontend)
        except KeyError:
            raise SystemExit(
                f"repro reqs: unknown front-end {args.frontend!r}; "
                f"registered: {', '.join(registry.names())}")
        if args.json:
            _print_json([dict(ir.to_dict(),
                              fingerprint=ir.fingerprint()) for ir in irs],
                        out,
                        status_line=f"{len(irs)} requirements lowered "
                                    f"from {args.frontend!r}")
            return 0
        rows = [
            {"rid": ir.rid, "fingerprint": ir.fingerprint(),
             "content": ir.content_fingerprint()}
            for ir in irs
        ]
        _print_rows(rows, out)
        print(f"{len(irs)} requirements lowered from "
              f"{args.frontend!r}", file=out)
        return 0

    frontend, ir = _reqs_find(registry, args.frontend, args.rid)

    if args.action == "show":
        if args.json:
            _print_json(ir.to_dict(), out)
            return 0
        print(f"rid       : {ir.rid}", file=out)
        print(f"frontend  : {frontend}", file=out)
        print(f"title     : {ir.title}", file=out)
        print(f"text      : {ir.text}", file=out)
        print(f"target    : {ir.target_kind}", file=out)
        print(f"severity  : {ir.severity}", file=out)
        if ir.formalization is not None:
            pattern, scope = ir.pattern_scope()
            print(f"pattern   : ({pattern}) ({scope})", file=out)
            print(f"LTL       : {ir.formalization.ltl or '-'}", file=out)
            print(f"TCTL      : {ir.formalization.tctl or '-'}", file=out)
        else:
            print("pattern   : -", file=out)
        print(f"tags      : {', '.join(ir.tags) or '-'}", file=out)
        print(f"bindings  : {', '.join(ir.bindings) or '-'}", file=out)
        for index, link in enumerate(ir.provenance):
            print(f"source #{index} : {link.render()}", file=out)
        return 0

    # trace: source -> IR -> enforceable artifacts.  Bindings are
    # RQCODE finding ids by IR contract, so any bound record can raise
    # through the rqcode adapter even if its own front-end cannot.
    host = _host_for(args.profile)
    artifacts = []
    for name in (frontend, "rqcode"):
        try:
            artifacts = [type(artifact).__name__ for artifact
                         in registry.get(name).raise_artifacts(ir, host)]
        except Exception:  # noqa: BLE001 - not every front-end raises
            continue
        break
    chain_digests = ir.provenance_digests()
    document = {
        "rid": ir.rid,
        "frontend": frontend,
        "provenance": [link.to_dict() for link in ir.provenance],
        "provenance_chain": list(chain_digests),
        "fingerprint": ir.fingerprint(),
        "content_fingerprint": ir.content_fingerprint(),
        "ltl": ir.formalization.ltl if ir.formalization else "",
        "tctl": ir.formalization.tctl if ir.formalization else "",
        "bindings": list(ir.bindings),
        "profile": args.profile,
        "artifacts": artifacts,
    }
    if args.json:
        _print_json(document, out)
        return 0
    print(f"{ir.rid} ({frontend})", file=out)
    for index, link in enumerate(ir.provenance):
        print(f"  source #{index}   : {link.render()} "
              f"[{chain_digests[index][:12]}]", file=out)
    print(f"  chain       : "
          + (chain_digests[-1] if chain_digests else "-"), file=out)
    print(f"  IR digest   : {document['fingerprint']}", file=out)
    print(f"  content     : {document['content_fingerprint']}", file=out)
    print(f"  LTL         : {document['ltl'] or '-'}", file=out)
    print(f"  TCTL        : {document['tctl'] or '-'}", file=out)
    print(f"  bindings    : {', '.join(ir.bindings) or '-'}", file=out)
    print(f"  artifacts   : "
          + (", ".join(artifacts) if artifacts
             else f"none raised for {args.profile}"), file=out)
    return 0


def cmd_scenarios(args, out) -> int:
    """Inspect the named bench scenarios.

    ``list`` tabulates the registry; ``describe`` prints one scenario
    in full (topology zones, compiled campaign schedule, shard hints);
    ``emit`` dumps the complete machine-readable scenario document —
    parameters, compiled campaign JSON, zone/conduit structure — the
    form external tooling (or a replay) consumes.
    """
    from repro.scenarios import get_scenario, scenario_names, \
        ScenarioError

    if args.action == "list":
        rows = []
        for name in scenario_names():
            scenario = get_scenario(name)
            campaign = scenario.compile_campaign()
            rows.append({
                "name": scenario.name,
                "kind": scenario.kind,
                "seed": scenario.seed,
                "hosts": scenario.hosts,
                "zones": scenario.zones or "-",
                "stages": ", ".join(s.name for s in campaign.stages),
            })
        if args.json:
            _print_json(rows, out,
                        status_line=f"{len(rows)} scenario(s)")
            return 0
        _print_rows(rows, out)
        print(f"{len(rows)} scenario(s); 'seed-legacy' pins the "
              f"pre-scenario bench fixtures", file=out)
        return 0

    try:
        scenario = get_scenario(args.name)
    except ScenarioError as exc:
        raise SystemExit(f"repro scenarios: {exc.args[0]}")

    if args.action == "emit":
        _print_json(scenario.to_dict(), out,
                    status_line=scenario.describe())
        return 0

    # describe
    campaign = scenario.compile_campaign()
    if args.json:
        _print_json(scenario.to_dict(), out)
        return 0
    print(scenario.describe(), file=out)
    print(f"summary   : {scenario.summary}", file=out)
    print(f"drifts    : " + ", ".join(
        f"{action} {arg}" for action, arg in scenario.drifts), file=out)
    print(f"NL feed   : {len(scenario.nl_requirements)} statement(s)",
          file=out)
    print(f"inventory : " + ", ".join(
        f"{name}={version}"
        for name, version in scenario.inventory), file=out)
    print(f"campaign  : {campaign.describe()}", file=out)
    for stage in campaign.stages:
        print(f"  stage {stage.name}: rounds>={stage.rounds} "
              f"(+<={stage.max_extra_rounds} at {stage.extend_rate}), "
              f"targets={len(stage.target_hosts) or 'fleet'}, "
              f"capec={', '.join(stage.capec_ids) or '-'}", file=out)
    if scenario.generated:
        topology = scenario.topology()
        print(f"topology  : {topology.describe()}", file=out)
        problems = topology.validate()
        print(f"validity  : "
              + ("OK" if not problems else "; ".join(problems)),
              file=out)
        census = topology.shard_census(args.shards)
        for shard in sorted(census):
            zones = ", ".join(f"{zone}={count}" for zone, count
                              in sorted(census[shard].items()))
            print(f"  shard {shard}: {zones}", file=out)
        return 0 if not problems else 1
    return 0


def _sched_journal(path: str):
    from repro.sched.journal import Journal, JournalError

    try:
        return Journal(path)
    except JournalError as exc:
        raise SystemExit(f"repro sched: {exc}")


def _sched_chaos(path):
    if not path:
        return None
    from repro.chaos import ChaosController, FaultPlan, FaultPlanError

    try:
        with open(path) as handle:
            plan = FaultPlan.from_json(handle.read())
    except OSError as exc:
        raise SystemExit(f"repro sched: cannot read chaos plan "
                         f"{path!r}: {exc.strerror or exc}")
    except FaultPlanError as exc:
        raise SystemExit(f"repro sched: invalid chaos plan {path!r}: {exc}")
    return ChaosController(plan)


def cmd_sched(args, out) -> int:
    """Journaled, crash-resumable scheduled runs.

    ``run`` drives the prevention pipeline through a journal-attached
    scheduler (``--crash-after`` / ``--chaos-plan`` inject crashes);
    ``resume`` continues a crashed run from its journal, adopting every
    journaled verdict instead of re-verifying; ``status`` and
    ``replay`` inspect a journal without executing anything.  An
    injected crash exits 3 and leaves the journal resumable.
    """
    if args.action in ("status", "replay"):
        journal = _sched_journal(args.journal)
        if args.action == "status":
            plan = journal.plan() or {}
            finished = journal.finished()
            duplicated = sorted(
                name for name, count
                in journal.completion_counts().items() if count > 1)
            document = {
                "journal": args.journal,
                "entries": len(journal),
                "head": journal.head_digest(),
                "chain_ok": journal.verify(),
                "torn_tail": journal.torn_tail,
                "profile": plan.get("profile"),
                "jobs": plan.get("jobs"),
                "requirements": len((plan.get("ir") or {})
                                    .get("fingerprints", [])),
                "resumes": journal.resumes(),
                "completions": len(journal.completions()),
                "duplicated_completions": duplicated,
                "finished": finished is not None,
                "passed": finished.get("passed") if finished else None,
            }
            if args.json:
                _print_json(document, out)
                return 0
            for key in ("journal", "entries", "head", "chain_ok",
                        "torn_tail", "profile", "jobs", "requirements",
                        "resumes", "completions",
                        "duplicated_completions", "finished", "passed"):
                print(f"{key:24}: {document[key]}", file=out)
            return 0
        # replay: the chain-validated entry history, in order.
        if args.json:
            _print_json([entry.to_dict() for entry in journal.entries],
                        out,
                        status_line=f"{len(journal)} entries; chain "
                                    f"{'ok' if journal.verify() else 'BROKEN'}")
            return 0
        rows = [{"seq": entry.seq, "kind": entry.kind,
                 "task": entry.task or "-", "digest": entry.digest[:12]}
                for entry in journal.entries]
        _print_rows(rows, out)
        print(f"{len(journal)} entries; chain "
              f"{'ok' if journal.verify() else 'BROKEN'}; "
              f"head {journal.head_digest()[:12]}"
              + ("; torn tail dropped" if journal.torn_tail else ""),
              file=out)
        return 0

    # run / resume: build (or rebuild) the journaled prevention run.
    from repro.sched.runner import JournaledPreventionRun, RunPlanError
    from repro.sched.scheduler import SchedulerCrash

    if args.action == "resume":
        journal = _sched_journal(args.journal)
        plan = journal.plan()
        if plan is None:
            raise SystemExit(
                f"repro sched: journal {args.journal!r} has no recorded "
                f"plan; nothing to resume")
        profile = plan.get("profile")
        jobs = int(plan.get("jobs") or 1)
    else:
        if args.jobs < 1:
            raise SystemExit("repro sched: --jobs must be >= 1")
        profile, jobs = args.profile, args.jobs

    host = _host_for(profile)
    runner = JournaledPreventionRun(
        args.journal, host, profile, jobs=jobs,
        chaos=_sched_chaos(args.chaos_plan),
        crash_after=args.crash_after)
    try:
        verdict = runner.execute()
    except RunPlanError as exc:
        raise SystemExit(f"repro sched: {exc}")
    except SchedulerCrash as exc:
        print(f"repro sched: {exc}", file=sys.stderr)
        print(f"repro sched: journal {args.journal!r} is resumable: "
              f"repro sched resume --journal {args.journal}",
              file=sys.stderr)
        return 3

    status_line = (
        f"sched {'replayed' if verdict['replayed'] else args.action}: "
        f"{'passed' if verdict['passed'] else 'failed'}; "
        f"resumes={verdict['resumes']} adopted={verdict['adopted']}")
    if args.json:
        document = dict(verdict, profile=profile, jobs=jobs,
                        journal=args.journal)
        _print_json(document, out, status_line=status_line)
        return 0 if verdict["passed"] else 1
    _print_rows(verdict["gates"], out)
    print(status_line, file=out)
    return 0 if verdict["passed"] else 1


# -- parser ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VeriDevOps reproduction: security requirements as "
                    "code, from prose to protection.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    audit = subparsers.add_parser(
        "audit", help="check a host profile against the STIG catalogue")
    audit.add_argument("--profile", default="ubuntu-default",
                       help=f"one of {', '.join(sorted(PROFILES))}")
    audit.set_defaults(func=cmd_audit)

    harden = subparsers.add_parser(
        "harden", help="check/enforce/re-check a host profile")
    harden.add_argument("--profile", default="ubuntu-adversarial")
    harden.set_defaults(func=cmd_harden)

    smells = subparsers.add_parser(
        "smells", help="NALABS smell analysis of a requirements CSV")
    smells.add_argument("csv_file")
    smells.add_argument("--id-column", default="REQ ID")
    smells.add_argument("--text-column", default="Text")
    smells.add_argument("--max-smelly-ratio", type=float, default=0.2)
    smells.set_defaults(func=cmd_smells)

    formalize = subparsers.add_parser(
        "formalize", help="RESA-match a statement and render LTL/TCTL")
    formalize.add_argument("statement")
    formalize.set_defaults(func=cmd_formalize)

    scan = subparsers.add_parser(
        "scan", help="scan an inventory against the vulnerability DB")
    scan.add_argument("--product", action="append", default=[],
                      metavar="NAME=VERSION")
    scan.add_argument("--platform", default="ubuntu",
                      choices=("ubuntu", "windows"))
    scan.add_argument("--host-name", default="cli-host")
    scan.add_argument("--min-severity", default="LOW",
                      choices=("LOW", "MEDIUM", "HIGH", "CRITICAL"))
    scan.add_argument("--fail-on-findings", action="store_true")
    scan.set_defaults(func=cmd_scan)

    gap = subparsers.add_parser(
        "gap", help="IEC 62443-3-3 gap analysis of a host profile")
    gap.add_argument("--profile", default="ubuntu-default")
    gap.add_argument("--level", type=int, default=1, choices=(1, 2, 3, 4),
                     help="target security level (SL)")
    gap.set_defaults(func=cmd_gap)

    report = subparsers.add_parser(
        "report", help="run the pipeline and emit the Markdown report")
    report.add_argument("--profile", default="ubuntu-default")
    report.add_argument("--output", default="-",
                        help="output path, or - for stdout")
    report.set_defaults(func=cmd_report)

    soc = subparsers.add_parser(
        "soc", help="run the concurrent SOC runtime on a synthetic fleet")
    soc.add_argument("--hosts", type=int, default=6,
                     help="fleet size (default 6)")
    soc.add_argument("--shards", type=int, default=4,
                     help="worker shard count (default 4)")
    soc.add_argument("--drifts", type=int, default=12,
                     help="drift injections across the fleet (default 12)")
    soc.add_argument("--noise", type=int, default=3,
                     help="benign events emitted before each drift")
    soc.add_argument("--queue-capacity", type=int, default=256)
    soc.add_argument("--policy", default="block",
                     choices=("block", "drop-oldest", "reject"),
                     help="backpressure when a shard queue is full")
    soc.add_argument("--backend", default=None,
                     choices=("thread", "process"),
                     help="shard execution backend (default: "
                          "$REPRO_SOC_BACKEND or thread); 'process' "
                          "runs shards as worker processes over the "
                          "binary event plane")
    soc.add_argument("--seed", type=int, default=0)
    soc.add_argument("--windows-every", type=int, default=3, metavar="N",
                     help="every Nth host is Windows (0 = all Ubuntu)")
    soc.add_argument("--chaos-plan", metavar="PATH", default=None,
                     help="JSON fault plan: inject its deterministic "
                          "faults and reconcile afterwards")
    soc.add_argument("--json", action="store_true",
                     help="emit the machine-readable JSON run summary "
                          "instead of the text report")
    soc.set_defaults(func=cmd_soc)

    pipeline = subparsers.add_parser(
        "pipeline", help="run the prevention pipeline on a host profile")
    pipeline.add_argument("--profile", default="ubuntu-default")
    pipeline.add_argument("--requirement", action="append", default=[],
                          help="extra NL requirement (repeatable)")
    pipeline.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="parallel workers for stage jobs and "
                               "verification queries (default 1: serial)")
    pipeline.add_argument("--cache", metavar="DIR", default=None,
                          help="content-addressed verification cache "
                               "directory; re-runs only re-verify "
                               "changed artifacts")
    pipeline.add_argument("--shared-cache", metavar="DIR", default=None,
                          help="shared remote cache tier: a directory "
                               "of sharded verdict buckets concurrent "
                               "CI runs read through and write back to")
    pipeline.add_argument("--cache-tier", default=None,
                          choices=("memory", "local", "shared"),
                          help="deepest cache tier to engage (default: "
                               "inferred from --cache/--shared-cache)")
    pipeline.add_argument("--json", action="store_true",
                          help="emit the machine-readable JSON run "
                               "summary (cache stats included) instead "
                               "of the text table")
    pipeline.set_defaults(func=cmd_pipeline)

    prevention = subparsers.add_parser(
        "prevention", help="prevention-plane tooling (CI-fleet cache "
                           "simulator)")
    prevention_actions = prevention.add_subparsers(dest="action",
                                                   required=True)
    fleet = prevention_actions.add_parser(
        "fleet", help="run N concurrent pipeline runs against one "
                      "shared verification cache and report warm-hit "
                      "rate + latency tail")
    fleet.add_argument("--runs", type=int, default=4, metavar="N",
                       help="concurrent pipeline runs (default 4)")
    fleet.add_argument("--shared-cache", metavar="DIR", default=None,
                       help="shared remote cache directory (default: "
                            "a fresh directory under --workdir)")
    fleet.add_argument("--workdir", metavar="DIR", default=None,
                       help="where per-run local cache roots live "
                            "(default: a temp directory)")
    fleet.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="verification workers inside each run")
    fleet.add_argument("--processes", action="store_true",
                       help="run fleet members as real child "
                            "processes through the CLI instead of "
                            "threads")
    fleet.add_argument("--no-seed", action="store_true",
                       help="skip the cold seeding run (the fleet "
                            "pays the cold cost itself)")
    fleet.add_argument("--json", action="store_true")
    fleet.set_defaults(func=cmd_prevention)

    reqs = subparsers.add_parser(
        "reqs", help="inspect the unified requirements plane (IR)")
    reqs_actions = reqs.add_subparsers(dest="action", required=True)

    reqs_list = reqs_actions.add_parser(
        "list", help="lower every bundled front-end corpus and tabulate")
    reqs_list.add_argument("--frontend", default=None,
                           help="restrict to one registered front-end")
    reqs_list.add_argument("--json", action="store_true",
                           help="emit the IR records as a JSON array "
                                "(schema-valid; see schemas/)")
    reqs_list.set_defaults(func=cmd_reqs)

    reqs_show = reqs_actions.add_parser(
        "show", help="print one bundled IR record in full")
    reqs_show.add_argument("rid", help="requirement id (see reqs list)")
    reqs_show.add_argument("--frontend", default=None)
    reqs_show.add_argument("--json", action="store_true")
    reqs_show.set_defaults(func=cmd_reqs)

    reqs_lower = reqs_actions.add_parser(
        "lower", help="lower one front-end's corpus, with fingerprints")
    reqs_lower.add_argument(
        "--stream", action="store_true",
        help="read JSON-lines natives from stdin and emit IR records "
             "as they lower (incremental; bad lines are rejected "
             "individually)")
    reqs_lower.add_argument(
        "--batch", type=int, default=8,
        help="streaming batch size (natives lowered per adapter call)")
    reqs_lower.add_argument("frontend",
                            help="registered front-end name")
    reqs_lower.add_argument("--json", action="store_true")
    reqs_lower.set_defaults(func=cmd_reqs)

    reqs_trace = reqs_actions.add_parser(
        "trace", help="walk source -> IR -> artifacts for one record")
    reqs_trace.add_argument("rid")
    reqs_trace.add_argument("--frontend", default=None)
    reqs_trace.add_argument("--profile", default="ubuntu-default",
                            help="host profile for artifact raising")
    reqs_trace.add_argument("--json", action="store_true")
    reqs_trace.set_defaults(func=cmd_reqs)

    scenarios = subparsers.add_parser(
        "scenarios", help="inspect the named bench scenarios")
    scenario_actions = scenarios.add_subparsers(dest="action",
                                                required=True)

    scenarios_list = scenario_actions.add_parser(
        "list", help="tabulate the scenario registry")
    scenarios_list.add_argument("--json", action="store_true")
    scenarios_list.set_defaults(func=cmd_scenarios)

    scenarios_describe = scenario_actions.add_parser(
        "describe", help="print one scenario in full (topology, "
                         "campaign schedule, shard hints)")
    scenarios_describe.add_argument("name",
                                    help="scenario name (see list)")
    scenarios_describe.add_argument("--shards", type=int, default=4,
                                    help="shard count for the "
                                         "placement census (default 4)")
    scenarios_describe.add_argument("--json", action="store_true")
    scenarios_describe.set_defaults(func=cmd_scenarios)

    scenarios_emit = scenario_actions.add_parser(
        "emit", help="dump the machine-readable scenario document "
                     "(campaign JSON + topology) on stdout")
    scenarios_emit.add_argument("name")
    scenarios_emit.set_defaults(func=cmd_scenarios)

    sched = subparsers.add_parser(
        "sched", help="journaled, crash-resumable scheduled runs")
    sched_actions = sched.add_subparsers(dest="action", required=True)

    sched_run = sched_actions.add_parser(
        "run", help="run the prevention pipeline under a journaled "
                    "scheduler")
    sched_run.add_argument("--journal", required=True, metavar="PATH",
                           help="journal file (created if absent)")
    sched_run.add_argument("--profile", default="ubuntu-default")
    sched_run.add_argument("--jobs", type=int, default=1, metavar="N")
    sched_run.add_argument("--crash-after", type=int, default=None,
                           metavar="N",
                           help="inject a scheduler crash after N fresh "
                                "journaled completions (exit 3)")
    sched_run.add_argument("--chaos-plan", metavar="PATH", default=None,
                           help="JSON fault plan with sched.crash / "
                                "sched.truncate rates")
    sched_run.add_argument("--json", action="store_true")
    sched_run.set_defaults(func=cmd_sched)

    sched_resume = sched_actions.add_parser(
        "resume", help="resume a crashed run from its journal "
                       "(profile and jobs come from the recorded plan)")
    sched_resume.add_argument("--journal", required=True, metavar="PATH")
    sched_resume.add_argument("--crash-after", type=int, default=None,
                              metavar="N")
    sched_resume.add_argument("--chaos-plan", metavar="PATH",
                              default=None)
    sched_resume.add_argument("--json", action="store_true")
    sched_resume.set_defaults(func=cmd_sched)

    sched_status = sched_actions.add_parser(
        "status", help="summarize a journal (plan, chain, completions)")
    sched_status.add_argument("--journal", required=True, metavar="PATH")
    sched_status.add_argument("--json", action="store_true")
    sched_status.set_defaults(func=cmd_sched)

    sched_replay = sched_actions.add_parser(
        "replay", help="print the chain-validated journal history")
    sched_replay.add_argument("--journal", required=True, metavar="PATH")
    sched_replay.add_argument("--json", action="store_true")
    sched_replay.set_defaults(func=cmd_sched)

    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":
    sys.exit(main())
