"""repro.sched — the unified, event-sourced work scheduler.

One control plane behind the three execution surfaces that used to
carry their own bespoke machinery:

* **pipeline stages** — ``repro.core.pipeline.Pipeline`` hands each
  stage's jobs to :meth:`Scheduler.run_batch`, which generalizes the
  wave partitioner's conflict rules into a dependency DAG;
* **prevention gate fan-out** — ``repro.core.gates.VerificationGate``
  schedules model-checker calls as *effective* tasks whose verdicts
  are journaled for crash-resume;
* **SOC incident retries** — ``repro.soc.incidents`` runs every
  enforcement through the shared :class:`PolicyRunner` stack
  (retry + backoff + circuit breaker).

``repro.sched.runner`` (the journaled end-to-end prevention run used by
the ``repro sched`` CLI) is intentionally *not* imported here: it
depends on ``repro.core``, which itself imports this package.
"""

from repro.sched.breaker import BreakerState, CircuitBreaker
from repro.sched.events import EventBus, SchedEvent
from repro.sched.journal import (GENESIS, Journal, JournalEntry,
                                 JournalError)
from repro.sched.policy import (BreakerBank, PolicyOutcome, PolicyRunner,
                                RetryPolicy, SINGLE_ATTEMPT)
from repro.sched.scheduler import (BatchReport, Scheduler, SchedulerCrash,
                                   WorkerPool)
from repro.sched.task import (Task, TaskPolicy, TaskResult, TaskState,
                              conflicts, link)

__all__ = [
    "BatchReport",
    "BreakerBank",
    "BreakerState",
    "CircuitBreaker",
    "EventBus",
    "GENESIS",
    "Journal",
    "JournalEntry",
    "JournalError",
    "PolicyOutcome",
    "PolicyRunner",
    "RetryPolicy",
    "SINGLE_ATTEMPT",
    "SchedEvent",
    "Scheduler",
    "SchedulerCrash",
    "Task",
    "TaskPolicy",
    "TaskResult",
    "TaskState",
    "WorkerPool",
    "conflicts",
    "link",
]
