"""Journaled, crash-resumable prevention runs.

:class:`JournaledPreventionRun` is the glue between the scheduler's
journal and the prevention pipeline: it records *what* the run is (the
host profile, worker count, and the requirement-IR fingerprint manifest
the run was built from) as the journal's first entry, drives the
pipeline through a journal-attached :class:`~repro.sched.scheduler.
Scheduler`, and stamps the terminal verdict as ``run.finished``.

Resume is the same call against the same journal path: the recorded
plan is checked against the rebuilt world (same profile, byte-identical
IR manifest — a changed requirement corpus would silently invalidate
the adopted verdicts, so it is refused instead), a ``run.resumed``
entry advances the chaos generation, and the scheduler adopts every
journaled effective completion rather than re-executing it.  A journal
that already carries ``run.finished`` short-circuits: the recorded
verdict is replayed without building a pipeline at all.

This module lives outside :mod:`repro.sched`'s ``__init__`` exports on
purpose: it imports :mod:`repro.core`, which itself builds on
``repro.sched`` — callers (the CLI) import it directly.
"""

from typing import Any, Dict, Optional

from repro.reqs.schema import SCHEMA_ID, SCHEMA_VERSION
from repro.sched.journal import Journal
from repro.sched.scheduler import Scheduler

__all__ = ["JournaledPreventionRun", "RunPlanError", "ir_manifest"]


class RunPlanError(RuntimeError):
    """The journal's recorded plan contradicts this invocation."""


def ir_manifest(repository) -> Dict[str, Any]:
    """The requirement-IR fingerprint manifest of *repository*.

    Versioned with the IR wire shape (``schema_id`` / ``ir_version``,
    see :mod:`repro.reqs.schema`) so a journal written by one build can
    be refused — not misread — by a build with an incompatible IR.
    Fingerprints commit to full records; content digests survive re-id.
    """
    return {
        "schema_id": SCHEMA_ID,
        "ir_version": SCHEMA_VERSION,
        "fingerprints": [
            {"rid": ir.rid,
             "fingerprint": ir.fingerprint(),
             "content": ir.content_fingerprint()}
            for ir in repository.irs()
        ],
    }


class JournaledPreventionRun:
    """One crash-resumable prevention run bound to a journal path."""

    def __init__(self, journal_path: str, host, profile: str,
                 jobs: int = 1, chaos=None,
                 crash_after: Optional[int] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.journal = Journal(journal_path)
        self.host = host
        self.profile = profile
        self.jobs = jobs
        self.chaos = chaos
        self.crash_after = crash_after

    def execute(self) -> Dict[str, Any]:
        """Run (or resume, or replay) to the journal's terminal verdict.

        Returns the verdict document: ``passed`` / ``failed_stage`` /
        ``gates`` plus the journal bookkeeping (``resumes``,
        ``replayed``, ``adopted``).  An injected
        :class:`~repro.sched.scheduler.SchedulerCrash` propagates to
        the caller — the journal is left resumable.
        """
        finished = self.journal.finished()
        if finished is not None:
            return dict(finished, resumes=self.journal.resumes(),
                        replayed=True, adopted=0)

        from repro.core import VeriDevOpsOrchestrator
        from repro.prevention import bundled_verification_tasks

        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_standards(self.host.os_family)
        manifest = ir_manifest(orchestrator.repository)

        recorded = self.journal.plan()
        if recorded is None:
            generation = 0
            self.journal.append("run.plan", data={
                "profile": self.profile, "jobs": self.jobs,
                "ir": manifest})
        else:
            self._check_plan(recorded, manifest)
            generation = self.journal.resumes() + 1
            self.journal.append("run.resumed",
                                data={"generation": generation})

        scheduler = Scheduler(
            workers=self.jobs, journal=self.journal,
            chaos=self.chaos, crash_after=self.crash_after,
            generation=generation)
        adopted = scheduler.adopted_available
        run = orchestrator.run_prevention(
            [self.host],
            verification_tasks=bundled_verification_tasks(),
            max_workers=self.jobs if self.jobs > 1 else None,
            scheduler=scheduler)
        verdict = {"passed": run.passed,
                   "failed_stage": run.failed_stage,
                   "gates": run.gate_rows()}
        self.journal.append("run.finished", data=verdict)
        return dict(verdict, resumes=self.journal.resumes(),
                    replayed=False, adopted=adopted)

    def _check_plan(self, recorded: Dict[str, Any],
                    manifest: Dict[str, Any]) -> None:
        if recorded.get("profile") != self.profile:
            raise RunPlanError(
                f"journal {self.journal.path!r} was started for profile "
                f"{recorded.get('profile')!r}, not {self.profile!r}")
        if recorded.get("ir") != manifest:
            raise RunPlanError(
                f"journal {self.journal.path!r} was started from a "
                f"different requirement corpus (IR fingerprint manifest "
                f"mismatch); adopted verdicts would be stale — start a "
                f"fresh journal")
