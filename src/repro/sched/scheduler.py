"""The event-sourced DAG scheduler.

One scheduler instance drives one run.  Work arrives in *batches*
(a pipeline stage's jobs, a gate's verification fan-out); within a
batch the dependency linker (:func:`repro.sched.task.link`) orders
tasks by the wave partitioner's conflict rules, and completion-driven
dispatch keeps every worker busy with whatever became ready — a slow
task only blocks its true dependents, never a whole wave.

Every transition is published on the :class:`~repro.sched.events.EventBus`.
When a :class:`~repro.sched.journal.Journal` is attached, *effective*
task completions are additionally journaled (durably, before the
completion is acknowledged), and a scheduler built over an existing
journal **adopts** those completions instead of re-executing — the
exactly-once-effective-completion contract that makes crash-resume
safe.

The chaos controller plugs in as a first-class fault seam: immediately
*after* an effective completion is journaled the scheduler consults
``chaos.sched_fault`` (or the deterministic ``crash_after`` budget) and
may raise :class:`SchedulerCrash`, optionally tearing the just-written
journal tail first.  Because the decision is keyed by resume
generation, a resumed run does not deterministically re-crash at the
same completion.
"""

import queue
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Set, Tuple

from repro.sched.events import EventBus
from repro.sched.journal import Journal
from repro.sched.policy import (BreakerBank, PolicyRunner, RetryPolicy,
                                SINGLE_ATTEMPT)
from repro.sched.task import Task, TaskResult, TaskState, link

_STOP = object()


class SchedulerCrash(RuntimeError):
    """An injected scheduler crash: resume from the journal."""


class WorkerPool:
    """Fixed pool of daemon workers with the SOC's drain/stop lifecycle.

    ``submit`` enqueues a thunk; ``drain`` blocks until every accepted
    thunk has run; ``stop`` stops accepting and joins the workers;
    ``abandon`` detaches without joining (the crash path — daemon
    threads die with the process, as a real crash would).
    """

    def __init__(self, workers: int, name: str = "sched"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._queue: "queue.Queue" = queue.Queue()
        self._threads = [
            threading.Thread(target=self._work, daemon=True,
                             name=f"{name}-worker-{index}")
            for index in range(workers)]
        self._outstanding = 0
        self._accepting = True
        self._started = False
        self._cond = threading.Condition()

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for thread in self._threads:
            thread.start()

    def submit(self, thunk) -> None:
        with self._cond:
            if not self._accepting:
                raise RuntimeError("worker pool is not accepting work")
            self._outstanding += 1
        self._queue.put(thunk)

    def _work(self) -> None:
        while True:
            thunk = self._queue.get()
            if thunk is _STOP:
                return
            try:
                thunk()
            finally:
                with self._cond:
                    self._outstanding -= 1
                    self._cond.notify_all()

    def drain(self) -> None:
        """Block until every accepted thunk has finished running."""
        with self._cond:
            while self._outstanding > 0:
                self._cond.wait()

    def stop(self) -> None:
        """Drain, then stop accepting and join the workers."""
        with self._cond:
            self._accepting = False
        self.drain()
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            if thread.is_alive():
                thread.join(timeout=5)

    def abandon(self) -> None:
        """Stop accepting and walk away (crash path; no join)."""
        with self._cond:
            self._accepting = False


@dataclass
class BatchReport:
    """Terminal state of one ``run_batch`` call, in declaration order."""

    results: List[TaskResult]

    @property
    def passed(self) -> bool:
        return all(result.ok for result in self.results)

    def raise_errors(self, only: Optional[tuple] = None) -> None:
        """Re-raise the first captured task exception (declaration order).

        With *only*, exceptions of other types stay contained in their
        results — the pipeline re-raises scheduling lies
        (``ConcurrentWriteError``) but keeps job failures as data.
        """
        for result in self.results:
            if result.error is None:
                continue
            if only is None or isinstance(result.error, only):
                raise result.error


class Scheduler:
    """Runs task batches over a worker pool, journaling effective work."""

    def __init__(self, workers: int = 1,
                 bus: Optional[EventBus] = None,
                 journal: Optional[Journal] = None,
                 chaos=None,
                 crash_after: Optional[int] = None,
                 generation: int = 0,
                 breakers: Optional[BreakerBank] = None,
                 seed: int = 0,
                 sleeper=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.bus = bus if bus is not None else EventBus()
        self.journal = journal
        self.chaos = chaos
        self.crash_after = crash_after
        self.generation = generation
        self.breakers = breakers if breakers is not None else BreakerBank()
        self.seed = seed
        self.sleeper = sleeper
        self._adopted = dict(journal.completions()) if journal else {}
        self._seen_names: Set[str] = set()
        self._fresh_completions = 0
        self._lock = threading.Lock()

    @property
    def adopted_available(self) -> int:
        return len(self._adopted)

    # -- execution -----------------------------------------------------------------

    def run_batch(self, tasks: Sequence[Task],
                  fail_fast: bool = True) -> BatchReport:
        """Run one batch to quiescence; results in declaration order."""
        tasks = list(tasks)
        for task in tasks:
            if task.name in self._seen_names:
                raise ValueError(
                    f"task name {task.name!r} already scheduled this run")
        self._seen_names.update(task.name for task in tasks)
        if not tasks:
            return BatchReport(results=[])
        deps, _ancestors = link(tasks)
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        if self.workers > 1 and len(tasks) > 1:
            self._run_parallel(tasks, deps, results, fail_fast)
        else:
            self._run_serial(tasks, deps, results, fail_fast)
        return BatchReport(results=[result for result in results
                                    if result is not None])

    def _ready(self, index: int, deps, results) -> bool:
        return all(results[dep] is not None and results[dep].ok
                   for dep in deps[index])

    def _blocked_by_failure(self, index: int, deps, results) -> bool:
        return any(results[dep] is not None and not results[dep].ok
                   for dep in deps[index])

    def _run_serial(self, tasks, deps, results, fail_fast) -> None:
        failed = False
        for index, task in enumerate(tasks):
            if results[index] is not None:
                continue
            if (failed and fail_fast) or \
                    self._blocked_by_failure(index, deps, results):
                self._skip(task, results, index)
                continue
            if self._adopt(task, results, index):
                continue
            self.bus.publish("task.started", task=task.name)
            value, error, attempts, ok = self._attempt(task)
            self._finish(task, results, index, value, error, attempts, ok)
            if not results[index].ok:
                failed = True

    def _run_parallel(self, tasks, deps, results, fail_fast) -> None:
        done: "queue.Queue" = queue.Queue()
        pool = WorkerPool(min(self.workers, len(tasks)))
        pool.start()
        dispatched: Set[int] = set()
        inflight = 0
        failed = False
        crashed = False

        def dispatch(index: int) -> None:
            task = tasks[index]
            self.bus.publish("task.started", task=task.name)

            def runner(task=task, index=index):
                # The policy runner contains Exceptions; BaseException
                # (interpreter shutdown etc.) must still reach the
                # coordinator or done.get() would block forever.
                try:
                    outcome = self._attempt(task)
                except BaseException as exc:
                    outcome = (None, exc, 0, False)
                done.put((index, outcome))

            pool.submit(runner)

        def dispatch_ready() -> int:
            count = 0
            for index in range(len(tasks)):
                if index in dispatched or results[index] is not None:
                    continue
                if failed and fail_fast:
                    continue
                if self._blocked_by_failure(index, deps, results):
                    self._skip(tasks[index], results, index)
                    continue
                if self._ready(index, deps, results):
                    if self._adopt(tasks[index], results, index):
                        count += 1      # progress without dispatching
                        continue
                    dispatched.add(index)
                    dispatch(index)
                    count += 1
            return count

        try:
            progressed = dispatch_ready()
            while progressed or inflight:
                inflight = len(dispatched) - sum(
                    1 for index in dispatched if results[index] is not None)
                if inflight == 0:
                    progressed = dispatch_ready()
                    if progressed:
                        continue
                    break
                index, (value, error, attempts, ok) = done.get()
                task = tasks[index]
                self._finish(task, results, index, value, error, attempts, ok)
                if not results[index].ok:
                    failed = True
                progressed = dispatch_ready()
        except SchedulerCrash:
            crashed = True
            raise
        finally:
            if crashed:
                pool.abandon()
            else:
                pool.stop()
            for index, task in enumerate(tasks):
                if results[index] is None:
                    self._skip(task, results, index)

    # -- per-task mechanics --------------------------------------------------------

    def _attempt(self, task: Task) -> Tuple[Any, Optional[BaseException],
                                            int, bool]:
        """Run one task under its policy; returns (value, error, attempts, ok)."""
        policy = task.policy
        retry = policy.retry if policy is not None else SINGLE_ATTEMPT
        breaker = (self.breakers.get(policy.breaker_key)
                   if policy is not None and policy.breaker_key else None)
        runner = PolicyRunner(
            retry=retry,
            sleeper=self.sleeper if self.sleeper is not None else time.sleep,
            on_attempt_failed=lambda index: self.bus.publish(
                "task.retry", task=task.name, data={"attempt": index + 1}),
        )

        def attempt(index: int) -> Tuple[bool, Any]:
            value = task.run()
            ok = task.ok(value) if task.ok is not None else True
            return ok, value

        rng = random.Random(f"{self.seed}:{task.name}")
        outcome = runner.run(attempt, rng=rng, breaker=breaker)
        if not outcome.ran:
            error: Optional[BaseException] = RuntimeError(
                f"task {task.name!r} skipped: circuit breaker open")
            return None, error, 0, False
        return outcome.value, outcome.error, outcome.attempts, outcome.success

    def _adopt(self, task: Task, results, index: int) -> bool:
        """Reuse a journaled completion instead of re-executing."""
        if not task.effective or task.name not in self._adopted:
            return False
        payload = self._adopted[task.name]
        value = task.decode(payload.get("result"))
        results[index] = TaskResult(name=task.name, state=TaskState.ADOPTED,
                                    value=value)
        self.bus.publish("task.adopted", task=task.name)
        return True

    def _skip(self, task: Task, results, index: int) -> None:
        results[index] = TaskResult(name=task.name, state=TaskState.SKIPPED)
        self.bus.publish("task.skipped", task=task.name)

    def _finish(self, task: Task, results, index: int, value,
                error, attempts: int, ok: bool) -> None:
        if ok:
            results[index] = TaskResult(
                name=task.name, state=TaskState.SUCCEEDED, value=value,
                attempts=attempts)
            self.bus.publish("task.completed", task=task.name,
                             data={"attempts": attempts})
            if task.effective:
                self._journal_completion(task, value)
        else:
            results[index] = TaskResult(
                name=task.name, state=TaskState.FAILED, value=value,
                error=error, attempts=attempts)
            self.bus.publish("task.failed", task=task.name,
                             data={"attempts": attempts,
                                   "error": repr(error) if error else ""})

    def _journal_completion(self, task: Task, value) -> None:
        if self.journal is None:
            return
        with self._lock:
            self.journal.append("task.completed", task=task.name,
                                data={"result": task.encode(value)})
            self._fresh_completions += 1
            self._maybe_crash(task)

    def _maybe_crash(self, task: Task) -> None:
        """The chaos seam: fires right after a durable completion."""
        torn = False
        crash = False
        if (self.crash_after is not None
                and self._fresh_completions >= self.crash_after):
            crash = True
        elif self.chaos is not None:
            # Keyed by resume generation so a resumed run draws fresh
            # decisions instead of deterministically re-crashing on the
            # same completion forever.
            fault = self.chaos.sched_fault(
                f"{self.generation}:{task.name}")
            if fault is not None:
                crash = True
                torn = fault.value == "crash-torn"
        if not crash:
            return
        if torn and self.journal is not None:
            self.journal.tear_tail()
        raise SchedulerCrash(
            f"injected crash after completing {task.name!r} "
            f"(generation {self.generation}, torn_tail={torn})")
