"""The scheduler's pub/sub event bus with replayable history.

Every state transition the scheduler makes — task dispatched, retried,
completed, adopted from the journal, skipped — is published as a
:class:`SchedEvent`.  Subscribers (metrics, the CLI's live status, the
tests' invariant checks) observe the run without the scheduler knowing
about them; the append-only history makes a finished run replayable
after the fact, which is what the IEC 62443-style auditability story
asks of pipeline execution.

The bus is in-memory and thread-safe; durable history is the journal's
job (:mod:`repro.sched.journal`), which records the *effective* subset
of these events.
"""

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

Subscriber = Callable[["SchedEvent"], None]


@dataclass(frozen=True)
class SchedEvent:
    """One scheduler state transition."""

    seq: int
    kind: str
    task: str = ""
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "kind": self.kind, "task": self.task,
                "data": dict(self.data)}


class EventBus:
    """Append-only, replayable, thread-safe event stream."""

    def __init__(self):
        self._history: List[SchedEvent] = []
        self._subscribers: Dict[int, Subscriber] = {}
        self._next_handle = 0
        self._lock = threading.Lock()

    def subscribe(self, subscriber: Subscriber) -> int:
        """Register *subscriber* for all future events; returns a handle."""
        with self._lock:
            handle = self._next_handle
            self._next_handle += 1
            self._subscribers[handle] = subscriber
            return handle

    def unsubscribe(self, handle: int) -> None:
        with self._lock:
            self._subscribers.pop(handle, None)

    def publish(self, kind: str, task: str = "",
                data: Optional[Mapping[str, Any]] = None) -> SchedEvent:
        with self._lock:
            event = SchedEvent(seq=len(self._history), kind=kind,
                               task=task, data=dict(data or {}))
            self._history.append(event)
            subscribers = list(self._subscribers.values())
        # Dispatch outside the lock: a subscriber may publish again.
        for subscriber in subscribers:
            subscriber(event)
        return event

    def history(self, kinds: Optional[Iterable[str]] = None) -> List[SchedEvent]:
        with self._lock:
            events = list(self._history)
        if kinds is None:
            return events
        wanted = set(kinds)
        return [event for event in events if event.kind in wanted]

    def replay(self, subscriber: Subscriber,
               kinds: Optional[Iterable[str]] = None) -> int:
        """Feed the recorded history through *subscriber*; returns count."""
        events = self.history(kinds)
        for event in events:
            subscriber(event)
        return len(events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._history)
