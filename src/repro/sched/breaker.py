"""Circuit breaker for repeatedly failing work (the scheduler's and
the SOC's shared failure budget).

A unit of work that keeps failing (a finding whose backend is broken,
a host that re-drifts faster than it can be repaired, a verification
backend that is down) must not consume its worker forever.  The
breaker follows the classic three-state protocol, with the cooldown
measured in *skipped requests* rather than wall-clock time so runs are
deterministic:

* ``CLOSED`` — requests flow; consecutive failures are counted.
* ``OPEN`` — after ``failure_threshold`` consecutive failures the
  breaker trips: requests are skipped (and counted) until ``cooldown``
  of them have been absorbed.
* ``HALF_OPEN`` — exactly one trial request is admitted (a probe
  already in flight makes concurrent :meth:`allow` calls skip, so two
  workers can never double-probe one backend); success closes the
  breaker, failure re-opens it for a fresh, full cooldown.

Grew up as ``repro.soc.breaker``; it moved here when the scheduler
unified the three executor stacks, and the SOC module re-exports it.
"""

import enum
import threading


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Three-state breaker with request-count cooldown."""

    def __init__(self, failure_threshold: int = 3, cooldown: int = 2):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.trips = 0            # times the breaker opened (monotonic)
        self.skipped = 0          # requests absorbed while open (monotonic)
        self._cooldown_left = 0
        self._probe_in_flight = False
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """Should the next request run?  Skips are counted here."""
        with self._lock:
            if self.state is BreakerState.CLOSED:
                return True
            if self.state is BreakerState.HALF_OPEN:
                # Exactly one probe: concurrent callers are absorbed
                # until the in-flight trial records its outcome.
                if self._probe_in_flight:
                    self.skipped += 1
                    return False
                self._probe_in_flight = True
                return True
            # OPEN: absorb this request; move to HALF_OPEN once cooled.
            self.skipped += 1
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.state = BreakerState.HALF_OPEN
            return False

    def record_success(self) -> None:
        with self._lock:
            self.state = BreakerState.CLOSED
            self.consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            self._probe_in_flight = False
            if (self.state is BreakerState.HALF_OPEN
                    or self.consecutive_failures >= self.failure_threshold):
                if self.state is not BreakerState.OPEN:
                    self.trips += 1
                self.state = BreakerState.OPEN
                self._cooldown_left = self.cooldown
