"""Task records and the dependency linker.

A :class:`Task` is one unit of schedulable work: a no-argument thunk
plus the metadata the scheduler needs to order, journal, and retry it.
Dependencies come from two places:

* **explicit edges** — ``deps`` names earlier tasks in the same batch;
* **inferred edges** — the wave partitioner's conflict rules, applied
  pairwise in declaration order: two tasks conflict when they write
  the same key, when a later task reads a key an earlier one writes
  (read-after-write), or when a later task writes a key an earlier one
  reads (write-after-read).  A task with no declared reads *and* no
  declared writes is a barrier: it depends on everything before it and
  everything after depends on it — legacy jobs stay safe by default.

These are exactly the rules ``repro.core.pipeline.plan_waves`` uses;
the scheduler turns them into a DAG instead of greedy waves, so a slow
task only holds back its true dependents, not its whole wave.

**Ephemeral vs effective.**  ``effective=True`` marks a task whose
completion is the run's unit of progress: its (JSON-encodable) result
is journaled, and on resume the scheduler *adopts* the journaled
result instead of re-executing.  Ephemeral tasks (setup, ingestion,
gate bookkeeping) are cheap and deterministic; they re-run on every
resume to rebuild in-memory state and are never journaled.
"""

import enum
from dataclasses import dataclass, field
from typing import (Any, Callable, List, Optional, Sequence, Set, Tuple)

from repro.sched.policy import RetryPolicy


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    ADOPTED = "adopted"         # journaled completion reused on resume
    FAILED = "failed"
    SKIPPED = "skipped"

    @property
    def terminal(self) -> bool:
        return self not in (TaskState.PENDING, TaskState.RUNNING)

    @property
    def ok(self) -> bool:
        return self in (TaskState.SUCCEEDED, TaskState.ADOPTED)


@dataclass(frozen=True)
class TaskPolicy:
    """Failure budget for one task: retries plus an optional breaker."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_key: Optional[str] = None


@dataclass
class Task:
    """One schedulable unit of work."""

    name: str
    run: Callable[[], Any]
    reads: Sequence[str] = ()
    writes: Sequence[str] = ()
    deps: Sequence[str] = ()
    effective: bool = False
    policy: Optional[TaskPolicy] = None
    # Value-level success: a task can return normally yet still have
    # failed (a stage job whose JobResult carries passed=False).
    ok: Optional[Callable[[Any], bool]] = None
    # Journal codecs for effective results; default to identity, which
    # is right for plain JSON-shaped values.
    encode: Callable[[Any], Any] = lambda value: value
    decode: Callable[[Any], Any] = lambda value: value

    @property
    def declared(self) -> bool:
        return bool(self.reads) or bool(self.writes)


@dataclass
class TaskResult:
    """Terminal record for one task in a batch."""

    name: str
    state: TaskState
    value: Any = None
    error: Optional[BaseException] = None
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.state.ok


def conflicts(earlier: Task, later: Task) -> bool:
    """The wave partitioner's pairwise conflict rules."""
    if not earlier.declared or not later.declared:
        return True     # barriers order against everything
    ew, lw = set(earlier.writes), set(later.writes)
    er, lr = set(earlier.reads), set(later.reads)
    return bool((ew & lw) or (ew & lr) or (er & lw))


def link(tasks: Sequence[Task]) -> Tuple[List[Set[int]], List[Set[int]]]:
    """Build the batch DAG: per-task direct deps and full ancestor sets.

    Explicit ``deps`` (by name, must precede the task in declaration
    order) are unioned with conflict-inferred edges.  Returns
    ``(deps, ancestors)`` as parallel lists of index sets; declaration
    order is the topological order, so cycles are impossible by
    construction.
    """
    index_of = {}
    for index, task in enumerate(tasks):
        if task.name in index_of:
            raise ValueError(f"duplicate task name {task.name!r} in batch")
        index_of[task.name] = index
    deps: List[Set[int]] = []
    ancestors: List[Set[int]] = []
    for index, task in enumerate(tasks):
        direct: Set[int] = set()
        for dep_name in task.deps:
            dep_index = index_of.get(dep_name)
            if dep_index is None or dep_index >= index:
                raise ValueError(
                    f"task {task.name!r} depends on {dep_name!r}, which is "
                    "not an earlier task in the batch")
            direct.add(dep_index)
        for earlier_index in range(index):
            if conflicts(tasks[earlier_index], task):
                direct.add(earlier_index)
        above: Set[int] = set()
        for dep_index in direct:
            above.add(dep_index)
            above |= ancestors[dep_index]
        deps.append(direct)
        ancestors.append(above)
    return deps, ancestors
