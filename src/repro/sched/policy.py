"""Per-task execution policy: one retry/backoff/breaker stack.

Before the scheduler existed, three executors each grew their own
failure handling: the pipeline's wave runner (fail the stage on first
error), the prevention gate's fan-out (propagate the first exception),
and the SOC incident pipeline (retry with exponential backoff and
jitter behind a per-finding circuit breaker).  This module is the
single stack they all run through now:

* :class:`RetryPolicy` — the backoff schedule (moved here from
  ``repro.soc.incidents``; the SOC re-exports it).
* :class:`BreakerBank` — a keyed registry of circuit breakers, so a
  pipeline run and a SOC shard can share one failure budget per
  backend.
* :class:`PolicyRunner` — drives attempts against a breaker-gated
  budget and reports a :class:`PolicyOutcome`; callers keep their own
  metrics by observing the outcome and the callback hooks rather than
  by owning the loop.

The runner *contains* exceptions: an attempt that raises burns budget
and is recorded in ``PolicyOutcome.error`` instead of propagating, so
a broken backend can never kill the worker that happened to pick the
task up.  That is the SOC's exception-escalation contract, now shared.
"""

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, Optional, Tuple

from repro.sched.breaker import CircuitBreaker

# Attempt callback: index -> (succeeded, value).
Attempt = Callable[[int], Tuple[bool, Any]]
# Pre-check callback: None to run attempts, or (succeeded, value) to
# short-circuit without burning any attempt budget.
Precheck = Callable[[], Optional[Tuple[bool, Any]]]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for failing attempts."""

    max_attempts: int = 3
    backoff_base: float = 0.001     # seconds before the first retry
    backoff_factor: float = 2.0
    jitter: float = 0.5             # +-fraction of the computed delay

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """Seconds to wait before retry *retry_index* (0-based)."""
        base = self.backoff_base * (self.backoff_factor ** retry_index)
        return base * (1.0 + self.jitter * rng.random())


# Single-shot default: no retries, no sleeps.  Tasks without an
# explicit policy still run through the same code path.
SINGLE_ATTEMPT = RetryPolicy(max_attempts=1, backoff_base=0.0, jitter=0.0)


class BreakerBank:
    """Keyed circuit breakers, created on demand, shared across workers."""

    def __init__(self, failure_threshold: int = 3, cooldown: int = 2):
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._breakers: Dict[Hashable, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> CircuitBreaker:
        with self._lock:
            if key not in self._breakers:
                self._breakers[key] = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    cooldown=self.cooldown)
            return self._breakers[key]

    def items(self) -> Iterator[Tuple[Hashable, CircuitBreaker]]:
        with self._lock:
            return iter(sorted(self._breakers.items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._breakers)


@dataclass
class PolicyOutcome:
    """What one budgeted execution did.

    ``ran`` is False when the breaker absorbed the request outright;
    ``attempts`` is 0 when a precheck short-circuited.  ``error`` holds
    the exception raised by the *last* failing attempt, if any — the
    runner contains it rather than propagating.
    """

    success: bool
    value: Any = None
    ran: bool = True
    attempts: int = 0
    prechecked: bool = False
    error: Optional[BaseException] = None


@dataclass
class PolicyRunner:
    """Drives attempts for one unit of work under a retry+breaker budget."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    sleeper: Callable[[float], None] = time.sleep
    # Called after every failed attempt (including the last one).
    on_attempt_failed: Callable[[int], None] = lambda index: None
    # Called with a contained exception; may return a substitute value
    # for the attempt (the SOC maps exceptions to FAILURE actions).
    on_exception: Callable[[BaseException], Any] = lambda exc: None

    def run(self, attempt: Attempt,
            rng: Optional[random.Random] = None,
            breaker: Optional[CircuitBreaker] = None,
            precheck: Optional[Precheck] = None) -> PolicyOutcome:
        """Run *attempt* up to ``retry.max_attempts`` times.

        The breaker, when given, gates admission and absorbs the final
        verdict; *precheck*, when given, may settle the work without
        spending attempts (still recorded against the breaker).
        """
        if breaker is not None and not breaker.allow():
            return PolicyOutcome(success=False, ran=False)
        if precheck is not None:
            settled = precheck()
            if settled is not None:
                success, value = settled
                self._record(breaker, success)
                return PolicyOutcome(success=success, value=value,
                                     attempts=0, prechecked=True)
        rng = rng if rng is not None else random.Random(0)
        success = False
        value: Any = None
        error: Optional[BaseException] = None
        attempts = 0
        for index in range(self.retry.max_attempts):
            attempts = index + 1
            try:
                success, value = attempt(index)
                error = None
            except Exception as exc:  # contained, never propagated
                success = False
                error = exc
                value = self.on_exception(exc)
            if success:
                break
            self.on_attempt_failed(index)
            if index + 1 < self.retry.max_attempts:
                delay = self.retry.delay(index, rng)
                # A zero-base schedule means "retry immediately"; even
                # sleep(0) surrenders the GIL, so skip the call.
                if delay > 0:
                    self.sleeper(delay)
        self._record(breaker, success)
        return PolicyOutcome(success=success, value=value,
                             attempts=attempts, error=error)

    @staticmethod
    def _record(breaker: Optional[CircuitBreaker], success: bool) -> None:
        if breaker is None:
            return
        if success:
            breaker.record_success()
        else:
            breaker.record_failure()
