"""The scheduler's persistent journal: append-only, hash-chained JSONL.

The journal is what makes a half-finished pipeline run resumable.  One
JSON object per line, each carrying a blake2b digest over its own
canonical form *chained* to the previous entry's digest — so the file
is tamper-evident and a reader can tell exactly where a crashed writer
stopped:

``{"seq": 3, "kind": "task.completed", "task": "verify:...",``
``  "data": {...}, "prev": "<digest 2>", "digest": "<digest 3>"}``

Write discipline: every entry is flushed and fsync'd before the append
returns, so a ``task.completed`` entry is durable before the scheduler
considers the completion *effective*.  A crash can therefore leave at
most one torn line at the tail; :meth:`Journal.load` drops it (and
counts it) rather than failing, while a bad digest or broken chain
*before* the tail is real corruption and raises :class:`JournalError`.

Entry kinds written by the run layer and the scheduler:

* ``run.plan`` — first entry: what this run is (profile, worker count,
  the requirement-IR fingerprint manifest the run was built from).
* ``task.completed`` — one per *effective* task, with its encoded
  result; the exactly-once unit of the whole design.
* ``run.resumed`` — appended once per resume generation.
* ``run.finished`` — terminal entry with the run's verdict.
"""

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

GENESIS = "sched-journal-genesis"
_DIGEST_SIZE = 16


class JournalError(RuntimeError):
    """The journal is corrupt (bad digest or broken chain mid-file)."""


def _canonical(payload: Mapping[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _entry_digest(seq: int, kind: str, task: str,
                  data: Mapping[str, Any], prev: str) -> str:
    body = _canonical({"seq": seq, "kind": kind, "task": task,
                       "data": data, "prev": prev})
    return hashlib.blake2b(body.encode("utf-8"),
                           digest_size=_DIGEST_SIZE).hexdigest()


@dataclass(frozen=True)
class JournalEntry:
    seq: int
    kind: str
    task: str
    data: Mapping[str, Any]
    prev: str
    digest: str

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "kind": self.kind, "task": self.task,
                "data": dict(self.data), "prev": self.prev,
                "digest": self.digest}


class Journal:
    """Durable, hash-chained record of one scheduled run."""

    def __init__(self, path: str):
        self.path = path
        self.entries: List[JournalEntry] = []
        self.torn_tail = False      # a half-written final line was dropped
        self._load()

    # -- reading -------------------------------------------------------------------

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        prev = GENESIS
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            last = index == len(lines) - 1
            try:
                raw = json.loads(line)
                entry = JournalEntry(
                    seq=raw["seq"], kind=raw["kind"], task=raw["task"],
                    data=raw["data"], prev=raw["prev"], digest=raw["digest"])
            except (ValueError, KeyError, TypeError):
                # Unparseable line: a torn tail is expected after a
                # crash; anything earlier means the file is corrupt.
                if last:
                    self.torn_tail = True
                    return
                raise JournalError(
                    f"{self.path}: unparseable entry at line {index + 1}")
            expected = _entry_digest(entry.seq, entry.kind, entry.task,
                                     entry.data, entry.prev)
            if (entry.digest != expected or entry.prev != prev
                    or entry.seq != len(self.entries)):
                if last:
                    # Tail entry with a bad digest/chain: treat like a
                    # torn write and drop it.
                    self.torn_tail = True
                    return
                raise JournalError(
                    f"{self.path}: hash chain broken at seq {entry.seq}")
            self.entries.append(entry)
            prev = entry.digest

    def verify(self) -> bool:
        """Re-check the chain of the in-memory entries."""
        prev = GENESIS
        for index, entry in enumerate(self.entries):
            expected = _entry_digest(entry.seq, entry.kind, entry.task,
                                     entry.data, entry.prev)
            if (entry.digest != expected or entry.prev != prev
                    or entry.seq != index):
                return False
            prev = entry.digest
        return True

    # -- writing -------------------------------------------------------------------

    def append(self, kind: str, task: str = "",
               data: Optional[Mapping[str, Any]] = None) -> JournalEntry:
        """Append one entry, durable (flush + fsync) before returning."""
        data = dict(data or {})
        prev = self.entries[-1].digest if self.entries else GENESIS
        seq = len(self.entries)
        entry = JournalEntry(
            seq=seq, kind=kind, task=task, data=data, prev=prev,
            digest=_entry_digest(seq, kind, task, data, prev))
        line = json.dumps(entry.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.entries.append(entry)
        return entry

    def tear_tail(self) -> None:
        """Destroy the durability of the last entry (fault injection).

        Truncates the file mid-way through its final line, simulating a
        crash that interrupted the write after the flush was issued but
        before the blocks hit disk.  The in-memory journal is left
        alone: the process is about to die anyway.
        """
        if not self.entries:
            return
        with open(self.path, "rb") as handle:
            raw = handle.read()
        body = raw.rstrip(b"\n")
        cut = body.rfind(b"\n")
        last_line_start = 0 if cut < 0 else cut + 1
        last_len = len(body) - last_line_start
        keep = last_line_start + max(1, last_len // 2)
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)

    # -- queries -------------------------------------------------------------------

    def plan(self) -> Optional[Dict[str, Any]]:
        for entry in self.entries:
            if entry.kind == "run.plan":
                return dict(entry.data)
        return None

    def completions(self) -> Dict[str, Dict[str, Any]]:
        """Effective completions by task name (journaled exactly once)."""
        done: Dict[str, Dict[str, Any]] = {}
        for entry in self.entries:
            if entry.kind == "task.completed":
                done[entry.task] = dict(entry.data)
        return done

    def completion_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries:
            if entry.kind == "task.completed":
                counts[entry.task] = counts.get(entry.task, 0) + 1
        return counts

    def resumes(self) -> int:
        return sum(1 for entry in self.entries
                   if entry.kind == "run.resumed")

    def finished(self) -> Optional[Dict[str, Any]]:
        for entry in self.entries:
            if entry.kind == "run.finished":
                return dict(entry.data)
        return None

    def head_digest(self) -> str:
        return self.entries[-1].digest if self.entries else GENESIS

    def __len__(self) -> int:
        return len(self.entries)
