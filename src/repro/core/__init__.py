"""VeriDevOps core: the framework the DATE 2021 paper describes.

The framework closes a loop between development and operations:

* **WP2 — requirement generation**: security requirements are ingested
  from natural language (NALABS quality + RESA formalization), from
  vulnerability databases (:mod:`repro.vulndb`), and from standards
  (the STIG catalogue), landing in a traceable
  :class:`~repro.core.repository.RequirementRepository`.
* **WP4 — prevention at development**: a CI/CD
  :class:`~repro.core.pipeline.Pipeline` runs security gates —
  requirements quality, formalization, formal verification
  (observer automata + zone checker), and host compliance.
* **WP3 — reactive protection at operations**: the
  :class:`~repro.core.protection.ProtectionLoop` watches host event
  logs with runtime monitors, detects violations, and enforces the
  bound RQCODE requirements to restore compliance.

:class:`~repro.core.orchestrator.VeriDevOpsOrchestrator` wires the
three together; ``examples/quickstart.py`` shows the whole loop in
~60 lines.
"""

from repro.core.pipeline import (
    Job,
    JobResult,
    Pipeline,
    PipelineContext,
    PipelineRun,
    Stage,
    StageResult,
)
from repro.core.gates import (
    ComplianceGate,
    FormalizationGate,
    GateResult,
    MonitoringGate,
    RequirementsQualityGate,
    SecurityGate,
    VerificationGate,
    gate_repository,
)
from repro.core.repository import (
    RequirementRecord,
    RequirementRepository,
    RequirementSource,
    RequirementStatus,
)
from repro.core.protection import (
    Incident,
    PollingProtection,
    ProtectionLoop,
    RepairAction,
)
from repro.core.fleet import Fleet, FleetPosture, FleetProtection
from repro.core.orchestrator import VeriDevOpsOrchestrator
from repro.core.persistence import (
    repository_from_json,
    repository_to_json,
)
from repro.core.reporting import SecurityReport, report_for_cycle

__all__ = [
    "ComplianceGate",
    "Fleet",
    "FleetPosture",
    "FleetProtection",
    "FormalizationGate",
    "GateResult",
    "Incident",
    "Job",
    "JobResult",
    "MonitoringGate",
    "Pipeline",
    "PipelineContext",
    "PipelineRun",
    "PollingProtection",
    "ProtectionLoop",
    "RepairAction",
    "RequirementRecord",
    "RequirementRepository",
    "RequirementSource",
    "RequirementStatus",
    "RequirementsQualityGate",
    "SecurityGate",
    "SecurityReport",
    "report_for_cycle",
    "Stage",
    "StageResult",
    "VeriDevOpsOrchestrator",
    "VerificationGate",
    "gate_repository",
    "repository_from_json",
    "repository_to_json",
]
