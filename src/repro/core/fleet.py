"""Fleet management: many hosts under one security posture.

"DevOps environments" means fleets, not single machines.  A
:class:`Fleet` groups hosts (possibly across platforms), runs
fleet-wide compliance campaigns, aggregates posture, and arms one
protection loop per host through a shared orchestrator — so drift on
any machine is detected and repaired with the same per-host latency as
the single-host case.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.orchestrator import VeriDevOpsOrchestrator
from repro.core.protection import Incident, ProtectionLoop
from repro.environment.host import SimulatedHost
from repro.rqcode.catalog import ComplianceReport, StigCatalog


@dataclass
class FleetPosture:
    """Aggregated compliance across the fleet at one instant."""

    reports: List[ComplianceReport] = field(default_factory=list)

    @property
    def host_count(self) -> int:
        return len(self.reports)

    @property
    def fully_compliant_hosts(self) -> int:
        return sum(1 for report in self.reports
                   if report.compliance_ratio >= 1.0)

    @property
    def worst_ratio(self) -> float:
        if not self.reports:
            return 1.0
        return min(report.compliance_ratio for report in self.reports)

    @property
    def mean_ratio(self) -> float:
        if not self.reports:
            return 1.0
        return (sum(report.compliance_ratio for report in self.reports)
                / len(self.reports))

    def rows(self) -> List[Dict[str, str]]:
        return [
            {
                "host": report.host_name,
                "platform": report.platform,
                "passing": f"{report.passing}/{report.total}",
                "ratio": f"{report.compliance_ratio:.0%}",
            }
            for report in self.reports
        ]


class Fleet:
    """A named group of hosts sharing one catalogue."""

    def __init__(self, name: str, catalog: StigCatalog):
        self.name = name
        self.catalog = catalog
        self._hosts: Dict[str, SimulatedHost] = {}

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self):
        return iter(self.hosts())

    def add(self, host: SimulatedHost) -> SimulatedHost:
        if host.name in self._hosts:
            raise ValueError(f"duplicate host name: {host.name!r}")
        self._hosts[host.name] = host
        return host

    def host(self, name: str) -> SimulatedHost:
        return self._hosts[name]

    def hosts(self, platform: Optional[str] = None) -> List[SimulatedHost]:
        return [host for _, host in sorted(self._hosts.items())
                if platform is None or host.os_family == platform]

    # -- campaigns ------------------------------------------------------------

    def audit(self) -> FleetPosture:
        """Check every host (read-only)."""
        return FleetPosture(reports=[
            self.catalog.check_host(host) for host in self.hosts()])

    def harden(self) -> FleetPosture:
        """Check/enforce/re-check every host."""
        return FleetPosture(reports=[
            self.catalog.harden_host(host) for host in self.hosts()])

    # -- operations -----------------------------------------------------------

    def arm_soc(self, orchestrator: Optional[VeriDevOpsOrchestrator] = None,
                **kwargs):
        """Arm the concurrent SOC runtime over this fleet and start it.

        The fleet-scale successor to :class:`FleetProtection`: the same
        per-host monitors, but progressed on sharded worker threads
        with an incident pipeline and metrics.  Keyword arguments pass
        through to :class:`~repro.soc.service.SocService` (``shards``,
        ``queue_capacity``, ``policy``, ``seed``, ...).  Returns the
        started service; callers own its ``drain``/``stop``.
        """
        from repro.soc.service import SocService

        return SocService.for_fleet(
            self, orchestrator=orchestrator, **kwargs).start()


class FleetProtection:
    """One protection loop per fleet host, with fleet-wide telemetry."""

    def __init__(self, fleet: Fleet,
                 orchestrator: Optional[VeriDevOpsOrchestrator] = None):
        self.fleet = fleet
        if orchestrator is None:
            orchestrator = VeriDevOpsOrchestrator(catalog=fleet.catalog)
            for platform in sorted({host.os_family
                                    for host in fleet.hosts()}):
                orchestrator.ingest_standards(platform)
        self.orchestrator = orchestrator
        self._loops: Dict[str, ProtectionLoop] = {}

    def start(self) -> "FleetProtection":
        """Arm a loop on every host (idempotent)."""
        for host in self.fleet.hosts():
            if host.name not in self._loops:
                self._loops[host.name] = \
                    self.orchestrator.start_protection(host)
        return self

    def stop(self) -> None:
        for loop in self._loops.values():
            loop.stop()

    def loop_for(self, host_name: str) -> ProtectionLoop:
        return self._loops[host_name]

    def incidents(self) -> List[Incident]:
        """All incidents across the fleet, ordered by detection time."""
        merged: List[Incident] = []
        for loop in self._loops.values():
            merged.extend(loop.incidents)
        return sorted(merged, key=lambda incident: incident.detected_at)

    def incidents_by_host(self) -> Dict[str, List[Incident]]:
        return {name: list(loop.incidents)
                for name, loop in self._loops.items()}

    def effective_repairs(self) -> int:
        return sum(1 for incident in self.incidents()
                   if incident.effective)
