"""Security gates: the prevention checkpoints of the VeriDevOps pipeline.

Each gate reads artifacts from the :class:`~repro.core.pipeline.
PipelineContext` and returns a :class:`GateResult`.  The five gates map
one-to-one to the framework's promises:

* :class:`RequirementsQualityGate` — NALABS smell analysis over the
  natural-language requirements (WP2 quality).
* :class:`FormalizationGate` — every requirement that claims a
  formalization actually renders to LTL/TCTL (WP2 formalization).
* :class:`VerificationGate` — observer-automata verification tasks all
  hold under the zone-graph checker (WP4 verification).
* :class:`ComplianceGate` — target hosts meet the bound STIG findings,
  optionally auto-remediating (WP4 hardening / deployment).
* :class:`MonitoringGate` — runtime monitors are instantiated for every
  formalized requirement before deployment completes (WP3 handoff).

Gates read requirements through :func:`gate_repository`: a context may
carry a ready ``repository`` or, equivalently, a ``requirements_ir``
collection of canonical :class:`~repro.reqs.ir.Requirement` records —
the IR is materialized into a repository on first access, so callers
holding only front-end-lowered IR can run the pipeline directly.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.pipeline import PipelineContext
from repro.core.repository import (
    RequirementRepository,
    RequirementStatus,
)
from repro.ltl.compile import CompiledMonitor
from repro.ltl.monitor import LtlMonitor
from repro.ltl.parser import parse_ltl
from repro.nalabs.analyzer import NalabsAnalyzer, RequirementText
from repro.rqcode.catalog import StigCatalog
from repro.sched.scheduler import Scheduler
from repro.sched.task import Task as SchedTask
from repro.specpatterns.ltl_mappings import PatternScopeUnsupported, to_ltl
from repro.specpatterns.tctl_mappings import to_tctl
from repro.ta.checker import CheckResult, ZoneGraphChecker
from repro.ta.query import parse_query


def gate_repository(context: PipelineContext,
                    required: bool = True
                    ) -> Optional[RequirementRepository]:
    """The context's repository, materializing ``requirements_ir``.

    Precedence: an explicit ``repository`` artifact wins; otherwise a
    ``requirements_ir`` collection (IR records from any front-end) is
    lowered into a fresh repository and cached back on the context so
    every gate sees the same mutable records.  With ``required`` the
    absence of both raises, mirroring ``context.require``.
    """
    repository = context.get("repository")
    if repository is not None:
        return repository
    irs = context.get("requirements_ir")
    if irs is not None:
        repository = RequirementRepository.from_irs(irs)
        context.put("repository", repository)
        return repository
    if required:
        return context.require("repository")
    return None


@dataclass
class GateResult:
    """Verdict of one gate evaluation."""

    passed: bool
    detail: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)


class SecurityGate:
    """Base protocol: a named check over the pipeline context."""

    name = "gate"

    def evaluate(self, context: PipelineContext) -> GateResult:
        raise NotImplementedError


class RequirementsQualityGate(SecurityGate):
    """Fails when too many requirements carry NALABS smells.

    Reads ``repository`` (RequirementRepository); writes
    ``nalabs_report``.  Requirements passing move to ANALYZED.

    Metrics include the repository's cross-front-end duplicate
    accounting (``duplicate_groups``/``duplicate_requirements`` from
    :meth:`RequirementRepository.duplicate_groups`): two sources
    stating the same content fingerprint are one obligation, and the
    gate is where that first becomes visible.
    """

    name = "requirements-quality"

    def __init__(self, max_smelly_ratio: float = 0.2,
                 analyzer: Optional[NalabsAnalyzer] = None):
        self.max_smelly_ratio = max_smelly_ratio
        self.analyzer = analyzer if analyzer is not None else NalabsAnalyzer()

    def evaluate(self, context: PipelineContext) -> GateResult:
        repository: RequirementRepository = gate_repository(context)
        records = repository.all()
        if not records:
            return GateResult(passed=True, detail="no requirements to check")
        corpus = [RequirementText(r.req_id, r.text) for r in records]
        report = self.analyzer.analyze_corpus(corpus)
        context.put("nalabs_report", report)
        by_id = {r.req_id: r for r in report.reports}
        for record in records:
            requirement_report = by_id[record.req_id]
            record.quality_flags = list(requirement_report.flagged_metrics)
            record.advance_to(RequirementStatus.ANALYZED)
        ratio = report.smelly_count / report.total
        passed = ratio <= self.max_smelly_ratio
        duplicates = repository.duplicate_groups()
        return GateResult(
            passed=passed,
            detail=(
                f"{report.smelly_count}/{report.total} requirements "
                f"smelly (max ratio {self.max_smelly_ratio:.0%})"
            ),
            metrics={
                "smelly_ratio": ratio,
                "total": float(report.total),
                "duplicate_groups": float(len(duplicates)),
                "duplicate_requirements": float(
                    sum(len(ids) for ids in duplicates.values())),
            },
        )


class FormalizationGate(SecurityGate):
    """Fails when too few requirements formalize to patterns/LTL.

    Requirements with a pattern attached get their LTL rendered (and
    move to FORMALIZED); the gate passes when the formalized fraction
    meets the threshold.
    """

    name = "formalization"

    def __init__(self, min_formalized_ratio: float = 0.5):
        self.min_formalized_ratio = min_formalized_ratio

    def evaluate(self, context: PipelineContext) -> GateResult:
        repository: RequirementRepository = gate_repository(context)
        records = repository.all()
        if not records:
            return GateResult(passed=True, detail="no requirements")
        formalized = 0
        for record in records:
            if record.pattern is None:
                continue
            try:
                formula = to_ltl(record.pattern, record.scope)
                record.ltl = str(formula)
            except PatternScopeUnsupported:
                # Pattern known but mapping absent: keep TCTL-only.
                record.ltl = ""
            record.tctl = to_tctl(record.pattern, record.scope)
            record.advance_to(RequirementStatus.FORMALIZED)
            formalized += 1
        ratio = formalized / len(records)
        passed = ratio >= self.min_formalized_ratio
        return GateResult(
            passed=passed,
            detail=(
                f"{formalized}/{len(records)} requirements formalized "
                f"(min ratio {self.min_formalized_ratio:.0%})"
            ),
            metrics={"formalized_ratio": ratio},
        )


def _verdict_to_dict(result: CheckResult) -> Dict:
    """A check result as plain data — what the verdict cache persists."""
    return {
        "satisfied": result.satisfied,
        "query": result.query,
        "states_explored": result.states_explored,
        "witness": list(result.witness),
    }


def _verdict_from_dict(verdict: Dict) -> CheckResult:
    return CheckResult(
        satisfied=verdict["satisfied"],
        query=verdict["query"],
        states_explored=verdict["states_explored"],
        witness=list(verdict.get("witness", [])),
    )


class VerificationGate(SecurityGate):
    """Runs the model-checking tasks; fails on any unsatisfied query.

    Reads ``verification_tasks``: a list of ``(label, network, query)``
    triples (query text for :func:`repro.ta.query.parse_query`).
    Writes ``verification_results``.  Formalized requirements advance
    to VERIFIED when the gate passes.

    With a :class:`~repro.prevention.VerificationCache` attached, each
    task is content-addressed first: a fingerprint hit returns the
    stored verdict without touching the model checker, and only the
    misses run.  Misses execute as *effective* tasks on the unified
    scheduler — the run's own scheduler when the pipeline attached one
    to the context (journaled runs adopt already-verified verdicts on
    crash-resume instead of re-checking), otherwise an ephemeral
    scheduler sized by ``max_workers`` (queries are independent by
    construction).  Cache counters — plus the repository's
    content-fingerprint dedup accounting — land in the gate metrics
    and in ``verification_cache_stats``.
    """

    name = "verification"

    def __init__(self, cache=None, max_workers: Optional[int] = None):
        self.cache = cache
        self.max_workers = max_workers

    @staticmethod
    def _check(network, query_text: str) -> CheckResult:
        return ZoneGraphChecker(network).check(parse_query(query_text))

    def evaluate(self, context: PipelineContext) -> GateResult:
        tasks = context.get("verification_tasks", [])
        results: List[Optional[tuple]] = [None] * len(tasks)
        pending = []  # (index, label, network, query_text, fingerprint)
        if self.cache is not None:
            from repro.prevention.fingerprint import fingerprint_task

            for index, (label, network, query_text) in enumerate(tasks):
                fp = fingerprint_task(network, query_text)
                verdict = self.cache.lookup(label, fp)
                if verdict is not None:
                    results[index] = (label, _verdict_from_dict(verdict))
                else:
                    pending.append((index, label, network, query_text, fp))
        else:
            pending = [(index, label, network, query_text, None)
                       for index, (label, network, query_text)
                       in enumerate(tasks)]

        fresh: List[tuple] = []
        if pending:
            risk = context.get("risk_index", None)
            if risk is not None:
                # Risk-prioritized fan-out: tasks whose label matches a
                # scored requirement run first, so under a worker-
                # starved scheduler (or a fail-fast batch) the riskiest
                # verifications land earliest.  Results still fill in
                # by original index — verdict output is order-stable.
                pending.sort(key=lambda item: (
                    -risk.score_for(item[1]), item[0]))
            scheduler = getattr(context, "scheduler", None)
            if scheduler is None:
                scheduler = Scheduler(workers=self.max_workers or 1)
            sched_tasks = [
                SchedTask(
                    name=f"verify:{label}",
                    run=(lambda n=network, q=query_text:
                         _verdict_to_dict(self._check(n, q))),
                    effective=True,
                )
                for index, label, network, query_text, fp in pending
            ]
            report = scheduler.run_batch(sched_tasks, fail_fast=False)
            report.raise_errors()
            fresh = [
                (index, label, fp, _verdict_from_dict(task_result.value))
                for (index, label, network, query_text, fp), task_result
                in zip(pending, report.results)
            ]
        for index, label, fp, result in fresh:
            results[index] = (label, result)
            if self.cache is not None:
                self.cache.store(label, fp, _verdict_to_dict(result))
        cache_stats = None
        if self.cache is not None:
            self.cache.save()
            cache_stats = self.cache.stats_dict()
            repository = gate_repository(context, required=False)
            if repository is not None:
                groups = repository.duplicate_groups()
                cache_stats["dedup_groups"] = len(groups)
                cache_stats["dedup_requirements"] = sum(
                    len(ids) for ids in groups.values())
            # The metrics block stays purely numeric (cache_stats is
            # folded into float-valued gate metrics below); hit
            # provenance — which tier answered, whose verdict it was —
            # rides only on the context document.
            stats_document = dict(cache_stats)
            provenance = getattr(self.cache, "provenance_dict", None)
            if provenance is not None:
                stats_document["provenance"] = provenance()
            context.put("verification_cache_stats", stats_document)

        failures = []
        total_states = 0
        for label, result in results:
            total_states += result.states_explored
            if not result.satisfied:
                failures.append(label)
        context.put("verification_results", results)
        passed = not failures
        if passed:
            repository = gate_repository(context, required=False)
            if repository is not None:
                for record in repository.formalized():
                    if record.status is RequirementStatus.FORMALIZED:
                        record.advance_to(RequirementStatus.VERIFIED)
        return GateResult(
            passed=passed,
            detail=(
                f"{len(tasks) - len(failures)}/{len(tasks)} verification "
                f"tasks hold"
                + (f"; failing: {failures}" if failures else "")
            ),
            metrics={
                "tasks": float(len(tasks)),
                "states_explored": float(total_states),
                **({f"cache_{key}": float(value)
                    for key, value in cache_stats.items()}
                   if cache_stats is not None else {}),
            },
        )


class ComplianceGate(SecurityGate):
    """Checks (and optionally hardens) target hosts against the catalogue.

    Reads ``hosts`` (list of SimulatedHost); writes
    ``compliance_reports``.  With ``auto_remediate`` the gate enforces
    failing findings before judging, which is the deployment-time
    hardening the paper promises.
    """

    name = "stig-compliance"

    def __init__(self, catalog: StigCatalog,
                 min_compliance: float = 1.0,
                 auto_remediate: bool = True):
        self.catalog = catalog
        self.min_compliance = min_compliance
        self.auto_remediate = auto_remediate

    def evaluate(self, context: PipelineContext) -> GateResult:
        hosts = context.get("hosts", [])
        if not hosts:
            return GateResult(passed=True, detail="no hosts to check")
        reports = []
        for host in hosts:
            if self.auto_remediate:
                reports.append(self.catalog.harden_host(host))
            else:
                reports.append(self.catalog.check_host(host))
        context.put("compliance_reports", reports)
        worst = min(report.compliance_ratio for report in reports)
        passed = worst >= self.min_compliance
        if passed:
            repository = gate_repository(context, required=False)
            if repository is not None:
                for record in repository.all():
                    if record.rqcode_findings and \
                            record.status.rank() >= \
                            RequirementStatus.VERIFIED.rank():
                        record.advance_to(RequirementStatus.DEPLOYED)
        detail = "; ".join(report.summary() for report in reports)
        return GateResult(
            passed=passed,
            detail=detail,
            metrics={"worst_compliance": worst,
                     "hosts": float(len(hosts))},
        )


class MonitoringGate(SecurityGate):
    """Instantiates runtime monitors for every LTL-formalized requirement.

    Writes ``monitors``: requirement id -> :class:`LtlMonitor`.  The
    gate fails only when a stored LTL string no longer parses — a
    pipeline-integrity error worth stopping a deployment for.
    """

    name = "monitoring-deployment"

    def evaluate(self, context: PipelineContext) -> GateResult:
        repository: RequirementRepository = gate_repository(context)
        monitors: Dict[str, LtlMonitor] = {}
        broken: List[str] = []
        for record in repository.formalized():
            if not record.ltl:
                continue
            try:
                monitors[record.req_id] = CompiledMonitor(
                    parse_ltl(record.ltl))
            except Exception:  # noqa: BLE001 - collect, report below
                broken.append(record.req_id)
        context.put("monitors", monitors)
        if not broken:
            for req_id in monitors:
                record = repository.get(req_id)
                if record.status.rank() >= RequirementStatus.DEPLOYED.rank():
                    record.advance_to(RequirementStatus.MONITORED)
        return GateResult(
            passed=not broken,
            detail=(
                f"{len(monitors)} monitors armed"
                + (f"; unparseable LTL for {broken}" if broken else "")
            ),
            metrics={"monitors": float(len(monitors))},
        )
