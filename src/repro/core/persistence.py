"""Repository persistence: requirement records to/from JSON.

Traceability survives only if it outlives the Python process; this
module serializes a :class:`~repro.core.repository.
RequirementRepository` into the JSON artifact a CI job archives between
pipeline runs, and restores it losslessly — including the formalization
(pattern + scope are reconstructed from their dataclass fields).
"""

import dataclasses
import json
from typing import Any, Dict, Optional, Type

from repro.core.repository import (
    RequirementRecord,
    RequirementRepository,
    RequirementSource,
    RequirementStatus,
)
from repro.reqs.ir import Provenance
from repro.specpatterns import patterns as pattern_module
from repro.specpatterns import scopes as scope_module
from repro.specpatterns.patterns import Pattern
from repro.specpatterns.scopes import Scope


def _dataclass_registry(module, base) -> Dict[str, Type]:
    return {
        name: obj for name, obj in vars(module).items()
        if isinstance(obj, type) and issubclass(obj, base)
        and obj is not base
    }


_PATTERN_CLASSES = _dataclass_registry(pattern_module, Pattern)
_SCOPE_CLASSES = _dataclass_registry(scope_module, Scope)


def _encode_dataclass(value) -> Optional[Dict[str, Any]]:
    if value is None:
        return None
    return {"kind": type(value).__name__,
            "fields": dataclasses.asdict(value)}


def _decode_dataclass(payload, registry, what: str):
    if payload is None:
        return None
    kind = payload["kind"]
    cls = registry.get(kind)
    if cls is None:
        raise ValueError(f"unknown {what} kind in JSON: {kind!r}")
    return cls(**payload["fields"])


def record_to_dict(record: RequirementRecord) -> Dict[str, Any]:
    """One record as plain data."""
    return {
        "req_id": record.req_id,
        "text": record.text,
        "source": record.source.value,
        "status": record.status.value,
        "quality_flags": list(record.quality_flags),
        "pattern": _encode_dataclass(record.pattern),
        "scope": _encode_dataclass(record.scope),
        "ltl": record.ltl,
        "tctl": record.tctl,
        "rqcode_findings": list(record.rqcode_findings),
        "provenance": record.provenance,
        "title": record.title,
        "frontend": record.frontend,
        "target_kind": record.target_kind,
        "severity": record.severity,
        "tags": list(record.tags),
        "provenance_chain": [link.to_dict()
                             for link in record.provenance_chain],
    }


def record_from_dict(payload: Dict[str, Any]) -> RequirementRecord:
    """Inverse of :func:`record_to_dict`."""
    return RequirementRecord(
        req_id=payload["req_id"],
        text=payload["text"],
        source=RequirementSource(payload["source"]),
        status=RequirementStatus(payload["status"]),
        quality_flags=list(payload.get("quality_flags", [])),
        pattern=_decode_dataclass(payload.get("pattern"),
                                  _PATTERN_CLASSES, "pattern"),
        scope=_decode_dataclass(payload.get("scope"),
                                _SCOPE_CLASSES, "scope"),
        ltl=payload.get("ltl", ""),
        tctl=payload.get("tctl", ""),
        rqcode_findings=list(payload.get("rqcode_findings", [])),
        provenance=payload.get("provenance", ""),
        title=payload.get("title", ""),
        frontend=payload.get("frontend", ""),
        target_kind=payload.get("target_kind", ""),
        severity=payload.get("severity", "medium"),
        tags=list(payload.get("tags", [])),
        provenance_chain=[Provenance.from_dict(link)
                          for link in payload.get("provenance_chain", [])],
    )


def repository_to_json(repository: RequirementRepository,
                       indent: int = 2) -> str:
    """Serialize every record, sorted by id."""
    payload = {
        "version": 1,
        "records": [record_to_dict(record) for record in repository.all()],
    }
    return json.dumps(payload, indent=indent)


def repository_from_json(text: str) -> RequirementRepository:
    """Restore a repository from :func:`repository_to_json` output."""
    payload = json.loads(text)
    if payload.get("version") != 1:
        raise ValueError(
            f"unsupported repository JSON version: {payload.get('version')}")
    repository = RequirementRepository()
    for record_payload in payload["records"]:
        repository.add(record_from_dict(record_payload))
    return repository
