"""Requirement repository with lifecycle and traceability.

Every security requirement the framework handles — whatever its source
— is canonically a :class:`~repro.reqs.ir.Requirement` (the immutable
IR every front-end lowers into).  The repository stores each IR record
wrapped in a :class:`RequirementRecord`: the IR's normative content
plus the *mutable* pipeline bookkeeping (lifecycle status, quality
flags, rendered formulas) the gates advance.  :meth:`RequirementRecord.
to_ir` re-canonicalizes a record at any point — that serialization is
what the prevention plane fingerprints, so cache keys are front-end
agnostic.

The repository is the traceability backbone: experiment E1's
end-to-end table is a walk over these records.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.reqs.ir import Formalization, Provenance, Requirement
from repro.specpatterns.patterns import Pattern
from repro.specpatterns.scopes import Scope


class RequirementSource(enum.Enum):
    """Where a requirement came from (the three WP2 inputs)."""

    NATURAL_LANGUAGE = "natural-language"
    VULNERABILITY_DB = "vulnerability-db"
    STANDARD = "standard"


#: Front-end registry name -> coarse WP2 source, and a fallback the
#: other way for records predating the IR (no front-end recorded).
FRONTEND_SOURCES: Dict[str, RequirementSource] = {
    "nalabs": RequirementSource.NATURAL_LANGUAGE,
    "resa": RequirementSource.NATURAL_LANGUAGE,
    "rqcode": RequirementSource.STANDARD,
    "standards": RequirementSource.STANDARD,
    "vulndb": RequirementSource.VULNERABILITY_DB,
}

_DEFAULT_FRONTENDS: Dict[RequirementSource, str] = {
    RequirementSource.NATURAL_LANGUAGE: "resa",
    RequirementSource.VULNERABILITY_DB: "vulndb",
    RequirementSource.STANDARD: "rqcode",
}


class RequirementStatus(enum.Enum):
    """Lifecycle stages, in order."""

    ELICITED = "elicited"
    ANALYZED = "analyzed"          # quality-checked (NALABS)
    FORMALIZED = "formalized"      # pattern + formula attached
    VERIFIED = "verified"          # model-checked / gate-passed
    DEPLOYED = "deployed"          # enforcement bound on hosts
    MONITORED = "monitored"        # runtime monitor active

    def rank(self) -> int:
        return _STATUS_ORDER.index(self)


_STATUS_ORDER = [
    RequirementStatus.ELICITED,
    RequirementStatus.ANALYZED,
    RequirementStatus.FORMALIZED,
    RequirementStatus.VERIFIED,
    RequirementStatus.DEPLOYED,
    RequirementStatus.MONITORED,
]


@dataclass
class RequirementRecord:
    """One requirement with full traceability.

    The identity/content fields mirror the IR; ``status``,
    ``quality_flags``, ``ltl`` and ``tctl`` are the mutable pipeline
    state layered on top.  ``provenance`` keeps the legacy one-line
    string; ``provenance_chain`` carries the full typed source chain
    (IR-ingested records always have one; hand-built records fall back
    to wrapping the string at canonicalization time).
    """

    req_id: str
    text: str
    source: RequirementSource
    status: RequirementStatus = RequirementStatus.ELICITED
    #: NALABS flags ('vagueness', ...) attached at analysis time.
    quality_flags: List[str] = field(default_factory=list)
    #: Specification-pattern formalization.
    pattern: Optional[Pattern] = None
    scope: Optional[Scope] = None
    ltl: str = ""
    tctl: str = ""
    #: RQCODE finding ids bound for check/enforce on hosts.
    rqcode_findings: List[str] = field(default_factory=list)
    #: Free-form provenance (CVE id, STIG id, document section).
    provenance: str = ""
    #: IR content carried alongside the legacy fields.
    title: str = ""
    frontend: str = ""
    target_kind: str = ""
    severity: str = "medium"
    tags: List[str] = field(default_factory=list)
    provenance_chain: List[Provenance] = field(default_factory=list)

    def advance_to(self, status: RequirementStatus) -> None:
        """Move the lifecycle forward; regression raises.

        The lifecycle is monotone: a verified requirement cannot drop
        back to elicited — re-analysis creates a new record instead.
        """
        if status.rank() < self.status.rank():
            raise ValueError(
                f"{self.req_id}: cannot regress from {self.status.value} "
                f"to {status.value}"
            )
        self.status = status

    # -- IR canonicalization -------------------------------------------------------

    @classmethod
    def from_ir(cls, ir: Requirement) -> "RequirementRecord":
        """Lower an IR record into a fresh (ELICITED) repository record."""
        pattern, scope = ir.pattern_scope()
        formalization = ir.formalization
        return cls(
            req_id=ir.rid,
            text=ir.text,
            source=FRONTEND_SOURCES.get(
                ir.source, RequirementSource.NATURAL_LANGUAGE),
            pattern=pattern,
            scope=scope,
            ltl=formalization.ltl if formalization else "",
            tctl=formalization.tctl if formalization else "",
            rqcode_findings=list(ir.bindings),
            provenance=ir.legacy_provenance(),
            title=ir.title,
            frontend=ir.source,
            target_kind=ir.target_kind,
            severity=ir.severity,
            tags=list(ir.tags),
            provenance_chain=list(ir.provenance),
        )

    def to_ir(self) -> Requirement:
        """The record's canonical IR form, *as of now*.

        Mutable pipeline bookkeeping (status, quality flags) is
        deliberately excluded; the rendered formulas are included
        because they are verification inputs.  Records built through
        :meth:`from_ir` round-trip exactly.
        """
        chain = tuple(self.provenance_chain)
        if not chain and self.provenance:
            chain = (Provenance("legacy", self.req_id, self.provenance),)
        formalization = None
        if self.pattern is not None or self.ltl or self.tctl:
            formalization = Formalization.from_objects(
                self.pattern, self.scope, ltl=self.ltl, tctl=self.tctl)
        return Requirement(
            rid=self.req_id,
            title=self.title,
            text=self.text,
            source=self.frontend or _DEFAULT_FRONTENDS[self.source],
            provenance=chain,
            target_kind=self.target_kind or (
                "host" if self.rqcode_findings
                else "monitor" if self.pattern is not None else "document"),
            severity=self.severity,
            formalization=formalization,
            tags=tuple(self.tags),
            bindings=tuple(self.rqcode_findings),
        )


class RequirementRepository:
    """Record store with the queries the pipeline and reports need."""

    def __init__(self) -> None:
        self._records: Dict[str, RequirementRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, req_id: str) -> bool:
        return req_id in self._records

    def __iter__(self):
        return iter(self.all())

    def add(self, record: RequirementRecord) -> RequirementRecord:
        if record.req_id in self._records:
            raise ValueError(f"duplicate requirement id: {record.req_id}")
        self._records[record.req_id] = record
        return record

    def add_ir(self, ir: Requirement) -> RequirementRecord:
        """Store one IR record (the native ingestion path)."""
        return self.add(RequirementRecord.from_ir(ir))

    def extend_ir(self, irs: Iterable[Requirement]
                  ) -> List[RequirementRecord]:
        return [self.add_ir(ir) for ir in irs]

    @classmethod
    def from_irs(cls, irs: Iterable[Requirement]) -> "RequirementRepository":
        """Build a repository from an IR collection (any front-end)."""
        repository = cls()
        repository.extend_ir(irs)
        return repository

    def get(self, req_id: str) -> RequirementRecord:
        return self._records[req_id]

    def get_ir(self, req_id: str) -> Requirement:
        """The canonical IR of one stored record."""
        return self._records[req_id].to_ir()

    def all(self) -> List[RequirementRecord]:
        return sorted(self._records.values(), key=lambda r: r.req_id)

    def irs(self) -> List[Requirement]:
        """Every record canonicalized, sorted by id."""
        return [record.to_ir() for record in self.all()]

    def with_status(self, status: RequirementStatus
                    ) -> List[RequirementRecord]:
        return [r for r in self.all() if r.status is status]

    def at_least(self, status: RequirementStatus) -> List[RequirementRecord]:
        return [r for r in self.all() if r.status.rank() >= status.rank()]

    def from_source(self, source: RequirementSource
                    ) -> List[RequirementRecord]:
        return [r for r in self.all() if r.source is source]

    def from_frontend(self, frontend: str) -> List[RequirementRecord]:
        """Records lowered from one registered front-end."""
        return [r for r in self.all() if r.to_ir().source == frontend]

    def formalized(self) -> List[RequirementRecord]:
        return [r for r in self.all() if r.pattern is not None]

    def duplicate_groups(self) -> Dict[str, List[str]]:
        """Content fingerprint -> ids sharing it (cross-source dedup).

        Only groups with more than one member are returned; the digest
        ignores ids and provenance, so the same normative requirement
        reached through two front-ends lands in one group.
        """
        groups: Dict[str, List[str]] = {}
        for record in self.all():
            groups.setdefault(
                record.to_ir().content_fingerprint(), []).append(
                record.req_id)
        return {key: ids for key, ids in groups.items() if len(ids) > 1}

    def status_histogram(self) -> Dict[str, int]:
        histogram = {status.value: 0 for status in RequirementStatus}
        for record in self.all():
            histogram[record.status.value] += 1
        return histogram

    def traceability_rows(self) -> List[Dict[str, str]]:
        """One row per requirement for the E1 end-to-end table.

        ``trace`` is the short form of the record's provenance-chain
        digest (see :meth:`~repro.reqs.ir.Requirement.
        provenance_digests`): one column that commits to the full
        source chain ``repro reqs trace`` renders at length.
        """
        rows = []
        for record in self.all():
            chain = record.to_ir().provenance_chain_digest()
            rows.append({
                "req": record.req_id,
                "source": record.source.value,
                "status": record.status.value,
                "pattern": record.pattern.kind if record.pattern else "-",
                "ltl": record.ltl or "-",
                "bindings": ",".join(record.rqcode_findings) or "-",
                "trace": chain[:12] if chain else "-",
            })
        return rows
