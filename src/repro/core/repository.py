"""Requirement repository with lifecycle and traceability.

Every security requirement the framework handles — whatever its source
— becomes a :class:`RequirementRecord` that carries its lifecycle
status, its formalization artifacts (specification pattern, LTL and
TCTL renderings), and its bindings to enforcement mechanisms (RQCODE
finding ids).  The repository is the traceability backbone: experiment
E1's end-to-end table is a walk over these records.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.specpatterns.patterns import Pattern
from repro.specpatterns.scopes import Scope


class RequirementSource(enum.Enum):
    """Where a requirement came from (the three WP2 inputs)."""

    NATURAL_LANGUAGE = "natural-language"
    VULNERABILITY_DB = "vulnerability-db"
    STANDARD = "standard"


class RequirementStatus(enum.Enum):
    """Lifecycle stages, in order."""

    ELICITED = "elicited"
    ANALYZED = "analyzed"          # quality-checked (NALABS)
    FORMALIZED = "formalized"      # pattern + formula attached
    VERIFIED = "verified"          # model-checked / gate-passed
    DEPLOYED = "deployed"          # enforcement bound on hosts
    MONITORED = "monitored"        # runtime monitor active

    def rank(self) -> int:
        return _STATUS_ORDER.index(self)


_STATUS_ORDER = [
    RequirementStatus.ELICITED,
    RequirementStatus.ANALYZED,
    RequirementStatus.FORMALIZED,
    RequirementStatus.VERIFIED,
    RequirementStatus.DEPLOYED,
    RequirementStatus.MONITORED,
]


@dataclass
class RequirementRecord:
    """One requirement with full traceability."""

    req_id: str
    text: str
    source: RequirementSource
    status: RequirementStatus = RequirementStatus.ELICITED
    #: NALABS flags ('vagueness', ...) attached at analysis time.
    quality_flags: List[str] = field(default_factory=list)
    #: Specification-pattern formalization.
    pattern: Optional[Pattern] = None
    scope: Optional[Scope] = None
    ltl: str = ""
    tctl: str = ""
    #: RQCODE finding ids bound for check/enforce on hosts.
    rqcode_findings: List[str] = field(default_factory=list)
    #: Free-form provenance (CVE id, STIG id, document section).
    provenance: str = ""

    def advance_to(self, status: RequirementStatus) -> None:
        """Move the lifecycle forward; regression raises.

        The lifecycle is monotone: a verified requirement cannot drop
        back to elicited — re-analysis creates a new record instead.
        """
        if status.rank() < self.status.rank():
            raise ValueError(
                f"{self.req_id}: cannot regress from {self.status.value} "
                f"to {status.value}"
            )
        self.status = status


class RequirementRepository:
    """Record store with the queries the pipeline and reports need."""

    def __init__(self) -> None:
        self._records: Dict[str, RequirementRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, req_id: str) -> bool:
        return req_id in self._records

    def __iter__(self):
        return iter(self.all())

    def add(self, record: RequirementRecord) -> RequirementRecord:
        if record.req_id in self._records:
            raise ValueError(f"duplicate requirement id: {record.req_id}")
        self._records[record.req_id] = record
        return record

    def get(self, req_id: str) -> RequirementRecord:
        return self._records[req_id]

    def all(self) -> List[RequirementRecord]:
        return sorted(self._records.values(), key=lambda r: r.req_id)

    def with_status(self, status: RequirementStatus
                    ) -> List[RequirementRecord]:
        return [r for r in self.all() if r.status is status]

    def at_least(self, status: RequirementStatus) -> List[RequirementRecord]:
        return [r for r in self.all() if r.status.rank() >= status.rank()]

    def from_source(self, source: RequirementSource
                    ) -> List[RequirementRecord]:
        return [r for r in self.all() if r.source is source]

    def formalized(self) -> List[RequirementRecord]:
        return [r for r in self.all() if r.pattern is not None]

    def status_histogram(self) -> Dict[str, int]:
        histogram = {status.value: 0 for status in RequirementStatus}
        for record in self.all():
            histogram[record.status.value] += 1
        return histogram

    def traceability_rows(self) -> List[Dict[str, str]]:
        """One row per requirement for the E1 end-to-end table."""
        return [
            {
                "req": record.req_id,
                "source": record.source.value,
                "status": record.status.value,
                "pattern": record.pattern.kind if record.pattern else "-",
                "ltl": record.ltl or "-",
                "bindings": ",".join(record.rqcode_findings) or "-",
            }
            for record in self.all()
        ]
