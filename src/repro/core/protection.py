"""Reactive protection at operations (WP3).

Two protection styles, matching the E2 ablation:

* :class:`ProtectionLoop` — **event-driven**: subscribes to the host's
  event log; every event becomes a step fed to the armed LTL monitors;
  a FALSE verdict raises an :class:`Incident`, and the loop responds by
  enforcing the requirement's bound RQCODE findings, then re-arms.
* :class:`PollingProtection` — **polling** (the RQCODE
  ``MonitoringLoop`` style): on each ``poll()``, check the whole
  catalogue against the host and enforce whatever fails.

Both record incidents with detection latency, measured in host events
between the violation and its detection — the E2 metric.
"""

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.environment.events import Event
from repro.environment.host import SimulatedHost
from repro.ltl.compile import step_monitors
from repro.ltl.monitor import LtlMonitor
from repro.rqcode.catalog import StigCatalog
from repro.rqcode.concepts import CheckStatus, EnforcementStatus


@dataclass
class RepairAction:
    """One enforcement performed in response to a detection."""

    finding_id: str
    status: EnforcementStatus
    detail: str = ""


@dataclass
class Incident:
    """A detected violation and what was done about it."""

    req_id: str
    detected_at: int                # host logical time of detection
    trigger_kind: str               # event kind that tripped the monitor
    violation_time: Optional[int]   # time of the underlying violation
    repairs: List[RepairAction] = field(default_factory=list)

    @property
    def detection_latency(self) -> Optional[int]:
        """Host events between violation and detection (0 = immediate)."""
        if self.violation_time is None:
            return None
        return self.detected_at - self.violation_time

    @property
    def effective(self) -> bool:
        """True when a repair actually changed the host *and* the
        re-check passed (as opposed to a re-check that found the finding
        already compliant, or an enforcement that failed)."""
        return any(
            r.detail.startswith("enforced") and r.detail.endswith("PASS")
            for r in self.repairs
        )


#: kind -> its proposition list / step, computed once per event kind.
_PROPOSITIONS: Dict[str, List[str]] = {}
_STEPS: Dict[str, FrozenSet[str]] = {}


def event_propositions(event: Event) -> List[str]:
    """Propositions an event contributes to a monitoring step.

    The full kind plus every dotted prefix, so ``drift.audit`` satisfies
    atoms ``drift.audit`` and ``drift``.  Memoized per kind (event kinds
    form a small closed vocabulary); treat the result as read-only.
    """
    propositions = _PROPOSITIONS.get(event.kind)
    if propositions is None:
        parts = event.kind.split(".")
        propositions = [".".join(parts[:i])
                        for i in range(1, len(parts) + 1)]
        _PROPOSITIONS[event.kind] = propositions
    return propositions


def event_step(event: Event) -> FrozenSet[str]:
    """The event's propositions as a monitoring step, memoized per kind
    so the hot paths never rebuild the frozenset."""
    step = _STEPS.get(event.kind)
    if step is None:
        step = frozenset(event_propositions(event))
        _STEPS[event.kind] = step
    return step


class ProtectionLoop:
    """Event-driven detect -> respond -> re-arm loop for one host."""

    def __init__(self, host: SimulatedHost, catalog: StigCatalog,
                 monitors: Dict[str, LtlMonitor],
                 bindings: Optional[Dict[str, Sequence[str]]] = None):
        self.host = host
        self.catalog = catalog
        self.monitors = dict(monitors)
        self.bindings = {k: list(v) for k, v in (bindings or {}).items()}
        self.incidents: List[Incident] = []
        self._unsubscribe = None
        #: Last event time seen per requirement, to stamp violations.
        self._armed_since: Dict[str, int] = {
            req_id: host.events.clock for req_id in self.monitors}

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ProtectionLoop":
        """Attach to the host's event stream (idempotent)."""
        if self._unsubscribe is None:
            self._unsubscribe = self.host.events.subscribe(self._on_event)
        return self

    def stop(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- detection ----------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        # Batch stepping: the step is normalized once and fed to every
        # armed monitor; responses run after the sweep (equivalent —
        # the loop is detached during enforcement either way, so later
        # monitors never see repair events mid-sweep).
        for req_id in step_monitors(self.monitors, event_step(event)):
            self._respond(req_id, event)
            self.monitors[req_id].reset()
            self._armed_since[req_id] = event.time + 1

    def _respond(self, req_id: str, event: Event) -> None:
        incident = Incident(
            req_id=req_id,
            detected_at=event.time,
            trigger_kind=event.kind,
            violation_time=event.time,
        )
        # Enforcement happens while detached so repair events do not
        # re-trigger the very monitors doing the repairing.
        self.stop()
        try:
            for finding_id in self.bindings.get(req_id, []):
                incident.repairs.append(self._enforce(finding_id))
        finally:
            self.start()
        self.incidents.append(incident)

    def _enforce(self, finding_id: str) -> RepairAction:
        try:
            entry = self.catalog.get(finding_id)
        except KeyError:
            return RepairAction(
                finding_id=finding_id,
                status=EnforcementStatus.FAILURE,
                detail="finding not in catalogue",
            )
        requirement = entry.instantiate(self.host)
        # A requirement whose backend raises must degrade to a FAILURE
        # repair action, not tear down the loop: the serial analogue of
        # the SOC pipeline's exception escalation.
        try:
            if requirement.check() is CheckStatus.PASS:
                return RepairAction(
                    finding_id=finding_id,
                    status=EnforcementStatus.SUCCESS,
                    detail="already compliant",
                )
            status = requirement.enforce()
            after = requirement.check()
        except Exception as exc:
            return RepairAction(
                finding_id=finding_id,
                status=EnforcementStatus.FAILURE,
                detail=f"enforcement raised {type(exc).__name__}: {exc}",
            )
        detail = f"enforced; re-check {after.value}"
        return RepairAction(finding_id=finding_id, status=status,
                            detail=detail)

    # -- reporting -----------------------------------------------------------------

    def incident_count(self) -> int:
        return len(self.incidents)

    def repaired_count(self) -> int:
        return sum(
            1 for incident in self.incidents
            if incident.repairs and all(
                r.status is EnforcementStatus.SUCCESS
                for r in incident.repairs)
        )


class PollingProtection:
    """Poll-based protection: periodic full-catalogue check/enforce."""

    def __init__(self, host: SimulatedHost, catalog: StigCatalog):
        self.host = host
        self.catalog = catalog
        self.incidents: List[Incident] = []
        self.polls = 0

    def poll(self) -> List[Incident]:
        """One polling cycle: check everything, enforce what fails.

        The detection latency of each incident is the distance from the
        most recent drift event touching the host to this poll —
        polling can never beat the poll period.
        """
        self.polls += 1
        detected: List[Incident] = []
        last_drift = self.host.events.last("drift")
        for entry in self.catalog.entries_for(self.host.os_family):
            requirement = entry.instantiate(self.host)
            before = requirement.check()
            if before is CheckStatus.PASS:
                continue
            status = requirement.enforce()
            after = requirement.check()
            incident = Incident(
                req_id=entry.finding_id,
                detected_at=self.host.events.clock,
                trigger_kind="poll",
                violation_time=(last_drift.time
                                if last_drift is not None else None),
                repairs=[RepairAction(
                    finding_id=entry.finding_id, status=status,
                    detail=f"enforced; re-check {after.value}")],
            )
            detected.append(incident)
        self.incidents.extend(detected)
        return detected
