"""The VeriDevOps orchestrator: WP2 -> WP4 -> WP3 in one object.

``VeriDevOpsOrchestrator`` owns a requirement repository and builds the
prevention pipeline around it:

1. **Ingestion (WP2)** — :meth:`ingest_natural_language` (RESA
   boilerplate matching attaches patterns), :meth:`ingest_standards`
   (one requirement per catalogue finding, with its RQCODE binding),
   :meth:`ingest_vulnerabilities` (the vulndb generator).
2. **Prevention (WP4)** — :meth:`build_pipeline` assembles the staged
   pipeline with the five security gates; :meth:`run_prevention`
   executes it against target hosts.
3. **Protection (WP3)** — :meth:`start_protection` arms the
   event-driven loop on a deployed host with the monitors the pipeline
   produced, plus drift detectors for every standard-sourced binding.
"""

from typing import Dict, List, Optional, Sequence

from repro.core.gates import (
    ComplianceGate,
    FormalizationGate,
    MonitoringGate,
    RequirementsQualityGate,
    VerificationGate,
)
from repro.core.pipeline import (
    Job,
    Pipeline,
    PipelineContext,
    PipelineRun,
    Stage,
)
from repro.core.protection import ProtectionLoop
from repro.core.repository import (
    RequirementRecord,
    RequirementRepository,
    RequirementSource,
)
from repro.environment.host import SimulatedHost
from repro.ltl.compile import CompiledMonitor
from repro.ltl.monitor import LtlMonitor
from repro.ltl.parser import parse_ltl
from repro.resa.boilerplates import BoilerplateMatchError, match_boilerplate
from repro.resa.export import to_pattern
from repro.rqcode.catalog import StigCatalog, default_catalog
from repro.vulndb.database import VulnerabilityDatabase
from repro.vulndb.generator import RequirementGenerator, SoftwareInventory


def _event_compatible(monitor: LtlMonitor) -> bool:
    """Can *monitor* observe an event with no propositions and survive?

    Event logs assert only event atoms, so a formula falsified by an
    empty step (``G state_atom``) cannot be monitored on the stream.
    """
    from repro.ltl.formulas import FALSE
    from repro.ltl.monitor import progress

    return progress(monitor.formula, frozenset()) is not FALSE


class VeriDevOpsOrchestrator:
    """End-to-end driver for the framework."""

    def __init__(self, catalog: Optional[StigCatalog] = None):
        self.repository = RequirementRepository()
        self.catalog = catalog if catalog is not None else default_catalog()
        self._counter = 0

    # -- WP2: ingestion -------------------------------------------------------------

    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}-{self._counter:03d}"

    def ingest_natural_language(self, statements: Sequence[str]
                                ) -> List[RequirementRecord]:
        """Ingest NL statements; RESA matches attach a formal pattern.

        Statements outside the boilerplate grammar are still recorded
        (the quality gate will judge them); they simply carry no
        pattern and stay at the textual level.
        """
        records = []
        for text in statements:
            record = RequirementRecord(
                req_id=self._next_id("NL"),
                text=text,
                source=RequirementSource.NATURAL_LANGUAGE,
            )
            try:
                structured = match_boilerplate(record.req_id, text)
                record.pattern, record.scope = to_pattern(structured)
                record.provenance = f"boilerplate {structured.boilerplate_id}"
            except BoilerplateMatchError:
                record.provenance = "free-form (no boilerplate match)"
            records.append(self.repository.add(record))
        return records

    def ingest_resa_document(self, text: str) -> List[RequirementRecord]:
        """Ingest a RESA document (``ID: statement`` lines).

        Boilerplate-matched statements carry their exported pattern;
        statements with *error* diagnostics are recorded pattern-less so
        the quality gate can surface them.  The original requirement
        ids are preserved in provenance.
        """
        from repro.resa import parse_document
        from repro.resa.export import to_pattern as export_pattern

        document = parse_document(text)
        records = []
        for structured in document.requirements:
            record = RequirementRecord(
                req_id=self._next_id("NL"),
                text=structured.text,
                source=RequirementSource.NATURAL_LANGUAGE,
                provenance=(f"{structured.req_id} "
                            f"(boilerplate {structured.boilerplate_id})"),
            )
            record.pattern, record.scope = export_pattern(structured)
            records.append(self.repository.add(record))
        return records

    def ingest_standards(self, platform: str) -> List[RequirementRecord]:
        """One requirement per catalogue finding for *platform*."""
        from repro.specpatterns.patterns import Universality
        from repro.specpatterns.scopes import Globally

        records = []
        for entry in self.catalog.entries_for(platform):
            atom = f"compliant_{entry.finding_id}".replace("-", "_")
            record = RequirementRecord(
                req_id=self._next_id("STD"),
                text=(
                    f"The system shall satisfy STIG finding "
                    f"{entry.finding_id} continuously."
                ),
                source=RequirementSource.STANDARD,
                pattern=Universality(p=atom),
                scope=Globally(),
                rqcode_findings=[entry.finding_id],
                provenance=f"STIG {entry.finding_id} ({platform})",
            )
            records.append(self.repository.add(record))
        return records

    def ingest_iec62443(self, platform: str,
                        level=None) -> List[RequirementRecord]:
        """One requirement per IEC 62443-3-3 SR required at *level*.

        SRs with mapped findings applicable to *platform* carry those
        bindings (and so reach deployment and protection); unmapped SRs
        are still recorded, keeping the gap visible in traceability.
        """
        from repro.specpatterns.patterns import Universality
        from repro.specpatterns.scopes import Globally
        from repro.standards import (
            DEFAULT_SR_MAPPING,
            SecurityLevel,
            requirements_for_level,
        )

        level = level if level is not None else SecurityLevel.SL1
        platform_findings = set(self.catalog.finding_ids(platform))
        records = []
        for sr in requirements_for_level(level):
            mapping = DEFAULT_SR_MAPPING.get(sr.sr_id)
            bindings = []
            if mapping is not None:
                bindings = [fid for fid in mapping.finding_ids
                            if fid in platform_findings]
            atom = ("satisfied_" + sr.sr_id.replace(" ", "_")
                    .replace(".", "_"))
            record = RequirementRecord(
                req_id=self._next_id("IEC"),
                text=(f"The system shall satisfy {sr.sr_id} "
                      f"({sr.name}) continuously."),
                source=RequirementSource.STANDARD,
                pattern=Universality(p=atom),
                scope=Globally(),
                rqcode_findings=bindings,
                provenance=(f"IEC 62443-3-3 {sr.sr_id}, baseline "
                            f"SL{sr.baseline_level.value}: {sr.intent}"),
            )
            records.append(self.repository.add(record))
        return records

    def ingest_vulnerabilities(self, database: VulnerabilityDatabase,
                               inventory: SoftwareInventory
                               ) -> List[RequirementRecord]:
        """Run the vulndb generator and record its requirements."""
        from repro.specpatterns import patterns as pat
        from repro.specpatterns.scopes import Globally

        def atom(prefix: str, cve: str) -> str:
            return f"{prefix}_{cve}".replace("-", "_")

        factory = {
            "Absence": lambda r: pat.Absence(
                p=atom("exploit", r.source_cve)),
            "Existence": lambda r: pat.Existence(
                p=atom("audited", r.source_cve)),
            "Universality": lambda r: pat.Universality(
                p=atom("hardened", r.source_cve)),
            "Precedence": lambda r: pat.Precedence(
                p=atom("access", r.source_cve),
                s=atom("authz", r.source_cve)),
            "TimedResponse": lambda r: pat.TimedResponse(
                p=atom("exhaustion", r.source_cve),
                s=atom("recovered", r.source_cve), bound=60),
        }
        report = RequirementGenerator(database).generate(inventory)
        records = []
        for generated in report.requirements:
            record = RequirementRecord(
                req_id=self._next_id("VDB"),
                text=generated.text,
                source=RequirementSource.VULNERABILITY_DB,
                pattern=factory[generated.pattern_family](generated),
                scope=Globally(),
                provenance=(
                    f"{generated.source_cve} "
                    f"({generated.cwe_category}, "
                    f"{generated.severity.value})"
                ),
            )
            records.append(self.repository.add(record))
        return records

    # -- WP4: prevention ---------------------------------------------------------------

    def build_pipeline(self,
                       max_smelly_ratio: float = 0.35,
                       min_formalized_ratio: float = 0.5,
                       min_compliance: float = 1.0,
                       verification_tasks: Optional[list] = None,
                       max_workers: Optional[int] = None,
                       cache=None
                       ) -> Pipeline:
        """Assemble the staged prevention pipeline.

        ``max_workers`` parallelizes stage jobs (wave-scheduled on the
        keys they declare) and the verification gate's per-requirement
        queries; ``cache`` (a :class:`~repro.prevention.
        VerificationCache`) makes re-runs incremental — only tasks
        whose fingerprints changed are re-checked.
        """
        def load_requirements(context: PipelineContext) -> str:
            context.put("repository", self.repository)
            return f"{len(self.repository)} requirements loaded"

        def load_verification(context: PipelineContext) -> str:
            tasks = verification_tasks or []
            context.put("verification_tasks", tasks)
            return f"{len(tasks)} verification tasks queued"

        return Pipeline([
            Stage(
                name="requirements",
                jobs=[Job("load-requirements", load_requirements,
                          writes=("repository",))],
                gates=[RequirementsQualityGate(
                    max_smelly_ratio=max_smelly_ratio)],
            ),
            Stage(
                name="formalization",
                jobs=[],
                gates=[FormalizationGate(
                    min_formalized_ratio=min_formalized_ratio)],
            ),
            Stage(
                name="verification",
                jobs=[Job("load-verification-tasks", load_verification,
                          writes=("verification_tasks",))],
                gates=[VerificationGate(cache=cache,
                                        max_workers=max_workers)],
            ),
            Stage(
                name="deployment",
                jobs=[],
                gates=[
                    ComplianceGate(self.catalog,
                                   min_compliance=min_compliance),
                    MonitoringGate(),
                ],
            ),
        ], max_workers=max_workers)

    def run_prevention(self, hosts: Sequence[SimulatedHost],
                       verification_tasks: Optional[list] = None,
                       max_workers: Optional[int] = None,
                       cache=None,
                       **thresholds) -> PipelineRun:
        """Run the full prevention pipeline against *hosts*."""
        pipeline = self.build_pipeline(
            verification_tasks=verification_tasks,
            max_workers=max_workers, cache=cache, **thresholds)
        context = PipelineContext(hosts=list(hosts))
        return pipeline.run(context)

    # -- WP3: protection -----------------------------------------------------------------

    def protection_plan(self, host: SimulatedHost,
                        run: Optional[PipelineRun] = None):
        """The monitors and RQCODE bindings protecting *host*.

        Uses the monitors the pipeline produced (when *run* is given)
        and always adds drift detectors for every standard-sourced
        requirement bound to catalogue findings: ``G !drift`` tied to
        the finding's enforcement.  Returns ``(monitors, bindings)`` —
        the plan both the serial :class:`ProtectionLoop` and the
        concurrent SOC runtime arm.
        """
        monitors: Dict[str, LtlMonitor] = {}
        bindings: Dict[str, List[str]] = {}
        if run is not None and run.context is not None:
            for req_id, monitor in run.context.get("monitors", {}).items():
                # Event streams only assert event atoms; a monitor that
                # demands a proposition on *every* step (state-style
                # universality, e.g. ``G compliant_X``) would go FALSE on
                # the first event.  Those requirements are protected by
                # the drift detectors below instead.
                if _event_compatible(monitor):
                    monitors[req_id] = monitor
        for record in self.repository.from_source(RequirementSource.STANDARD):
            # Only findings applicable to this host's platform: a fleet
            # orchestrator carries both platforms' standards, and a
            # Windows binding must never be enforced on an Ubuntu box.
            applicable = [
                fid for fid in record.rqcode_findings
                if fid in self.catalog
                and self.catalog.get(fid).platform == host.os_family
            ]
            if not applicable:
                continue
            drift_id = f"{record.req_id}/drift"
            atom = self._drift_atom(applicable)
            monitors[drift_id] = CompiledMonitor(parse_ltl(f"G !{atom}"))
            bindings[drift_id] = applicable
        return monitors, bindings

    def start_protection(self, host: SimulatedHost,
                         run: Optional[PipelineRun] = None
                         ) -> ProtectionLoop:
        """Arm the event-driven protection loop on a deployed host."""
        monitors, bindings = self.protection_plan(host, run)
        loop = ProtectionLoop(host, self.catalog, monitors, bindings)
        return loop.start()

    def _drift_atom(self, finding_ids: Sequence[str]) -> str:
        """The drift-event kind a finding's monitor should watch.

        Package findings care about ``drift.package``, configuration
        findings about ``drift.config``, and so on; findings of unknown
        shape fall back to the coarse ``drift`` prefix.
        """
        from repro.rqcode.ubuntu import (
            UbuntuConfigPattern,
            UbuntuPackagePattern,
            UbuntuServicePattern,
        )
        from repro.rqcode.win10 import AuditPolicyRequirement
        from repro.rqcode.win10_accounts import AccountPolicyRequirement
        from repro.rqcode.win10_registry import RegistryValueRequirement

        kinds = set()
        for finding_id in finding_ids:
            cls = self.catalog.get(finding_id).requirement_class
            if issubclass(cls, UbuntuPackagePattern):
                kinds.add("drift.package")
            elif issubclass(cls, UbuntuConfigPattern):
                kinds.add("drift.config")
            elif issubclass(cls, UbuntuServicePattern):
                kinds.add("drift.service")
            elif issubclass(cls, AuditPolicyRequirement):
                kinds.add("drift.audit")
            elif issubclass(cls, RegistryValueRequirement):
                kinds.add("drift.registry")
            elif issubclass(cls, AccountPolicyRequirement):
                kinds.add("drift.account")
        if len(kinds) == 1:
            return kinds.pop()
        return "drift"
