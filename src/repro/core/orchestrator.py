"""The VeriDevOps orchestrator: WP2 -> WP4 -> WP3 in one object.

``VeriDevOpsOrchestrator`` owns a requirement repository and builds the
prevention pipeline around it:

1. **Ingestion (WP2)** — every ingestion method lowers its native
   objects through the registered front-end adapter
   (:mod:`repro.reqs.adapters`) into the canonical Requirement IR and
   stores the result: :meth:`ingest_natural_language` (RESA
   boilerplate matching attaches patterns), :meth:`ingest_standards`
   (one requirement per catalogue finding, with its RQCODE binding),
   :meth:`ingest_vulnerabilities` (the vulndb generator), plus the
   source-agnostic :meth:`ingest_ir` / :meth:`ingest_frontend` for IR
   produced elsewhere.  A record ingested through a native method and
   one lowered externally through the registry are field-for-field
   identical, so prevention-cache fingerprints agree across paths.
2. **Prevention (WP4)** — :meth:`build_pipeline` assembles the staged
   pipeline with the five security gates; :meth:`run_prevention`
   executes it against target hosts.
3. **Protection (WP3)** — :meth:`start_protection` arms the
   event-driven loop on a deployed host with the monitors the pipeline
   produced, plus drift detectors for every standard-sourced binding.
"""

from typing import Dict, List, Optional, Sequence

from repro.core.gates import (
    ComplianceGate,
    FormalizationGate,
    MonitoringGate,
    RequirementsQualityGate,
    VerificationGate,
)
from repro.core.pipeline import (
    Job,
    Pipeline,
    PipelineContext,
    PipelineRun,
    Stage,
)
from repro.core.protection import ProtectionLoop
from repro.core.repository import (
    RequirementRecord,
    RequirementRepository,
    RequirementSource,
)
from repro.environment.host import SimulatedHost
from repro.ltl.compile import CompiledMonitor
from repro.ltl.monitor import LtlMonitor
from repro.ltl.parser import parse_ltl
from repro.reqs.ir import Requirement
from repro.reqs.registry import FrontendRegistry, default_registry
from repro.rqcode.catalog import StigCatalog, default_catalog
from repro.vulndb.database import VulnerabilityDatabase
from repro.vulndb.generator import RequirementGenerator, SoftwareInventory


def _event_compatible(monitor: LtlMonitor) -> bool:
    """Can *monitor* observe an event with no propositions and survive?

    Event logs assert only event atoms, so a formula falsified by an
    empty step (``G state_atom``) cannot be monitored on the stream.
    """
    from repro.ltl.formulas import FALSE
    from repro.ltl.monitor import progress

    return progress(monitor.formula, frozenset()) is not FALSE


class VeriDevOpsOrchestrator:
    """End-to-end driver for the framework."""

    def __init__(self, catalog: Optional[StigCatalog] = None,
                 registry: Optional[FrontendRegistry] = None):
        self.repository = RequirementRepository()
        self.catalog = catalog if catalog is not None else default_catalog()
        self.registry = registry if registry is not None \
            else default_registry()
        self._counter = 0

    # -- WP2: ingestion -------------------------------------------------------------

    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}-{self._counter:03d}"

    def _ids(self, prefix: str):
        """An id allocator adapters can draw from (shared counter)."""
        return lambda: self._next_id(prefix)

    def ingest_ir(self, irs: Sequence[Requirement]
                  ) -> List[RequirementRecord]:
        """Store IR records lowered elsewhere (any front-end)."""
        return self.repository.extend_ir(irs)

    def ingest_frontend(self, name: str,
                        natives: Optional[Sequence] = None
                        ) -> List[RequirementRecord]:
        """Lower one registered front-end and store the result.

        With *natives* omitted, the adapter's bundled corpus is
        lowered — the uniform path ``repro reqs`` and the SOC's
        front-end arming use.
        """
        if natives is None:
            irs = self.registry.lower_bundled(name)
        else:
            irs = self.registry.lower(name, natives)
        return self.ingest_ir(irs)

    def ingest_natural_language(self, statements: Sequence[str]
                                ) -> List[RequirementRecord]:
        """Ingest NL statements; RESA matches attach a formal pattern.

        Statements outside the boilerplate grammar are still recorded
        (the quality gate will judge them); they simply carry no
        pattern and stay at the textual level.
        """
        return self.ingest_ir(self.registry.lower(
            "resa", list(statements), ids=self._ids("NL")))

    def ingest_resa_document(self, text: str) -> List[RequirementRecord]:
        """Ingest a RESA document (``ID: statement`` lines).

        Boilerplate-matched statements carry their exported pattern;
        statements with *error* diagnostics are recorded pattern-less so
        the quality gate can surface them.  The original requirement
        ids are preserved in provenance.
        """
        from repro.resa import parse_document

        document = parse_document(text)
        return self.ingest_ir(self.registry.lower(
            "resa", document.requirements, ids=self._ids("NL")))

    def ingest_standards(self, platform: str) -> List[RequirementRecord]:
        """One requirement per catalogue finding for *platform*."""
        return self.ingest_ir(self.registry.lower(
            "rqcode", self.catalog.entries_for(platform),
            ids=self._ids("STD")))

    def ingest_iec62443(self, platform: str,
                        level=None) -> List[RequirementRecord]:
        """One requirement per IEC 62443-3-3 SR required at *level*.

        SRs with mapped findings applicable to *platform* carry those
        bindings (and so reach deployment and protection); unmapped SRs
        are still recorded, keeping the gap visible in traceability.
        """
        from repro.standards import (
            DEFAULT_SR_MAPPING,
            SecurityLevel,
            requirements_for_level,
        )

        level = level if level is not None else SecurityLevel.SL1
        platform_findings = set(self.catalog.finding_ids(platform))
        natives = []
        for sr in requirements_for_level(level):
            mapping = DEFAULT_SR_MAPPING.get(sr.sr_id)
            bindings = ()
            if mapping is not None:
                bindings = tuple(fid for fid in mapping.finding_ids
                                 if fid in platform_findings)
            natives.append((sr, bindings))
        return self.ingest_ir(self.registry.lower(
            "standards", natives, ids=self._ids("IEC")))

    def ingest_vulnerabilities(self, database: VulnerabilityDatabase,
                               inventory: SoftwareInventory
                               ) -> List[RequirementRecord]:
        """Run the vulndb generator and record its requirements."""
        report = RequirementGenerator(database).generate(inventory)
        return self.ingest_ir(self.registry.lower(
            "vulndb", report.requirements, ids=self._ids("VDB")))

    # -- WP4: prevention ---------------------------------------------------------------

    def build_pipeline(self,
                       max_smelly_ratio: float = 0.35,
                       min_formalized_ratio: float = 0.5,
                       min_compliance: float = 1.0,
                       verification_tasks: Optional[list] = None,
                       max_workers: Optional[int] = None,
                       cache=None
                       ) -> Pipeline:
        """Assemble the staged prevention pipeline.

        ``max_workers`` parallelizes stage jobs (wave-scheduled on the
        keys they declare) and the verification gate's per-requirement
        queries; ``cache`` (a :class:`~repro.prevention.
        VerificationCache`) makes re-runs incremental — only tasks
        whose fingerprints changed are re-checked.
        """
        def load_requirements(context: PipelineContext) -> str:
            context.put("repository", self.repository)
            return f"{len(self.repository)} requirements loaded"

        def load_verification(context: PipelineContext) -> str:
            tasks = verification_tasks or []
            context.put("verification_tasks", tasks)
            return f"{len(tasks)} verification tasks queued"

        return Pipeline([
            Stage(
                name="requirements",
                jobs=[Job("load-requirements", load_requirements,
                          writes=("repository",))],
                gates=[RequirementsQualityGate(
                    max_smelly_ratio=max_smelly_ratio)],
            ),
            Stage(
                name="formalization",
                jobs=[],
                gates=[FormalizationGate(
                    min_formalized_ratio=min_formalized_ratio)],
            ),
            Stage(
                name="verification",
                jobs=[Job("load-verification-tasks", load_verification,
                          writes=("verification_tasks",))],
                gates=[VerificationGate(cache=cache,
                                        max_workers=max_workers)],
            ),
            Stage(
                name="deployment",
                jobs=[],
                gates=[
                    ComplianceGate(self.catalog,
                                   min_compliance=min_compliance),
                    MonitoringGate(),
                ],
            ),
        ], max_workers=max_workers)

    def run_prevention(self, hosts: Sequence[SimulatedHost],
                       verification_tasks: Optional[list] = None,
                       max_workers: Optional[int] = None,
                       cache=None,
                       scheduler=None,
                       risk=None,
                       **thresholds) -> PipelineRun:
        """Run the full prevention pipeline against *hosts*.

        An explicit *scheduler* (:class:`repro.sched.Scheduler`) routes
        the whole run — stage jobs and verification fan-out — through
        that scheduler, which is how journaled, crash-resumable runs
        are driven (see :mod:`repro.sched.runner`).

        A *risk* index (:class:`repro.reqs.risk.RiskIndex`) lands in
        the pipeline context as ``risk_index``: serial stage execution
        re-orders through the risk-aware wave planner (high-risk jobs
        as early as their conflicts allow) and the verification gate
        drains its pending queries highest-risk-first.
        """
        pipeline = self.build_pipeline(
            verification_tasks=verification_tasks,
            max_workers=max_workers, cache=cache, **thresholds)
        context = PipelineContext(hosts=list(hosts))
        if risk is not None:
            context.put("risk_index", risk)
        return pipeline.run(context, scheduler=scheduler)

    # -- WP3: protection -----------------------------------------------------------------

    def protection_plan(self, host: SimulatedHost,
                        run: Optional[PipelineRun] = None):
        """The monitors and RQCODE bindings protecting *host*.

        Uses the monitors the pipeline produced (when *run* is given)
        and always adds drift detectors for every standard-sourced
        requirement bound to catalogue findings: ``G !drift`` tied to
        the finding's enforcement.  Returns ``(monitors, bindings)`` —
        the plan both the serial :class:`ProtectionLoop` and the
        concurrent SOC runtime arm.
        """
        monitors: Dict[str, LtlMonitor] = {}
        bindings: Dict[str, List[str]] = {}
        if run is not None and run.context is not None:
            for req_id, monitor in run.context.get("monitors", {}).items():
                # Event streams only assert event atoms; a monitor that
                # demands a proposition on *every* step (state-style
                # universality, e.g. ``G compliant_X``) would go FALSE on
                # the first event.  Those requirements are protected by
                # the drift detectors below instead.
                if _event_compatible(monitor):
                    monitors[req_id] = monitor
        for record in self.repository.from_source(RequirementSource.STANDARD):
            # Only findings applicable to this host's platform: a fleet
            # orchestrator carries both platforms' standards, and a
            # Windows binding must never be enforced on an Ubuntu box.
            applicable = [
                fid for fid in record.rqcode_findings
                if fid in self.catalog
                and self.catalog.get(fid).platform == host.os_family
            ]
            if not applicable:
                continue
            drift_id = f"{record.req_id}/drift"
            atom = self._drift_atom(applicable)
            monitors[drift_id] = CompiledMonitor(parse_ltl(f"G !{atom}"))
            bindings[drift_id] = applicable
        return monitors, bindings

    def start_protection(self, host: SimulatedHost,
                         run: Optional[PipelineRun] = None
                         ) -> ProtectionLoop:
        """Arm the event-driven protection loop on a deployed host."""
        monitors, bindings = self.protection_plan(host, run)
        loop = ProtectionLoop(host, self.catalog, monitors, bindings)
        return loop.start()

    def _drift_atom(self, finding_ids: Sequence[str]) -> str:
        """The drift-event kind a finding's monitor should watch.

        One rule, two consumers: cold planning here and live delta
        re-arming in :mod:`repro.soc.rearm` — the shared implementation
        keeps their monitor sets provably identical.
        """
        from repro.soc.rearm import drift_atom

        return drift_atom(self.catalog, finding_ids)
