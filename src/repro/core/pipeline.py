"""Deterministic CI/CD pipeline engine.

The paper's contribution is *what the security gates do*, not the CI
vendor, so the engine is minimal and deterministic: stages run in
order; each stage runs its jobs, then its gates evaluate against the
shared :class:`PipelineContext`.  A failing job or gate stops the
pipeline (fail-fast, like a protected branch).

Jobs and gates communicate exclusively through context artifacts, which
keeps every gate independently testable.

Parallel execution: with ``max_workers > 1`` a stage fans independent
jobs out to a thread pool.  Jobs opt in by declaring the context keys
they ``reads``/``writes``; the scheduler partitions a stage's job list
into in-order *waves* where every pair of jobs is disjoint (no
write/write, read/write or write/read overlap).  Jobs that declare
nothing are scheduled as solo barriers — exactly the serial behavior —
so parallelism is never inferred, only declared.  A job that writes a
key another job in the same wave already wrote (i.e. it lied about its
write set) is stopped with :class:`ConcurrentWriteError` rather than
silently interleaving.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class ConcurrentWriteError(RuntimeError):
    """Two jobs in one parallel wave wrote the same context key."""


class PipelineContext:
    """Shared artifact store for one pipeline run (thread-safe)."""

    def __init__(self, **initial: Any):
        self._artifacts: Dict[str, Any] = dict(initial)
        self._lock = threading.Lock()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._artifacts

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            return self._artifacts.get(key, default)

    def require(self, key: str) -> Any:
        with self._lock:
            if key not in self._artifacts:
                raise KeyError(
                    f"pipeline artifact {key!r} missing; produced artifacts: "
                    f"{sorted(self._artifacts)}"
                )
            return self._artifacts[key]

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._artifacts[key] = value

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._artifacts)


class _GuardedContext:
    """Per-job context proxy for one parallel wave.

    Delegates everything to the real context but registers each write
    in the wave's shared ledger; a second job writing the same key in
    the same wave is a scheduling lie and raises
    :class:`ConcurrentWriteError` instead of silently interleaving.
    """

    def __init__(self, context: PipelineContext, job_name: str,
                 ledger: Dict[str, str], ledger_lock: threading.Lock):
        self._context = context
        self._job_name = job_name
        self._ledger = ledger
        self._ledger_lock = ledger_lock

    def __contains__(self, key: str) -> bool:
        return key in self._context

    def get(self, key: str, default: Any = None) -> Any:
        return self._context.get(key, default)

    def require(self, key: str) -> Any:
        return self._context.require(key)

    def keys(self) -> List[str]:
        return self._context.keys()

    def put(self, key: str, value: Any) -> None:
        with self._ledger_lock:
            earlier = self._ledger.get(key)
            if earlier is not None and earlier != self._job_name:
                raise ConcurrentWriteError(
                    f"jobs {earlier!r} and {self._job_name!r} both wrote "
                    f"context key {key!r} in the same parallel wave; "
                    f"declare the key in their writes= so the scheduler "
                    f"serializes them"
                )
            self._ledger[key] = self._job_name
        self._context.put(key, value)


@dataclass
class JobResult:
    """Outcome of one job."""

    name: str
    passed: bool
    detail: str = ""
    duration_s: float = 0.0


@dataclass
class Job:
    """A named unit of work: ``run(context) -> detail string``.

    The callable raises to fail the job; its return value (or the
    exception text) lands in the result detail.  ``reads``/``writes``
    declare the context keys the job touches — the parallel scheduler
    only co-schedules jobs with disjoint declarations, and a job
    declaring neither runs alone (a barrier).
    """

    name: str
    run: Callable[[PipelineContext], Optional[str]]
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()

    @property
    def declared(self) -> bool:
        return bool(self.reads or self.writes)

    def execute(self, context: Any) -> JobResult:
        started = time.perf_counter()
        try:
            detail = self.run(context) or ""
        except ConcurrentWriteError:
            raise  # a scheduling bug, not a job failure: stop the world
        except Exception as error:  # noqa: BLE001 - report, don't crash CI
            return JobResult(
                name=self.name, passed=False,
                detail=f"{type(error).__name__}: {error}",
                duration_s=time.perf_counter() - started,
            )
        return JobResult(
            name=self.name, passed=True, detail=detail,
            duration_s=time.perf_counter() - started,
        )


@dataclass
class StageResult:
    """Outcome of one stage: job results plus gate results."""

    name: str
    job_results: List[JobResult] = field(default_factory=list)
    gate_results: List["GateOutcome"] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (all(j.passed for j in self.job_results)
                and all(g.passed for g in self.gate_results))


@dataclass
class GateOutcome:
    """A gate verdict as recorded in the run (gate name + result)."""

    gate: str
    passed: bool
    detail: str = ""


@dataclass
class Stage:
    """A pipeline stage: jobs then gates.

    ``gates`` holds objects with ``name`` and ``evaluate(context) ->
    GateResult`` (see :mod:`repro.core.gates`); the engine only needs
    that protocol.
    """

    name: str
    jobs: List[Job] = field(default_factory=list)
    gates: List[Any] = field(default_factory=list)


@dataclass
class PipelineRun:
    """The record of one pipeline execution."""

    stage_results: List[StageResult] = field(default_factory=list)
    context: Optional[PipelineContext] = None

    @property
    def passed(self) -> bool:
        return all(stage.passed for stage in self.stage_results)

    @property
    def failed_stage(self) -> Optional[str]:
        for stage in self.stage_results:
            if not stage.passed:
                return stage.name
        return None

    def gate_rows(self) -> List[Dict[str, str]]:
        """One row per gate evaluation, for reports."""
        rows = []
        for stage in self.stage_results:
            for outcome in stage.gate_results:
                rows.append({
                    "stage": stage.name,
                    "gate": outcome.gate,
                    "verdict": "PASS" if outcome.passed else "FAIL",
                    "detail": outcome.detail,
                })
        return rows

    def summary(self) -> str:
        stages = len(self.stage_results)
        verdict = "passed" if self.passed else (
            f"failed at stage {self.failed_stage!r}")
        return f"pipeline {verdict} ({stages} stages run)"


def plan_waves(jobs: Sequence[Job]) -> List[List[Job]]:
    """Partition *jobs* into in-order waves of pairwise-disjoint jobs.

    Greedy in declaration order: a job joins the current wave when its
    declared reads/writes conflict with nothing already in the wave
    (write/write, read/write, write/read); otherwise it starts the next
    wave.  Undeclared jobs are solo barriers.  Order within a wave is
    irrelevant by construction; order across waves preserves the
    declaration order.
    """
    waves: List[List[Job]] = []
    current: List[Job] = []
    wave_reads: set = set()
    wave_writes: set = set()

    def flush():
        nonlocal current, wave_reads, wave_writes
        if current:
            waves.append(current)
        current, wave_reads, wave_writes = [], set(), set()

    for job in jobs:
        if not job.declared:
            flush()
            waves.append([job])
            continue
        reads, writes = set(job.reads), set(job.writes)
        conflict = (writes & wave_writes or writes & wave_reads
                    or reads & wave_writes)
        if current and conflict:
            flush()
        current.append(job)
        wave_reads |= reads
        wave_writes |= writes
    flush()
    return waves


class Pipeline:
    """An ordered list of stages, executed fail-fast.

    ``max_workers`` (here or per-:meth:`run`) enables the wave
    scheduler; the default of ``None`` (or ``1``) runs every job in
    declaration order on the calling thread — byte-for-byte the serial
    engine.
    """

    def __init__(self, stages: Sequence[Stage],
                 max_workers: Optional[int] = None):
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.stages = list(stages)
        self.max_workers = max_workers

    def run(self, context: Optional[PipelineContext] = None,
            max_workers: Optional[int] = None) -> PipelineRun:
        """Execute all stages against *context* (created when omitted)."""
        workers = max_workers if max_workers is not None else self.max_workers
        context = context if context is not None else PipelineContext()
        run = PipelineRun(context=context)
        for stage in self.stages:
            result = StageResult(name=stage.name)
            run.stage_results.append(result)
            if workers is None or workers <= 1:
                for job in stage.jobs:
                    job_result = job.execute(context)
                    result.job_results.append(job_result)
                    if not job_result.passed:
                        return run
            else:
                if not self._run_waves(stage, context, workers, result):
                    return run
            for gate in stage.gates:
                gate_result = gate.evaluate(context)
                result.gate_results.append(GateOutcome(
                    gate=gate.name,
                    passed=gate_result.passed,
                    detail=gate_result.detail,
                ))
                if not gate_result.passed:
                    return run
        return run

    @staticmethod
    def _run_waves(stage: Stage, context: PipelineContext, workers: int,
                   result: StageResult) -> bool:
        """Run one stage's jobs wave by wave; False stops the pipeline."""
        for wave in plan_waves(stage.jobs):
            if len(wave) == 1:
                job_result = wave[0].execute(context)
                result.job_results.append(job_result)
                if not job_result.passed:
                    return False
                continue
            ledger: Dict[str, str] = {}
            ledger_lock = threading.Lock()
            guarded = [
                _GuardedContext(context, job.name, ledger, ledger_lock)
                for job in wave
            ]
            with ThreadPoolExecutor(
                    max_workers=min(workers, len(wave))) as pool:
                futures = [pool.submit(job.execute, proxy)
                           for job, proxy in zip(wave, guarded)]
                wave_results = [future.result() for future in futures]
            result.job_results.extend(wave_results)
            if not all(job_result.passed for job_result in wave_results):
                return False
        return True
