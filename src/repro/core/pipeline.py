"""Deterministic CI/CD pipeline engine.

The paper's contribution is *what the security gates do*, not the CI
vendor, so the engine is minimal and deterministic: stages run in
order; each stage runs its jobs, then its gates evaluate against the
shared :class:`PipelineContext`.  A failing job or gate stops the
pipeline (fail-fast, like a protected branch).

Jobs and gates communicate exclusively through context artifacts, which
keeps every gate independently testable.

Parallel execution is delegated to the unified work scheduler
(:mod:`repro.sched`): with ``max_workers > 1`` — or an explicit
``scheduler=`` — each stage's jobs become scheduler tasks.  Jobs opt in
by declaring the context keys they ``reads``/``writes``; the
scheduler's dependency linker applies the same conflict rules the wave
partitioner used (no write/write, read/write or write/read overlap),
but as a DAG, so a slow job only holds back its true dependents.  Jobs
that declare nothing are barriers — exactly the serial behavior — so
parallelism is never inferred, only declared.  A job that writes a key
another, unordered job already wrote (i.e. it lied about its write
set) is stopped with :class:`ConcurrentWriteError` rather than
silently interleaving.

``plan_waves`` remains as the declarative view of the same conflict
rules (and the reference for what the scheduler must serialize).
"""

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.sched.scheduler import Scheduler
from repro.sched.task import Task as SchedTask
from repro.sched.task import link as sched_link


class ConcurrentWriteError(RuntimeError):
    """Two unordered parallel jobs wrote the same context key."""


class PipelineContext:
    """Shared artifact store for one pipeline run (thread-safe).

    ``scheduler`` rides along as a plain attribute, *not* an artifact:
    gates use it to fan work out through the same scheduler (and
    journal) as the run itself, but it must never show up in
    :meth:`keys` — artifacts are data, the scheduler is machinery.
    """

    def __init__(self, **initial: Any):
        self._artifacts: Dict[str, Any] = dict(initial)
        self._lock = threading.Lock()
        self.scheduler: Optional[Scheduler] = None

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._artifacts

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            return self._artifacts.get(key, default)

    def require(self, key: str) -> Any:
        with self._lock:
            if key not in self._artifacts:
                raise KeyError(
                    f"pipeline artifact {key!r} missing; produced artifacts: "
                    f"{sorted(self._artifacts)}"
                )
            return self._artifacts[key]

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._artifacts[key] = value

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._artifacts)


class _WriteGuard:
    """Write ledger for one scheduled stage.

    Records which task wrote each context key.  A task writing a key
    previously written by a job that is *not* among its ancestors in
    the stage DAG lied about its write set — the two could have
    interleaved — so the run is stopped with
    :class:`ConcurrentWriteError` instead of silently racing.
    """

    def __init__(self, ancestors: List[Set[int]]):
        self._ancestors = ancestors
        self._writes: Dict[str, Tuple[int, str]] = {}
        self._lock = threading.Lock()

    def note(self, key: str, index: int, job_name: str) -> None:
        with self._lock:
            earlier = self._writes.get(key)
            if earlier is not None:
                earlier_index, earlier_name = earlier
                if (earlier_name != job_name
                        and earlier_index not in self._ancestors[index]):
                    raise ConcurrentWriteError(
                        f"jobs {earlier_name!r} and {job_name!r} both wrote "
                        f"context key {key!r} in the same parallel wave; "
                        f"declare the key in their writes= so the scheduler "
                        f"serializes them"
                    )
            self._writes[key] = (index, job_name)


class _GuardedContext:
    """Per-job context proxy for one scheduled stage.

    Delegates everything to the real context but registers each write
    with the stage's :class:`_WriteGuard`.
    """

    def __init__(self, context: PipelineContext, job_name: str,
                 index: int, guard: _WriteGuard):
        self._context = context
        self._job_name = job_name
        self._index = index
        self._guard = guard

    def __contains__(self, key: str) -> bool:
        return key in self._context

    def get(self, key: str, default: Any = None) -> Any:
        return self._context.get(key, default)

    def require(self, key: str) -> Any:
        return self._context.require(key)

    def keys(self) -> List[str]:
        return self._context.keys()

    def put(self, key: str, value: Any) -> None:
        self._guard.note(key, self._index, self._job_name)
        self._context.put(key, value)


@dataclass
class JobResult:
    """Outcome of one job."""

    name: str
    passed: bool
    detail: str = ""
    duration_s: float = 0.0


@dataclass
class Job:
    """A named unit of work: ``run(context) -> detail string``.

    The callable raises to fail the job; its return value (or the
    exception text) lands in the result detail.  ``reads``/``writes``
    declare the context keys the job touches — the scheduler only
    overlaps jobs with disjoint declarations, and a job declaring
    neither runs alone (a barrier).
    """

    name: str
    run: Callable[[PipelineContext], Optional[str]]
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()

    @property
    def declared(self) -> bool:
        return bool(self.reads or self.writes)

    def execute(self, context: Any) -> JobResult:
        started = time.perf_counter()
        try:
            detail = self.run(context) or ""
        except ConcurrentWriteError:
            raise  # a scheduling bug, not a job failure: stop the world
        except Exception as error:  # noqa: BLE001 - report, don't crash CI
            return JobResult(
                name=self.name, passed=False,
                detail=f"{type(error).__name__}: {error}",
                duration_s=time.perf_counter() - started,
            )
        return JobResult(
            name=self.name, passed=True, detail=detail,
            duration_s=time.perf_counter() - started,
        )


@dataclass
class StageResult:
    """Outcome of one stage: job results plus gate results."""

    name: str
    job_results: List[JobResult] = field(default_factory=list)
    gate_results: List["GateOutcome"] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (all(j.passed for j in self.job_results)
                and all(g.passed for g in self.gate_results))


@dataclass
class GateOutcome:
    """A gate verdict as recorded in the run (gate name + result)."""

    gate: str
    passed: bool
    detail: str = ""


@dataclass
class Stage:
    """A pipeline stage: jobs then gates.

    ``gates`` holds objects with ``name`` and ``evaluate(context) ->
    GateResult`` (see :mod:`repro.core.gates`); the engine only needs
    that protocol.
    """

    name: str
    jobs: List[Job] = field(default_factory=list)
    gates: List[Any] = field(default_factory=list)


@dataclass
class PipelineRun:
    """The record of one pipeline execution."""

    stage_results: List[StageResult] = field(default_factory=list)
    context: Optional[PipelineContext] = None

    @property
    def passed(self) -> bool:
        return all(stage.passed for stage in self.stage_results)

    @property
    def failed_stage(self) -> Optional[str]:
        for stage in self.stage_results:
            if not stage.passed:
                return stage.name
        return None

    def gate_rows(self) -> List[Dict[str, str]]:
        """One row per gate evaluation, for reports."""
        rows = []
        for stage in self.stage_results:
            for outcome in stage.gate_results:
                rows.append({
                    "stage": stage.name,
                    "gate": outcome.gate,
                    "verdict": "PASS" if outcome.passed else "FAIL",
                    "detail": outcome.detail,
                })
        return rows

    def summary(self) -> str:
        stages = len(self.stage_results)
        verdict = "passed" if self.passed else (
            f"failed at stage {self.failed_stage!r}")
        return f"pipeline {verdict} ({stages} stages run)"


def plan_waves(jobs: Sequence[Job],
               risk: Optional[Any] = None) -> List[List[Job]]:
    """Partition *jobs* into in-order waves of pairwise-disjoint jobs.

    Without *risk* (the historical form): greedy in declaration order —
    a job joins the current wave when its declared reads/writes
    conflict with nothing already in the wave (write/write, read/write,
    write/read); otherwise it starts the next wave.  Undeclared jobs
    are solo barriers.  Order within a wave is irrelevant by
    construction; order across waves preserves the declaration order.

    With *risk* (anything exposing ``score_for(name) -> float``, e.g.
    :class:`repro.reqs.risk.RiskIndex`), placement switches to
    earliest-legal-wave: each job lands in the first wave after its
    last conflicting predecessor instead of being flushed forward by
    unrelated conflicts, and each wave runs its jobs high-risk-first
    (``score_for(job.name)`` descending, declaration order breaking
    ties).  The conflict relation is unchanged — only slack in the
    schedule moves, so a high-risk job verifies as early as its data
    dependencies allow.

    The scheduler applies the same pairwise rules as a DAG; waves
    remain the human-readable projection of that graph.
    """
    if risk is None:
        waves: List[List[Job]] = []
        current: List[Job] = []
        wave_reads: set = set()
        wave_writes: set = set()

        def flush():
            nonlocal current, wave_reads, wave_writes
            if current:
                waves.append(current)
            current, wave_reads, wave_writes = [], set(), set()

        for job in jobs:
            if not job.declared:
                flush()
                waves.append([job])
                continue
            reads, writes = set(job.reads), set(job.writes)
            conflict = (writes & wave_writes or writes & wave_reads
                        or reads & wave_writes)
            if current and conflict:
                flush()
            current.append(job)
            wave_reads |= reads
            wave_writes |= writes
        flush()
        return waves

    # Earliest-legal placement.  A barrier (undeclared job) conflicts
    # with everything, so it always opens a fresh trailing wave and
    # forces every later job past it.
    placed: List[List[Tuple[int, Job]]] = []
    reads_of: List[set] = []
    writes_of: List[set] = []
    barrier: List[bool] = []
    for index, job in enumerate(jobs):
        if not job.declared:
            placed.append([(index, job)])
            reads_of.append(set())
            writes_of.append(set())
            barrier.append(True)
            continue
        reads, writes = set(job.reads), set(job.writes)
        earliest = 0
        for wave_index in range(len(placed)):
            conflict = (barrier[wave_index]
                        or writes & writes_of[wave_index]
                        or writes & reads_of[wave_index]
                        or reads & writes_of[wave_index])
            if conflict:
                earliest = wave_index + 1
        if earliest == len(placed):
            placed.append([])
            reads_of.append(set())
            writes_of.append(set())
            barrier.append(False)
        placed[earliest].append((index, job))
        reads_of[earliest] |= reads
        writes_of[earliest] |= writes
    return [[job for _, job in
             sorted(wave, key=lambda pair: (
                 -risk.score_for(pair[1].name), pair[0]))]
            for wave in placed]


class Pipeline:
    """An ordered list of stages, executed fail-fast.

    ``max_workers`` (here or per-:meth:`run`) enables scheduled
    execution; the default of ``None`` (or ``1``) with no explicit
    scheduler runs every job in declaration order on the calling
    thread — byte-for-byte the serial engine.  Passing ``scheduler=``
    routes the stages through that scheduler regardless of worker
    count, which is how journaled (crash-resumable) runs are made.
    """

    def __init__(self, stages: Sequence[Stage],
                 max_workers: Optional[int] = None):
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.stages = list(stages)
        self.max_workers = max_workers

    def run(self, context: Optional[PipelineContext] = None,
            max_workers: Optional[int] = None,
            scheduler: Optional[Scheduler] = None) -> PipelineRun:
        """Execute all stages against *context* (created when omitted)."""
        workers = max_workers if max_workers is not None else self.max_workers
        context = context if context is not None else PipelineContext()
        if scheduler is None and workers is not None and workers > 1:
            scheduler = Scheduler(workers=workers)
        if scheduler is not None:
            context.scheduler = scheduler
        run = PipelineRun(context=context)
        for stage in self.stages:
            result = StageResult(name=stage.name)
            run.stage_results.append(result)
            if scheduler is None:
                # A risk index in the context re-orders serial
                # execution through the risk-aware wave planner:
                # high-risk jobs run as early as their declared
                # conflicts allow.  Without one, declaration order —
                # the historical engine — is untouched.
                risk = context.get("risk_index")
                ordered = (stage.jobs if risk is None else
                           [job for wave in plan_waves(stage.jobs, risk)
                            for job in wave])
                for job in ordered:
                    job_result = job.execute(context)
                    result.job_results.append(job_result)
                    if not job_result.passed:
                        return run
            else:
                if not self._run_scheduled(stage, context, scheduler,
                                           result):
                    return run
            for gate in stage.gates:
                gate_result = gate.evaluate(context)
                result.gate_results.append(GateOutcome(
                    gate=gate.name,
                    passed=gate_result.passed,
                    detail=gate_result.detail,
                ))
                if not gate_result.passed:
                    return run
        return run

    @staticmethod
    def _run_scheduled(stage: Stage, context: PipelineContext,
                       scheduler: Scheduler, result: StageResult) -> bool:
        """Run one stage's jobs as a scheduler batch; False stops the run."""
        if not stage.jobs:
            return True
        tasks = []
        for index, job in enumerate(stage.jobs):
            tasks.append(SchedTask(
                name=f"{stage.name}:{job.name}",
                run=lambda j=job, i=index: None,  # bound below with guard
                reads=tuple(job.reads),
                writes=tuple(job.writes),
                ok=lambda job_result: job_result.passed,
            ))
        # The guard needs the same ancestor relation the scheduler will
        # schedule by, so link once and share.
        _deps, ancestors = sched_link(tasks)
        guard = _WriteGuard(ancestors)
        for index, (job, task) in enumerate(zip(stage.jobs, tasks)):
            proxy = _GuardedContext(context, job.name, index, guard)
            task.run = (lambda j=job, p=proxy: j.execute(p))
        report = scheduler.run_batch(tasks)
        # Scheduling lies (ConcurrentWriteError) stop the world; job
        # failures stay data in the stage result.
        report.raise_errors(only=(ConcurrentWriteError,))
        for task_result in report.results:
            if task_result.value is not None:
                result.job_results.append(task_result.value)
        return report.passed
