"""Deterministic CI/CD pipeline engine.

The paper's contribution is *what the security gates do*, not the CI
vendor, so the engine is minimal and deterministic: stages run in
order; each stage runs its jobs in order; after a stage's jobs, its
gates evaluate against the shared :class:`PipelineContext`.  A failing
job or gate stops the pipeline (fail-fast, like a protected branch).

Jobs and gates communicate exclusively through context artifacts, which
keeps every gate independently testable.
"""

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


class PipelineContext:
    """Shared artifact store for one pipeline run."""

    def __init__(self, **initial: Any):
        self._artifacts: Dict[str, Any] = dict(initial)

    def __contains__(self, key: str) -> bool:
        return key in self._artifacts

    def get(self, key: str, default: Any = None) -> Any:
        return self._artifacts.get(key, default)

    def require(self, key: str) -> Any:
        if key not in self._artifacts:
            raise KeyError(
                f"pipeline artifact {key!r} missing; produced artifacts: "
                f"{sorted(self._artifacts)}"
            )
        return self._artifacts[key]

    def put(self, key: str, value: Any) -> None:
        self._artifacts[key] = value

    def keys(self) -> List[str]:
        return sorted(self._artifacts)


@dataclass
class JobResult:
    """Outcome of one job."""

    name: str
    passed: bool
    detail: str = ""
    duration_s: float = 0.0


@dataclass
class Job:
    """A named unit of work: ``run(context) -> detail string``.

    The callable raises to fail the job; its return value (or the
    exception text) lands in the result detail.
    """

    name: str
    run: Callable[[PipelineContext], Optional[str]]

    def execute(self, context: PipelineContext) -> JobResult:
        started = time.perf_counter()
        try:
            detail = self.run(context) or ""
        except Exception as error:  # noqa: BLE001 - report, don't crash CI
            return JobResult(
                name=self.name, passed=False,
                detail=f"{type(error).__name__}: {error}",
                duration_s=time.perf_counter() - started,
            )
        return JobResult(
            name=self.name, passed=True, detail=detail,
            duration_s=time.perf_counter() - started,
        )


@dataclass
class StageResult:
    """Outcome of one stage: job results plus gate results."""

    name: str
    job_results: List[JobResult] = field(default_factory=list)
    gate_results: List["GateOutcome"] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (all(j.passed for j in self.job_results)
                and all(g.passed for g in self.gate_results))


@dataclass
class GateOutcome:
    """A gate verdict as recorded in the run (gate name + result)."""

    gate: str
    passed: bool
    detail: str = ""


@dataclass
class Stage:
    """A pipeline stage: jobs then gates.

    ``gates`` holds objects with ``name`` and ``evaluate(context) ->
    GateResult`` (see :mod:`repro.core.gates`); the engine only needs
    that protocol.
    """

    name: str
    jobs: List[Job] = field(default_factory=list)
    gates: List[Any] = field(default_factory=list)


@dataclass
class PipelineRun:
    """The record of one pipeline execution."""

    stage_results: List[StageResult] = field(default_factory=list)
    context: Optional[PipelineContext] = None

    @property
    def passed(self) -> bool:
        return all(stage.passed for stage in self.stage_results)

    @property
    def failed_stage(self) -> Optional[str]:
        for stage in self.stage_results:
            if not stage.passed:
                return stage.name
        return None

    def gate_rows(self) -> List[Dict[str, str]]:
        """One row per gate evaluation, for reports."""
        rows = []
        for stage in self.stage_results:
            for outcome in stage.gate_results:
                rows.append({
                    "stage": stage.name,
                    "gate": outcome.gate,
                    "verdict": "PASS" if outcome.passed else "FAIL",
                    "detail": outcome.detail,
                })
        return rows

    def summary(self) -> str:
        stages = len(self.stage_results)
        verdict = "passed" if self.passed else (
            f"failed at stage {self.failed_stage!r}")
        return f"pipeline {verdict} ({stages} stages run)"


class Pipeline:
    """An ordered list of stages, executed fail-fast."""

    def __init__(self, stages: Sequence[Stage]):
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.stages = list(stages)

    def run(self, context: Optional[PipelineContext] = None) -> PipelineRun:
        """Execute all stages against *context* (created when omitted)."""
        context = context if context is not None else PipelineContext()
        run = PipelineRun(context=context)
        for stage in self.stages:
            result = StageResult(name=stage.name)
            run.stage_results.append(result)
            for job in stage.jobs:
                job_result = job.execute(context)
                result.job_results.append(job_result)
                if not job_result.passed:
                    return run
            for gate in stage.gates:
                gate_result = gate.evaluate(context)
                result.gate_results.append(GateOutcome(
                    gate=gate.name,
                    passed=gate_result.passed,
                    detail=gate_result.detail,
                ))
                if not gate_result.passed:
                    return run
        return run
