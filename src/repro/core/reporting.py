"""Security reporting: one Markdown dashboard per pipeline/ops cycle.

DevOps integration lives and dies on visibility: the gate verdicts,
the compliance matrix, the requirement lifecycle, and the incident log
have to land where the team looks.  :class:`SecurityReport` collects
the framework's artifacts and renders a single Markdown document (the
format every CI vendor displays natively).
"""

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.pipeline import PipelineRun
from repro.core.protection import Incident
from repro.core.repository import RequirementRepository
from repro.rqcode.catalog import ComplianceReport


def _markdown_table(rows: Sequence[dict]) -> str:
    """Render row dicts as a Markdown table (empty-safe)."""
    if not rows:
        return "_(none)_"
    columns = list(rows[0])
    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(str(row[c]) for c in columns) + " |")
    return "\n".join(lines)


@dataclass
class SecurityReport:
    """Everything one delivery cycle produced, ready to render.

    Attach whichever artifacts exist; sections for missing artifacts
    are omitted rather than rendered empty.
    """

    title: str = "VeriDevOps security report"
    repository: Optional[RequirementRepository] = None
    pipeline_run: Optional[PipelineRun] = None
    compliance_reports: List[ComplianceReport] = field(default_factory=list)
    incidents: List[Incident] = field(default_factory=list)

    # -- section renderers ----------------------------------------------------

    def _pipeline_section(self) -> str:
        run = self.pipeline_run
        status = "PASSED" if run.passed else (
            f"FAILED at stage `{run.failed_stage}`")
        return (
            f"## Pipeline: {status}\n\n"
            + _markdown_table(run.gate_rows())
        )

    def _requirements_section(self) -> str:
        histogram = self.repository.status_histogram()
        rows = [{"status": status, "count": count}
                for status, count in histogram.items()]
        lifecycle = _markdown_table(rows)
        traceability = _markdown_table(
            self.repository.traceability_rows())
        return (
            "## Requirements\n\n"
            f"{len(self.repository)} requirements under management.\n\n"
            f"### Lifecycle\n\n{lifecycle}\n\n"
            f"### Traceability\n\n{traceability}"
        )

    def _compliance_section(self) -> str:
        parts = ["## Host compliance"]
        for report in self.compliance_reports:
            ratio = f"{report.compliance_ratio:.0%}"
            parts.append(
                f"### {report.host_name} ({report.platform}) — {ratio}\n\n"
                + _markdown_table(report.rows()))
        return "\n\n".join(parts)

    def _incidents_section(self) -> str:
        rows = [
            {
                "requirement": incident.req_id,
                "trigger": incident.trigger_kind,
                "latency_events": (
                    incident.detection_latency
                    if incident.detection_latency is not None else "-"),
                "repairs": ", ".join(
                    f"{r.finding_id} ({r.status.value})"
                    for r in incident.repairs) or "-",
                "effective": "yes" if incident.effective else "re-check",
            }
            for incident in self.incidents
        ]
        effective = sum(1 for i in self.incidents if i.effective)
        return (
            "## Operations incidents\n\n"
            f"{len(self.incidents)} detections, {effective} effective "
            f"repairs.\n\n" + _markdown_table(rows)
        )

    def render(self) -> str:
        """The full Markdown document."""
        sections = [f"# {self.title}"]
        if self.pipeline_run is not None:
            sections.append(self._pipeline_section())
        if self.repository is not None:
            sections.append(self._requirements_section())
        if self.compliance_reports:
            sections.append(self._compliance_section())
        if self.incidents:
            sections.append(self._incidents_section())
        return "\n\n".join(sections) + "\n"


def report_for_cycle(orchestrator, run: PipelineRun,
                     loop=None, title: str = "VeriDevOps security report"
                     ) -> SecurityReport:
    """Assemble the report for one orchestrator cycle.

    Pulls the compliance reports out of the pipeline context and the
    incidents out of the protection loop (when one is running).
    """
    report = SecurityReport(title=title,
                            repository=orchestrator.repository,
                            pipeline_run=run)
    if run.context is not None:
        report.compliance_reports = list(
            run.context.get("compliance_reports", []))
    if loop is not None:
        report.incidents = list(loop.incidents)
    return report
